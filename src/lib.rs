//! # taming-variability
//!
//! A from-scratch Rust reproduction of **"Taming Performance Variability"
//! (OSDI 2018)** — the measurement study and the CONFIRM methodology for
//! deciding how many repetitions an experiment needs before its result is
//! statistically trustworthy.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`stats`] (`varstats`) — non-parametric confidence intervals,
//!   hand-rolled bootstrap, Shapiro–Wilk and friends, independence
//!   diagnostics, sample-size formulas, changepoint detection.
//! * [`confirm`] — the CONFIRM repetition estimator, the sequential
//!   online planner, the parametric baseline, and the recommendation
//!   flow.
//! * [`testbed`] — the simulated multi-machine fleet (hardware lottery,
//!   subsystem noise models, maintenance timeline).
//! * [`workloads`] — the benchmark suite, simulated and native.
//! * [`dataset`] — records, the sliceable store, CSV/JSON, and the
//!   campaign generator.
//! * [`analysis`] — the pipelines regenerating every table and figure of
//!   the paper's evaluation (see `cargo run -p serve --bin repro`).
//! * [`telemetry`] — the pipeline's self-measurement: RAII span traces,
//!   counters/gauges/log-bucketed histograms, dogfooded latency
//!   summaries (median + non-parametric CI via `varstats`), and run
//!   manifests. Off by default; near-zero cost while disabled.
//! * [`sentinel`] — the regression sentinel: a durable run-history
//!   store, median/MAD audits of every new run against its history, and
//!   incremental (online CUSUM) change-point detection. Wired into
//!   `repro sentinel record|audit|watch|report|clear`.
//!
//! ## Sixty seconds to a defensible result
//!
//! ```
//! use taming_variability::confirm::{ConfirmConfig, PlanStatus, SequentialPlanner};
//! use taming_variability::stats::ci::nonparametric::median_ci_exact;
//!
//! // Stream benchmark runs into the planner until the median is pinned
//! // to +/-2% at 95% confidence.
//! let mut planner = SequentialPlanner::new(
//!     ConfirmConfig::default().with_target_rel_error(0.02),
//!     500,
//! );
//! let mut reps = 0;
//! for i in 0.. {
//!     let measurement = 100.0 + ((i * 17) % 13) as f64 * 0.3; // your benchmark here
//!     reps += 1;
//!     if let PlanStatus::Satisfied { ci, .. } = planner.push(measurement).unwrap() {
//!         println!("stop after {reps} runs: median in [{:.2}, {:.2}]", ci.lower, ci.upper);
//!         break;
//!     }
//! }
//! // And report a non-parametric CI, not a mean +/- t-interval:
//! let ci = median_ci_exact(planner.data(), 0.95).unwrap();
//! assert!(ci.ci.contains(ci.ci.estimate));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis;
pub use confirm;
pub use dataset;
pub use sentinel;
pub use telemetry;
pub use testbed;
pub use workloads;

/// The statistics substrate (`varstats`), re-exported under a friendlier
/// name.
pub use varstats as stats;

/// The most commonly used items in one import.
///
/// ```
/// use taming_variability::prelude::*;
///
/// let runs: Vec<f64> = (0..50).map(|i| 100.0 + (i % 7) as f64).collect();
/// let ci = median_ci_exact(&runs, 0.95).unwrap();
/// assert!(ci.ci.contains(ci.ci.estimate));
/// ```
pub mod prelude {
    pub use analysis::{Context, Scale};
    pub use confirm::{
        estimate, estimate_stationary, recommend, ConfirmConfig, PlanStatus, Requirement,
        SequentialPlanner, Statistic,
    };
    pub use dataset::{run_campaign, CampaignConfig, Store};
    pub use telemetry::{latency_summary, span, RunManifest};
    pub use testbed::{catalog, Cluster, MachineId, Subsystem, Timeline};
    pub use varstats::ci::nonparametric::{median_ci_approx, median_ci_exact};
    pub use varstats::comparison::{compare_medians, speedup_ci, Verdict};
    pub use varstats::normality::shapiro_wilk;
    pub use varstats::{ConfidenceInterval, Samples, Summary};
    pub use workloads::{sample, BenchmarkId, Harness, SimBenchmark, Workload};
}
