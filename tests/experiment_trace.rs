//! Trace and metrics integration tests for the experiment engine: with
//! telemetry enabled, the worker spans the scheduler opens on its pool
//! threads must group under the `experiments.run` root, carry their
//! worker thread's name and ordinal, and hold the `experiment.<id>`
//! spans; failures must surface in the `experiments.failed` counter.
//!
//! Lives in its own integration-test binary so the global telemetry
//! switch it toggles cannot race with other test processes.

use std::sync::{Arc, Mutex};

use analysis::{
    find, run_experiments, Artifact, Context, Cost, Experiment, ExperimentError, Kind, Scale,
};

/// Serializes the tests in this binary: they toggle the global telemetry
/// switch and drain the global span collector.
static GLOBALS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

fn quick_ctx() -> Arc<Context> {
    Arc::new(Context::with_jobs(Scale::Quick, 5, Some(2)))
}

fn subset(ids: &[&str]) -> Vec<&'static dyn Experiment> {
    ids.iter()
        .map(|id| find(id).expect("experiment registered"))
        .collect()
}

/// Returns the first node named `name`, searching depth-first.
fn find_span<'a>(nodes: &'a [telemetry::SpanNode], name: &str) -> Option<&'a telemetry::SpanNode> {
    for node in nodes {
        if node.name == name {
            return Some(node);
        }
        if let Some(hit) = find_span(&node.children, name) {
            return Some(hit);
        }
    }
    None
}

#[test]
fn worker_spans_group_under_the_run_root() {
    let _guard = lock();
    let ctx = quick_ctx();
    let experiments = subset(&["T1", "T2", "F1", "F2"]);

    telemetry::trace::clear();
    telemetry::set_enabled(true);
    let jobs = 2;
    let report = run_experiments(&ctx, &experiments, Some(jobs));
    telemetry::set_enabled(false);
    let trace = telemetry::trace::drain();

    assert_eq!(report.len(), experiments.len());
    let root = find_span(&trace.roots, "experiments.run").expect("run span recorded");
    assert_eq!(root.children.len(), jobs, "one span per worker");
    let mut seen = vec![false; jobs];
    let mut experiment_spans = Vec::new();
    for child in &root.children {
        let w: usize = child
            .name
            .strip_prefix("experiment.worker.")
            .expect("run's children are worker spans")
            .parse()
            .expect("worker spans are numbered");
        assert!(w < jobs, "worker index {w} out of range");
        assert!(!seen[w], "worker {w} appeared twice");
        seen[w] = true;
        assert_eq!(
            child.thread_name.as_deref(),
            Some(format!("experiment-worker-{w}").as_str()),
            "worker span must carry its pool thread's name"
        );
        assert_ne!(
            child.thread, root.thread,
            "worker spans run off the scheduling thread"
        );
        for grandchild in &child.children {
            assert!(
                grandchild.name.starts_with("experiment."),
                "workers only run experiment spans, got {}",
                grandchild.name
            );
            // Experiment spans stay on their worker's thread.
            assert_eq!(grandchild.thread, child.thread);
            experiment_spans.push(grandchild.name.clone());
        }
    }
    assert!(seen.iter().all(|s| *s), "every worker span present");
    experiment_spans.sort();
    assert_eq!(
        experiment_spans,
        [
            "experiment.F1",
            "experiment.F2",
            "experiment.T1",
            "experiment.T2"
        ],
        "each experiment runs exactly once, on exactly one worker"
    );
}

#[test]
fn sequential_runs_open_no_worker_spans() {
    let _guard = lock();
    let ctx = quick_ctx();
    let experiments = subset(&["T1", "F1"]);

    telemetry::trace::clear();
    telemetry::set_enabled(true);
    let _ = run_experiments(&ctx, &experiments, Some(1));
    telemetry::set_enabled(false);
    let trace = telemetry::trace::drain();

    let root = find_span(&trace.roots, "experiments.run").expect("run span recorded");
    let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        names,
        ["experiment.T1", "experiment.F1"],
        "jobs=1 runs inline, without worker spans"
    );
}

struct Failing;

impl Experiment for Failing {
    fn id(&self) -> &str {
        "FAIL"
    }
    fn kind(&self) -> Kind {
        Kind::Table
    }
    fn title(&self) -> &str {
        "always fails"
    }
    fn cost(&self) -> Cost {
        Cost::Light
    }
    fn run(&self, _ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
        Err(ExperimentError::new("injected failure"))
    }
}

#[test]
fn failures_and_wall_times_surface_in_metrics() {
    let _guard = lock();
    let ctx = quick_ctx();
    let failing = Failing;
    let mut experiments = subset(&["T1", "T2"]);
    experiments.push(&failing);

    telemetry::metrics::reset();
    telemetry::set_enabled(true);
    let report = run_experiments(&ctx, &experiments, Some(2));
    let snapshot = telemetry::metrics::snapshot();
    telemetry::set_enabled(false);
    telemetry::metrics::reset();
    telemetry::trace::clear();

    assert_eq!(report.len(), 3);
    assert_eq!(snapshot.counter("experiments.failed"), Some(1));
    assert_eq!(snapshot.gauge("experiments.workers"), Some(2.0));
    let secs = snapshot.histogram("experiment.secs").expect("histogram");
    assert_eq!(secs.count, 3, "every experiment records a wall time");
    for id in ["T1", "T2", "FAIL"] {
        let h = snapshot
            .histogram(&format!("experiment.secs.{id}"))
            .unwrap_or_else(|| panic!("missing per-experiment histogram for {id}"));
        assert_eq!(h.count, 1);
    }
}
