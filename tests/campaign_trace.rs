//! Trace integration test for the sharded campaign: with telemetry
//! enabled, the worker spans that `collect_jobs` opens on its pool
//! threads must group under the `campaign.collect` root, carry their
//! worker thread's name and ordinal, and form a well-shaped tree even
//! though they close concurrently.
//!
//! Lives in its own integration-test binary so the global telemetry
//! switch it toggles cannot race with other test processes.

use std::sync::Mutex;

use dataset::{collect_jobs, run_campaign_jobs, CampaignConfig};
use workloads::BenchmarkId;

/// Serializes the tests in this binary: they toggle the global telemetry
/// switch and drain the global span collector.
static GLOBALS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_config(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::quick(seed);
    config.machines_per_type = Some(1);
    config.session_every_days = 100.0;
    config.benchmarks = vec![BenchmarkId::MemTriad];
    config
}

/// Drains the trace and returns the first node named `name`, searching
/// depth-first from the roots.
fn find<'a>(nodes: &'a [telemetry::SpanNode], name: &str) -> Option<&'a telemetry::SpanNode> {
    for node in nodes {
        if node.name == name {
            return Some(node);
        }
        if let Some(hit) = find(&node.children, name) {
            return Some(hit);
        }
    }
    None
}

#[test]
fn worker_spans_group_under_the_collect_root() {
    let _guard = lock();
    let config = tiny_config(21);
    let (cluster, _) = run_campaign_jobs(&config, Some(1));

    telemetry::trace::clear();
    telemetry::set_enabled(true);
    let jobs = 3;
    let store = collect_jobs(&cluster, &config, Some(jobs));
    telemetry::set_enabled(false);
    let trace = telemetry::trace::drain();

    assert!(!store.is_empty());
    let collect = find(&trace.roots, "campaign.collect").expect("collect span recorded");
    assert_eq!(
        collect.children.len(),
        jobs,
        "one worker span per collection worker"
    );
    let mut seen = vec![false; jobs];
    let mut threads = Vec::new();
    for child in &collect.children {
        let w: usize = child
            .name
            .strip_prefix("campaign.worker.")
            .expect("collect's children are worker spans")
            .parse()
            .expect("worker spans are numbered");
        assert!(w < jobs, "worker index {w} out of range");
        assert!(!seen[w], "worker {w} appeared twice");
        seen[w] = true;
        assert_eq!(
            child.thread_name.as_deref(),
            Some(format!("campaign-worker-{w}").as_str()),
            "worker span must carry its pool thread's name"
        );
        assert!(child.thread > 0, "worker threads get nonzero ordinals");
        assert_ne!(
            child.thread, collect.thread,
            "worker spans run off the collecting thread"
        );
        threads.push(child.thread);
        // Workers nest inside the collect interval.
        assert!(child.start_secs + 1e-9 >= collect.start_secs);
        assert!(
            child.start_secs + child.duration_secs
                <= collect.start_secs + collect.duration_secs + 1e-9
        );
    }
    assert!(seen.iter().all(|s| *s), "every worker span present");
    threads.sort_unstable();
    threads.dedup();
    assert_eq!(threads.len(), jobs, "each worker has its own thread");
}

#[test]
fn sequential_collection_opens_no_worker_spans() {
    let _guard = lock();
    let config = tiny_config(22);
    let (cluster, _) = run_campaign_jobs(&config, Some(1));

    telemetry::trace::clear();
    telemetry::set_enabled(true);
    let _ = collect_jobs(&cluster, &config, Some(1));
    telemetry::set_enabled(false);
    let trace = telemetry::trace::drain();

    let collect = find(&trace.roots, "campaign.collect").expect("collect span recorded");
    assert!(
        collect.children.is_empty(),
        "jobs=1 collects inline, without worker spans"
    );
}
