//! End-to-end: the full campaign feeds every experiment pipeline.

use taming_variability::analysis::{all, Artifact, Context, Kind, Scale};

#[test]
fn every_registered_experiment_runs_and_produces_artifacts() {
    let ctx = Context::new(Scale::Quick, 2024);
    for experiment in all() {
        let artifacts = experiment
            .run(&ctx)
            .unwrap_or_else(|err| panic!("{} failed: {err}", experiment.id()));
        assert!(
            !artifacts.is_empty(),
            "{} produced no artifacts",
            experiment.id()
        );
        // The first artifact's id starts with the experiment id.
        assert!(
            artifacts[0].id().starts_with(experiment.id()),
            "{} produced artifact {}",
            experiment.id(),
            artifacts[0].id()
        );
        for artifact in &artifacts {
            let text = artifact.render();
            assert!(!text.trim().is_empty());
            let csv = artifact.to_csv();
            assert!(csv.lines().count() >= 2, "{} CSV too small", artifact.id());
            match artifact {
                Artifact::Table(t) => {
                    assert!(!t.rows.is_empty(), "{} table empty", t.id);
                }
                Artifact::Figure(f) => {
                    assert!(!f.series.is_empty(), "{} figure empty", f.id);
                    assert!(f.series.iter().all(|s| !s.points.is_empty()));
                }
            }
        }
        // Table experiments emit a table first; figure experiments may
        // legitimately render their series as either artifact kind.
        if experiment.kind() == Kind::Table {
            assert!(matches!(artifacts[0], Artifact::Table(_)));
        }
    }
}

#[test]
fn key_paper_shapes_hold_end_to_end() {
    use taming_variability::analysis::experiments::cov::overall_cov;
    use taming_variability::analysis::experiments::normality::census;
    use taming_variability::workloads::BenchmarkId;

    let ctx = Context::new(Scale::Quick, 77);

    // Shape 1: disk most variable, network throughput least.
    let disk = overall_cov(&ctx, BenchmarkId::DiskRandRead);
    let mem = overall_cov(&ctx, BenchmarkId::MemTriad);
    let net = overall_cov(&ctx, BenchmarkId::NetBandwidth);
    assert!(disk > 3.0 * mem, "disk {disk} should dwarf memory {mem}");
    assert!(net < mem, "net-bw {net} should undercut memory {mem}");

    // Shape 2: a substantial share of sample sets fail normality.
    let rows = census(&ctx, 0.05).unwrap();
    let sets: usize = rows.iter().map(|r| r.sets).sum();
    let passed: usize = rows.iter().map(|r| r.passed).sum();
    let fail_rate = 1.0 - passed as f64 / sets as f64;
    assert!(
        fail_rate > 0.3,
        "at least a third of sample sets should fail normality, got {fail_rate}"
    );
}
