//! The determinism contract of the sharded campaign: for a fixed seed,
//! `run_campaign`/`collect` produce **byte-identical** datasets for every
//! worker count and thread schedule, and distinct seeds still produce
//! distinct datasets. This is the gate that lets the collect path be
//! parallelized (or re-sharded) freely without silently shifting the
//! distributions every experiment analyzes.

use dataset::{collect_jobs, run_campaign_jobs, write_csv, CampaignConfig, Store};
use proptest::prelude::*;
use workloads::BenchmarkId;

/// A campaign small enough to run dozens of times in a test, with more
/// machines than worker threads so chunking is exercised.
fn tiny_config(seed: u64, machines_per_type: usize) -> CampaignConfig {
    let mut config = CampaignConfig::quick(seed);
    config.machines_per_type = Some(machines_per_type);
    config.session_every_days = 60.0; // 5 sessions instead of 10
    config.benchmarks = vec![
        BenchmarkId::MemTriad,
        BenchmarkId::DiskSeqRead,
        BenchmarkId::NetLatency,
    ];
    config
}

/// Serializes a store to the exact bytes `campaign --out` would write.
fn csv_bytes(store: &Store) -> Vec<u8> {
    let mut buf = Vec::new();
    write_csv(store, &mut buf).expect("writing to a Vec cannot fail");
    buf
}

#[test]
fn worker_counts_produce_byte_identical_stores() {
    let config = CampaignConfig::quick(42);
    let (cluster, baseline) = run_campaign_jobs(&config, Some(1));
    let baseline_bytes = csv_bytes(&baseline);
    assert!(!baseline.is_empty());
    for jobs in [2, 4, dataset::default_jobs().max(2) * 3] {
        let sharded = collect_jobs(&cluster, &config, Some(jobs));
        assert_eq!(baseline, sharded, "Store for jobs={jobs} diverged");
        assert_eq!(
            baseline_bytes,
            csv_bytes(&sharded),
            "serialized bytes for jobs={jobs} diverged"
        );
    }
}

#[test]
fn default_worker_count_matches_single_thread() {
    let config = tiny_config(7, 3);
    let (cluster, auto) = run_campaign_jobs(&config, None);
    let sequential = collect_jobs(&cluster, &config, Some(1));
    assert_eq!(auto, sequential);
    assert_eq!(csv_bytes(&auto), csv_bytes(&sequential));
}

#[test]
fn distinct_seeds_still_differ_under_sharding() {
    let (_, a) = run_campaign_jobs(&tiny_config(1, 2), Some(4));
    let (_, b) = run_campaign_jobs(&tiny_config(2, 2), Some(4));
    assert_ne!(a, b, "different seeds must produce different data");
    // Same seed, different worker counts: identical.
    let (_, c) = run_campaign_jobs(&tiny_config(1, 2), Some(3));
    assert_eq!(a, c);
}

#[test]
fn full_run_campaign_is_worker_invariant() {
    // run_campaign (provision + collect) end-to-end, not just collect.
    let config = tiny_config(11, 2);
    let (cluster_a, store_a) = run_campaign_jobs(&config, Some(1));
    let (cluster_b, store_b) = run_campaign_jobs(&config, Some(5));
    assert_eq!(store_a, store_b);
    assert_eq!(cluster_a.machines().len(), cluster_b.machines().len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    // Any (seed, fleet size, worker count) agrees with the sequential
    // collection byte for byte.
    #[test]
    fn sharded_collection_always_matches_sequential(
        seed in 0u64..1_000_000_000_000,
        machines_per_type in 1usize..=3,
        workers in 2usize..=9,
    ) {
        let config = tiny_config(seed, machines_per_type);
        let (cluster, sequential) = run_campaign_jobs(&config, Some(1));
        let sharded = collect_jobs(&cluster, &config, Some(workers));
        prop_assert_eq!(&sequential, &sharded);
        prop_assert_eq!(csv_bytes(&sequential), csv_bytes(&sharded));
    }
}
