//! Serving-correctness suite for the artifact daemon (DESIGN.md §10).
//!
//! Four contracts, enforced in-process against [`serve::ArtifactService`]
//! and over real TCP against [`serve::Server`]:
//!
//! 1. **Byte-identity** — a served response body is exactly the bytes
//!    the engine produces for the same `(experiment, scale, seed)`:
//!    `render()` for the text form, `to_csv()` for the CSV form, across
//!    arbitrary request mixes, hot or cold.
//! 2. **Single-flight** — N concurrent requests for one cold key execute
//!    the pipeline exactly once: one `cache.miss`, one `cache.stored`,
//!    one flight leader, N−1 waiters sharing the leader's artifacts.
//! 3. **Restart identity** — a daemon restarted over the same cache
//!    directory serves byte-identical responses, now from the cache.
//! 4. **Chaos identity** — with deterministic fault injection armed,
//!    transient faults retry under bounded backoff and the response
//!    bytes never change.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex};

use analysis::{find, Context, Scale};
use proptest::prelude::*;
use serve::{ArtifactService, ServeOptions, Server};
use testbed::{FaultPlan, FaultPolicy};

/// Telemetry counters are process-global; every test in this file takes
/// this lock (they either assert on counter windows or bump counters
/// while another test is asserting), so windows never bleed.
static TELEMETRY: Mutex<()> = Mutex::new(());

fn temp_cache(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "serve-correctness-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cheap experiments only: the suite runs many pipeline executions.
const POOL: [&str; 4] = ["T1", "T2", "F6", "F7"];

fn service(dir: &PathBuf) -> ArtifactService {
    ArtifactService::new(ServeOptions {
        jobs: Some(2),
        ..ServeOptions::new(dir)
    })
}

/// The text body the daemon serves for an experiment: one `render()`
/// per artifact, each followed by the CLI's `println!` newline.
fn text_body(artifacts: &[analysis::Artifact]) -> String {
    let mut out = String::new();
    for artifact in artifacts {
        out.push_str(&artifact.render());
        out.push('\n');
    }
    out
}

/// What the engine produces for `(id, seed)` at quick scale, computed
/// directly — the reference bytes for every serving assertion.
fn engine_direct(ctx: &Context, id: &str) -> Vec<analysis::Artifact> {
    find(id)
        .expect("registered")
        .run(ctx)
        .expect("experiment succeeds")
}

fn parse_request(path: &str) -> serve::Request {
    serve::Request::read_from(&mut std::io::BufReader::new(
        format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes(),
    ))
    .expect("well-formed")
    .expect("one request")
}

fn body_of(service: &ArtifactService, path: &str) -> String {
    let reply = service.handle(&parse_request(path));
    assert_eq!(reply.status(), 200, "GET {path}");
    String::from_utf8(reply.into_response().body).expect("utf-8 body")
}

#[test]
fn served_bodies_match_engine_artifacts_byte_for_byte() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_cache("identity");
    let service = service(&dir);
    for seed in [7u64, 11] {
        let ctx = Context::with_jobs(Scale::Quick, seed, Some(2));
        for id in POOL {
            let reference = engine_direct(&ctx, id);
            // Text form: cold on the first seed pass, hot on the second
            // request — the bytes must not care.
            let path = format!("/v1/artifacts/{id}?seed={seed}&scale=quick");
            let cold = body_of(&service, &path);
            let hot = body_of(&service, &path);
            assert_eq!(cold, text_body(&reference), "{id} seed {seed} (cold)");
            assert_eq!(cold, hot, "{id} seed {seed} must not vary per request");
            // CSV form, one artifact at a time — the bytes `repro all
            // --out` writes to disk.
            for artifact in &reference {
                let csv = body_of(
                    &service,
                    &format!(
                        "/v1/artifacts/{id}?seed={seed}&scale=quick&format=csv&artifact={}",
                        artifact.id()
                    ),
                );
                assert_eq!(csv, artifact.to_csv(), "{id}/{} csv", artifact.id());
            }
        }
    }
    assert!(
        service.cache().hits() >= POOL.len() as u64 * 2,
        "second requests are served from the cache"
    );
    let _ = std::fs::remove_dir_all(dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    // Byte-identity over proptest-chosen (id, seed) request mixes: the
    // served text body always equals the engine's artifacts.
    #[test]
    fn served_bodies_match_for_arbitrary_seed_and_id_mixes(
        seed in 0u64..1_000_000,
        mask in 1usize..(1 << POOL.len()),
    ) {
        let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
        let dir = temp_cache("proptest");
        let service = service(&dir);
        let ctx = Context::with_jobs(Scale::Quick, seed, Some(2));
        for (i, id) in POOL.iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            let body = body_of(&service, &format!("/v1/artifacts/{id}?seed={seed}"));
            prop_assert_eq!(body, text_body(&engine_direct(&ctx, id)));
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn eight_concurrent_clients_on_a_cold_key_execute_the_pipeline_once() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::metrics::reset();
    telemetry::set_enabled(true);
    let dir = temp_cache("singleflight");
    let service = Arc::new(service(&dir));
    let experiment = find("T6").expect("registered");
    const CLIENTS: usize = 8;
    let arrived = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let service = Arc::clone(&service);
            let arrived = Arc::clone(&arrived);
            std::thread::spawn(move || {
                arrived.wait();
                service
                    .artifacts_for(experiment, Scale::Quick, 13)
                    .expect("pipeline succeeds")
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    telemetry::set_enabled(false);

    // Every client got the same artifacts (literally the same allocation
    // for the waiters, but assert bytes, which is the contract).
    let reference = text_body(&results[0]);
    assert!(results.iter().all(|r| text_body(r) == reference));

    // The cache saw exactly one cold lookup and one store: the leader's.
    assert_eq!(service.cache().misses(), 1, "exactly one cache.miss");
    assert_eq!(service.cache().stored(), 1, "exactly one cache.stored");
    assert_eq!(service.cache().hits(), 0, "nobody hit a half-warm cache");

    // Telemetry saw the same story: one miss, one store, one flight
    // leader, seven waiters.
    let snapshot = telemetry::metrics::snapshot();
    assert_eq!(snapshot.counter("cache.miss"), Some(1));
    assert_eq!(snapshot.counter("cache.stored"), Some(1));
    assert_eq!(
        snapshot.counter("cache.hit"),
        None,
        "no hit counter registered"
    );
    assert_eq!(snapshot.counter("serve.singleflight.lead"), Some(1));
    assert_eq!(
        snapshot.counter("serve.singleflight.wait"),
        Some((CLIENTS - 1) as u64)
    );

    // A later request finds the cache warm: a fresh flight, not a shared
    // stale one, and a hit instead of a recompute.
    let after = service
        .artifacts_for(experiment, Scale::Quick, 13)
        .expect("pipeline succeeds");
    assert_eq!(text_body(&after), reference);
    assert_eq!(service.cache().hits(), 1);
    assert_eq!(service.cache().misses(), 1, "still exactly one miss");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn a_restarted_daemon_serves_identical_bytes_from_the_same_cache_dir() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_cache("restart");
    let path = "/v1/artifacts/T1?seed=29&scale=quick";

    let first_body;
    let first_etag;
    {
        let service = Arc::new(service(&dir));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
        let (status, headers, body) = http_get(server.addr(), path);
        assert_eq!(status, 200);
        first_body = body;
        first_etag = header(&headers, "ETag").expect("artifact responses carry an ETag");
        assert_eq!(service.cache().misses(), 1, "first daemon computed it");
        server.shutdown();
    }

    // A brand-new process-equivalent: fresh service, fresh server, same
    // cache directory on disk.
    {
        let service = Arc::new(service(&dir));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
        let (status, headers, body) = http_get(server.addr(), path);
        assert_eq!(status, 200);
        assert_eq!(body, first_body, "restart must not change a single byte");
        assert_eq!(
            header(&headers, "ETag").as_deref(),
            Some(first_etag.as_str())
        );
        assert_eq!(
            service.cache().hits(),
            1,
            "second daemon served the stored entry"
        );
        assert_eq!(service.cache().misses(), 0);
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn chaos_under_serving_retries_faults_and_keeps_bytes_identical() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    let clean_dir = temp_cache("chaos-clean");
    let chaotic_dir = temp_cache("chaos-armed");
    let clean = service(&clean_dir);
    let chaotic = ArtifactService::new(ServeOptions {
        jobs: Some(2),
        // 90% transient and I/O fault rates, no worker deaths: every
        // fault site fires up to the per-site cap, and a 2-retry budget
        // with millisecond backoff always outlasts it.
        faults: Some(FaultPlan::with_rates(99, 900, 900, 0)),
        policy: FaultPolicy::new(2, std::time::Duration::from_millis(1)),
        ..ServeOptions::new(&chaotic_dir)
    });
    for id in ["T1", "F6"] {
        let path = format!("/v1/artifacts/{id}?seed=31&scale=quick");
        assert_eq!(
            body_of(&clean, &path),
            body_of(&chaotic, &path),
            "{id}: chaos must be invisible in the response bytes"
        );
    }
    let (injected, retried) = chaotic.fault_stats();
    assert!(injected > 0, "the chaos plan actually fired");
    assert!(retried > 0, "transient faults were retried, not masked");
    assert_eq!(clean.fault_stats(), (0, 0), "the clean daemon saw none");
    let _ = std::fs::remove_dir_all(clean_dir);
    let _ = std::fs::remove_dir_all(chaotic_dir);
}

#[test]
fn concurrent_http_clients_over_mixed_hot_and_cold_keys_agree() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_cache("hammer");
    let service = Arc::new(service(&dir));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let addr = server.addr();

    // Warm one key so the mix genuinely spans hot and cold.
    let warm = "/v1/artifacts/T1?seed=37&scale=quick";
    let (status, _, warm_body) = http_get(addr, warm);
    assert_eq!(status, 200);

    let paths = [
        warm.to_string(),
        "/v1/artifacts/T2?seed=37&scale=quick".to_string(),
        "/v1/artifacts/F6?seed=37&scale=quick".to_string(),
    ];
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let paths = paths.clone();
            std::thread::spawn(move || {
                let mut bodies = Vec::new();
                for round in 0..3 {
                    let path = &paths[(i + round) % paths.len()];
                    let (status, _, body) = http_get(addr, path);
                    assert_eq!(status, 200, "GET {path}");
                    bodies.push((path.clone(), body));
                }
                bodies
            })
        })
        .collect();
    let mut by_path: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    by_path.insert(warm.to_string(), warm_body);
    for handle in handles {
        for (path, body) in handle.join().unwrap() {
            let seen = by_path.entry(path.clone()).or_insert_with(|| body.clone());
            assert_eq!(*seen, body, "{path}: every client sees the same bytes");
        }
    }
    assert_eq!(by_path.len(), paths.len());
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// One `Connection: close` GET over real TCP; returns (status, header
/// lines, body string). Chunked bodies (the default framing for
/// HTTP/1.1 artifact responses) are decoded back to their payload.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("receive");
    let raw = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers: Vec<String> = lines.map(str::to_string).collect();
    let body = if header(&headers, "Transfer-Encoding").as_deref() == Some("chunked") {
        let payload = serve::http::decode_chunked(body.as_bytes()).expect("valid chunked framing");
        String::from_utf8(payload).expect("utf-8 payload")
    } else {
        body.to_string()
    };
    (status, headers, body)
}

fn header(headers: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}: ");
    headers
        .iter()
        .find_map(|l| l.strip_prefix(&prefix).map(str::to_string))
}
