//! Golden-artifact regression test: a quick-scale campaign plus one
//! experiment pipeline must reproduce a checked-in fixture byte for byte.
//! This catches accidental drift anywhere in the chain — provisioning,
//! RNG derivation, campaign sharding, store ordering, the experiment's
//! statistics, and CSV rendering — that the structural tests would miss.
//!
//! The fixture opens with a fingerprint of the RNG backend (the first
//! draws of a fixed-seed `StdRng`). The dataset is a pure function of the
//! seed *for a given backend*, but different `rand` implementations
//! legitimately produce different streams; when the fingerprint does not
//! match, the byte comparison is meaningless, so the test skips instead
//! of failing. Regenerate the fixture after an intentional change with:
//!
//! ```text
//! GOLDEN_REGENERATE=1 cargo test --test golden_regression
//! ```

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use analysis::{find, ArtifactCache, CacheKey, Context, Experiment, Scale};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const FIXTURE: &str = "tests/fixtures/golden_quick42_f3.txt";
const CACHE_FIXTURE: &str = "tests/fixtures/golden_cache_section.txt";
const EXPERIMENT: &str = "F3";
const SEED: u64 = 42;

/// Identifies the RNG backend: the first three draws of a fixed-seed
/// `StdRng`, in bits. Two backends that agree here produce the same
/// campaign; two that differ cannot be compared byte-for-byte.
fn rng_fingerprint() -> String {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let draws: Vec<String> = (0..3)
        .map(|_| format!("{:016x}", rng.random::<f64>().to_bits()))
        .collect();
    format!("rng-fingerprint: {}", draws.join(" "))
}

/// Renders the golden experiment's artifacts as CSV — the part of the
/// fixture that both data paths (materialized and streaming) must
/// reproduce byte for byte.
fn artifact_text(ctx: &Context) -> String {
    let mut out = String::new();
    let experiment = find(EXPERIMENT).expect("golden experiment is registered");
    for artifact in experiment.run(ctx).expect("golden experiment succeeds") {
        writeln!(out, "--- artifact {} ---", artifact.id()).unwrap();
        out.push_str(&artifact.to_csv());
    }
    out
}

/// Renders everything the fixture pins: the backend fingerprint, a
/// campaign summary, and the experiment's artifacts as CSV.
fn golden_text() -> String {
    let ctx = Context::with_jobs(Scale::Quick, SEED, Some(4));
    let mut out = String::new();
    writeln!(out, "{}", rng_fingerprint()).unwrap();
    writeln!(
        out,
        "campaign: scale=quick seed={SEED} machines={} records={} benchmarks={}",
        ctx.store().machines().len(),
        ctx.store().len(),
        ctx.store().benchmarks().len()
    )
    .unwrap();
    out.push_str(&artifact_text(&ctx));
    out
}

/// The streaming data path (DESIGN.md §11) against the same fixture: a
/// `--stream` context — journal replay, no materialized store — must
/// render the golden experiment's artifacts byte-identically to the
/// materialized build, for every worker count. Combined with
/// [`quick_campaign_and_cov_experiment_match_the_fixture`], this pins
/// the streaming path to the checked-in fixture transitively.
#[test]
fn streaming_renders_the_same_golden_artifacts() {
    use dataset::{CollectOptions, ShardJournal};

    let materialized = artifact_text(&Context::with_jobs(Scale::Quick, SEED, Some(4)));
    for jobs in [1usize, 4] {
        let dir = std::env::temp_dir().join(format!(
            "golden-stream-{jobs}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = Scale::Quick.campaign(SEED);
        let journal = ShardJournal::open(&dir, &config).expect("journal opens");
        let options = CollectOptions {
            jobs: Some(jobs),
            journal: Some(&journal),
            ..CollectOptions::default()
        };
        let (ctx, _report) = Context::build_streaming(Scale::Quick, SEED, &options)
            .expect("fault-free streaming build succeeds");
        assert_eq!(
            artifact_text(&ctx),
            materialized,
            "--jobs {jobs}: streaming artifacts must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn quick_campaign_and_cov_experiment_match_the_fixture() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE);
    let got = golden_text();
    if std::env::var_os("GOLDEN_REGENERATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read fixture {} ({e}); regenerate with GOLDEN_REGENERATE=1",
            path.display()
        )
    });
    let fingerprint = rng_fingerprint();
    if want.lines().next() != Some(fingerprint.as_str()) {
        eprintln!(
            "skipping golden comparison: fixture was generated by a different \
             rand backend\n  fixture:  {}\n  current:  {fingerprint}\n\
             regenerate with GOLDEN_REGENERATE=1 to re-pin",
            want.lines().next().unwrap_or("<empty>")
        );
        return;
    }
    assert_eq!(
        got, want,
        "golden artifact drifted from {FIXTURE}; if the change is intentional, \
         regenerate with GOLDEN_REGENERATE=1"
    );
}

#[test]
fn golden_text_is_itself_deterministic() {
    // The fixture is only meaningful if rendering is a pure function of
    // the seed — two in-process runs must agree exactly.
    assert_eq!(golden_text(), golden_text());
}

/// Renders everything the cache fixture pins: the entry addresses for a
/// fixed (experiment, scale, seed) and the manifest cache-section
/// summaries of a cold and a hot engine run.
///
/// Unlike [`golden_text`], every byte here is **RNG-backend
/// independent**: cache keys fingerprint only the experiment identity
/// and the campaign/CONFIRM *configuration* (never the collected data),
/// and [`telemetry::CacheSection::summary`] carries neither timestamps
/// nor host details. So this fixture needs no fingerprint gate — any
/// drift is a real contract break (key derivation, entry naming, or the
/// summary format).
fn cache_golden_text() -> String {
    let ctx = Arc::new(Context::with_jobs(Scale::Quick, SEED, Some(2)));
    let mut out = String::new();
    writeln!(out, "cache-schema: {}", analysis::CACHE_SCHEMA_VERSION).unwrap();
    for id in ["T1", "F3", "F9"] {
        let key = CacheKey::for_context(find(id).expect("registered"), &ctx);
        writeln!(out, "entry {id}: {}", key.file_name()).unwrap();
    }
    let dir = std::env::temp_dir().join(format!("golden-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let subset: Vec<&dyn Experiment> = vec![find("T1").expect("registered")];
    for label in ["cold", "hot"] {
        let cache = ArtifactCache::new(&dir);
        analysis::run_experiments_cached(&ctx, &subset, Some(1), Some(&cache), &|_| {});
        let section = telemetry::CacheSection {
            enabled: true,
            hits: cache.hits(),
            invalidated: cache.invalidated(),
            misses: cache.misses(),
            stored: cache.stored(),
        };
        writeln!(out, "{label}: {}", section.summary()).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[test]
fn cache_keys_and_section_summary_match_the_fixture() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(CACHE_FIXTURE);
    let got = cache_golden_text();
    if std::env::var_os("GOLDEN_REGENERATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read fixture {} ({e}); regenerate with GOLDEN_REGENERATE=1",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "cache keying or section rendering drifted from {CACHE_FIXTURE}; if the \
         change is intentional (schema bump, T1/F3/F9 code-version bump, summary \
         format change), regenerate with GOLDEN_REGENERATE=1"
    );
}
