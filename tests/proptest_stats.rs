//! Property-based tests over the statistics substrate.

use proptest::prelude::*;
use taming_variability::stats::ci::bootstrap::{Bootstrap, BootstrapKind};
use taming_variability::stats::ci::nonparametric::{median_ci_approx, median_ci_exact};
use taming_variability::stats::descriptive::Moments;
use taming_variability::stats::histogram::{BinRule, Histogram};
use taming_variability::stats::quantile::{quantile, Ecdf, QuantileMethod};
use taming_variability::stats::{Samples, Summary};

/// Strategy: a vector of reasonable finite measurements.
fn measurements(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0e-3..1.0e6f64, min_len..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_are_monotone_and_bounded(data in measurements(1), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        for method in [QuantileMethod::Linear, QuantileMethod::Weibull, QuantileMethod::InverseCdf] {
            let a = quantile(&data, lo, method).unwrap();
            let b = quantile(&data, hi, method).unwrap();
            prop_assert!(a <= b + 1e-9);
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
        }
    }

    #[test]
    fn median_cis_bracket_the_median(data in measurements(10)) {
        let med = quantile(&data, 0.5, QuantileMethod::Linear).unwrap();
        for r in [median_ci_exact(&data, 0.95).unwrap(), median_ci_approx(&data, 0.95).unwrap()] {
            prop_assert!(r.ci.lower <= med + 1e-9, "lower {} median {med}", r.ci.lower);
            prop_assert!(r.ci.upper >= med - 1e-9, "upper {} median {med}", r.ci.upper);
            prop_assert!(r.lower_rank >= 1 && r.upper_rank <= data.len());
            prop_assert!(r.lower_rank <= r.upper_rank);
        }
    }

    #[test]
    fn exact_ci_achieved_confidence_meets_nominal_when_possible(data in measurements(10)) {
        let r = median_ci_exact(&data, 0.90).unwrap();
        // With n >= 10 a 90% two-sided median CI always exists.
        prop_assert!(r.achieved_confidence >= 0.90 - 1e-9);
    }

    #[test]
    fn summary_orderings_hold(data in measurements(2)) {
        let s = Summary::from_slice(&data).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert!(s.std_dev >= 0.0 && s.mad >= 0.0);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn moments_merge_is_associative_enough(data in measurements(3), split in 1usize..100) {
        let k = split % (data.len() - 1) + 1;
        let (a, b) = data.split_at(k);
        let mut ma: Moments = a.iter().copied().collect();
        let mb: Moments = b.iter().copied().collect();
        ma.merge(&mb);
        let full: Moments = data.iter().copied().collect();
        prop_assert!((ma.mean() - full.mean()).abs() <= 1e-6 * (1.0 + full.mean().abs()));
        prop_assert!(
            (ma.sample_variance() - full.sample_variance()).abs()
                <= 1e-6 * (1.0 + full.sample_variance())
        );
        prop_assert_eq!(ma.count(), full.count());
    }

    #[test]
    fn histogram_preserves_mass(data in measurements(1), bins in 1usize..40) {
        let h = Histogram::new(&data, BinRule::Fixed(bins)).unwrap();
        prop_assert_eq!(h.counts.iter().sum::<u64>() as usize, data.len());
        prop_assert_eq!(h.bins(), bins);
        let freq_sum: f64 = (0..h.bins()).map(|i| h.frequency(i)).sum();
        prop_assert!((freq_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ecdf_is_monotone_zero_to_one(data in measurements(1)) {
        let e = Ecdf::new(&data).unwrap();
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.eval(min - 1.0), 0.0);
        prop_assert_eq!(e.eval(max), 1.0);
        let mut last = 0.0;
        for step in 0..=20 {
            let x = min + (max - min) * step as f64 / 20.0;
            let v = e.eval(x);
            prop_assert!(v >= last - 1e-12);
            last = v;
        }
    }

    #[test]
    fn percentile_bootstrap_stays_within_data_range(data in measurements(3)) {
        let ci = Bootstrap::new(100, 7)
            .ci(
                &data,
                |xs| quantile(xs, 0.5, QuantileMethod::Linear).unwrap(),
                0.95,
                BootstrapKind::Percentile,
            )
            .unwrap();
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(ci.lower >= min - 1e-9);
        prop_assert!(ci.upper <= max + 1e-9);
        prop_assert!(ci.lower <= ci.upper);
    }

    #[test]
    fn samples_sorted_view_is_a_permutation(data in measurements(1)) {
        let s = Samples::new(data.clone()).unwrap();
        prop_assert_eq!(s.len(), data.len());
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(s.sorted(), expect.as_slice());
        prop_assert_eq!(s.data(), data.as_slice());
    }

    #[test]
    fn shapiro_w_is_in_unit_interval(data in prop::collection::vec(0.0..1000.0f64, 10..300)) {
        // Skip degenerate all-equal vectors.
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(max > min);
        let r = taming_variability::stats::normality::shapiro_wilk(&data).unwrap();
        prop_assert!(r.statistic > 0.0 && r.statistic <= 1.0);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn robust_zscores_are_shift_and_scale_equivariant(
        data in measurements(3),
        shift in -1.0e4..1.0e4f64,
        scale in 1.0e-2..1.0e3f64,
    ) {
        use taming_variability::stats::robust::robust_zscores;
        let z = robust_zscores(&data).unwrap();
        // z-scores of a*x + b equal the z-scores of x: the affine map
        // moves the median and scales the MAD by |a|, cancelling out.
        let mapped: Vec<f64> = data.iter().map(|x| scale * x + shift).collect();
        let zm = robust_zscores(&mapped).unwrap();
        for (a, b) in z.iter().zip(zm.iter()) {
            if a.is_finite() && b.is_finite() {
                let tol = 1e-6 * (1.0 + a.abs());
                prop_assert!((a - b).abs() <= tol, "z {a} vs mapped z {b}");
            } else {
                // Degenerate (constant-series) infinities keep their sign.
                prop_assert_eq!(a, b);
            }
        }
        // Negative scale flips the sign instead.
        let flipped: Vec<f64> = data.iter().map(|x| -scale * x + shift).collect();
        let zf = robust_zscores(&flipped).unwrap();
        for (a, b) in z.iter().zip(zf.iter()) {
            if a.is_finite() && b.is_finite() {
                let tol = 1e-6 * (1.0 + a.abs());
                prop_assert!((a + b).abs() <= tol, "z {a} vs flipped z {b}");
            }
        }
    }

    #[test]
    fn pelt_changepoints_are_sorted_in_range(data in measurements(10)) {
        let cps = taming_variability::stats::changepoint::pelt_mean(&data, None).unwrap();
        for w in cps.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &cp in &cps {
            prop_assert!(cp >= 1 && cp < data.len());
        }
    }
}
