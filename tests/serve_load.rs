//! Load/soak harness for the serving daemon (DESIGN.md §10): a
//! hand-rolled multi-threaded load generator driving hot/cold/mixed key
//! schedules over real TCP, with every socket under a timeout so a hang
//! is a test failure, never a stuck CI job.
//!
//! Contracts exercised:
//!
//! 1. **No hangs, bounded queue.** Under a mixed hot/cold schedule from
//!    hundreds of concurrent keep-alive connections, every request
//!    completes with `200` and bytes identical to the engine's
//!    artifacts; the accept queue's high-water mark never exceeds its
//!    configured bound.
//! 2. **Saturation sheds, never hangs.** With a tiny worker pool and
//!    queue deliberately saturated, overflow connections receive a fast
//!    `503 Retry-After` — and once the pressure lifts, the daemon
//!    serves `200`s again.
//! 3. **Representation identity.** Streamed (chunked), whole-body
//!    (HTTP/1.0), and gzip-encoded responses all decode to the same
//!    bytes the CLI writes.
//! 4. **Cross-process single-flight.** Two daemons sharing one cache
//!    directory serve identical bytes; a follower waits for a sibling's
//!    lease and serves its entry without recomputing, and a dead
//!    sibling's stale lease degrades to local computation instead of
//!    waiting forever.
//! 5. **Stalled clients cannot starve honest ones.** Slow-loris
//!    connections time out with `408` and free their workers.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use analysis::{find, ArtifactCache, CacheKey, Context, Scale};
use serve::crossflight::FlightTable;
use serve::{ArtifactService, ServeOptions, Server, ServerConfig};

/// Telemetry counters are process-global and the servers under test set
/// gauges at bind; every test serializes on this lock so metric windows
/// never bleed across tests.
static TELEMETRY: Mutex<()> = Mutex::new(());

/// Client-side socket timeout: any read or write slower than this is a
/// hang, and hangs are failures.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn temp_cache(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "serve-load-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The text body the daemon serves for an experiment: one `render()`
/// per artifact, each followed by the CLI's `println!` newline.
fn reference_body(id: &str, seed: u64) -> Vec<u8> {
    let ctx = Context::with_jobs(Scale::Quick, seed, Some(2));
    let artifacts = find(id)
        .expect("registered experiment")
        .run(&ctx)
        .expect("experiment succeeds");
    let mut out = String::new();
    for artifact in &artifacts {
        out.push_str(&artifact.render());
        out.push('\n');
    }
    out.into_bytes()
}

/// A keep-alive HTTP client over one TCP connection, with every socket
/// operation under [`CLIENT_TIMEOUT`].
struct Client {
    reader: BufReader<TcpStream>,
}

/// One parsed response: status, header lines, payload bytes (chunked
/// framing already decoded; gzip left encoded for the caller).
struct ClientResponse {
    status: u16,
    headers: Vec<String>,
    payload: Vec<u8>,
}

impl ClientResponse {
    fn header(&self, name: &str) -> Option<&str> {
        let prefix = format!("{name}: ");
        self.headers.iter().find_map(|l| l.strip_prefix(&prefix))
    }
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(CLIENT_TIMEOUT))
            .expect("read timeout");
        stream
            .set_write_timeout(Some(CLIENT_TIMEOUT))
            .expect("write timeout");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// Sends one request and reads the complete response. `version` is
    /// `"HTTP/1.1"` or `"HTTP/1.0"`; extra headers go in verbatim.
    fn request(&mut self, path: &str, version: &str, extra: &[&str]) -> ClientResponse {
        let mut raw = format!("GET {path} {version}\r\n");
        for h in extra {
            raw.push_str(h);
            raw.push_str("\r\n");
        }
        raw.push_str("\r\n");
        self.reader
            .get_mut()
            .write_all(raw.as_bytes())
            .expect("send request");
        self.read_response()
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .expect("read within timeout");
        assert!(n > 0, "connection closed mid-response");
        line.trim_end_matches(['\r', '\n']).to_string()
    }

    fn read_response(&mut self) -> ClientResponse {
        let status_line = self.read_line();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line `{status_line}`"));
        let mut headers = Vec::new();
        loop {
            let line = self.read_line();
            if line.is_empty() {
                break;
            }
            headers.push(line);
        }
        let find_header = |name: &str| {
            let prefix = format!("{name}: ");
            headers
                .iter()
                .find_map(|l: &String| l.strip_prefix(&prefix).map(str::to_string))
        };
        let payload = if find_header("Transfer-Encoding").as_deref() == Some("chunked") {
            let mut out = Vec::new();
            loop {
                let size_line = self.read_line();
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .unwrap_or_else(|_| panic!("bad chunk size `{size_line}`"));
                if size == 0 {
                    let trailer = self.read_line();
                    assert!(trailer.is_empty(), "unexpected trailer `{trailer}`");
                    break;
                }
                let mut chunk = vec![0u8; size + 2];
                self.reader.read_exact(&mut chunk).expect("chunk data");
                assert_eq!(&chunk[size..], b"\r\n", "chunk not CRLF-terminated");
                chunk.truncate(size);
                out.extend_from_slice(&chunk);
            }
            out
        } else {
            let length: usize = find_header("Content-Length")
                .and_then(|v| v.parse().ok())
                .expect("framed responses declare Content-Length");
            let mut body = vec![0u8; length];
            self.reader.read_exact(&mut body).expect("body bytes");
            body
        };
        ClientResponse {
            status,
            headers,
            payload,
        }
    }
}

fn service(dir: &PathBuf) -> Arc<ArtifactService> {
    Arc::new(ArtifactService::new(ServeOptions {
        jobs: Some(2),
        ..ServeOptions::new(dir)
    }))
}

#[test]
fn soak_mixed_hot_cold_schedule_is_byte_identical_with_bounded_queue() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::metrics::reset();
    telemetry::set_enabled(true);
    let dir = temp_cache("soak");
    const QUEUE_CAP: usize = 512;
    let server = Server::bind_with(
        "127.0.0.1:0",
        service(&dir),
        ServerConfig {
            workers: Some(8),
            queue_cap: QUEUE_CAP,
            read_timeout: Duration::from_secs(30),
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Six keys across cheap experiments and two seeds. Three are warmed
    // (hot), three stay cold until the storm finds them.
    let keys = [
        ("T1", 7u64),
        ("T2", 7),
        ("F6", 7),
        ("T1", 11),
        ("T2", 11),
        ("F6", 11),
    ];
    let expected: Arc<HashMap<String, Vec<u8>>> = Arc::new(
        keys.iter()
            .map(|(id, seed)| {
                let path = format!("/v1/artifacts/{id}?seed={seed}&scale=quick");
                (path, reference_body(id, *seed))
            })
            .collect(),
    );
    let paths: Arc<Vec<String>> = Arc::new(expected.keys().cloned().collect());
    for path in paths.iter().take(3) {
        let resp = Client::connect(addr).request(path, "HTTP/1.1", &[]);
        assert_eq!(resp.status, 200, "warm-up GET {path}");
    }

    // 150 concurrent keep-alive connections, 4 requests each, schedules
    // offset per connection so every moment mixes hot and cold keys.
    const CONNECTIONS: usize = 150;
    const REQUESTS_PER_CONNECTION: usize = 4;
    let started = Instant::now();
    let ready = Arc::new(Barrier::new(CONNECTIONS));
    let handles: Vec<_> = (0..CONNECTIONS)
        .map(|i| {
            let paths = Arc::clone(&paths);
            let expected = Arc::clone(&expected);
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                ready.wait();
                let mut client = Client::connect(addr);
                for round in 0..REQUESTS_PER_CONNECTION {
                    let path = &paths[(i + round) % paths.len()];
                    let resp = client.request(path, "HTTP/1.1", &[]);
                    assert_eq!(resp.status, 200, "GET {path} (conn {i}, round {round})");
                    assert_eq!(
                        &resp.payload, &expected[path],
                        "GET {path}: served bytes must match the engine's"
                    );
                }
                REQUESTS_PER_CONNECTION
            })
        })
        .collect();
    let total: usize = handles
        .into_iter()
        .map(|h| h.join().expect("no panics"))
        .sum();
    assert_eq!(total, CONNECTIONS * REQUESTS_PER_CONNECTION);
    // The socket timeouts above make a hang impossible; this bound just
    // documents that the soak finishes in CI time.
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "soak took {:?}",
        started.elapsed()
    );

    let snapshot = telemetry::metrics::snapshot();
    telemetry::set_enabled(false);
    let peak = snapshot.gauge("serve.queue.peak").unwrap_or(0.0);
    assert!(
        peak <= QUEUE_CAP as f64,
        "queue depth must stay within its bound (peak {peak})"
    );
    assert_eq!(
        snapshot.counter("serve.shed"),
        None,
        "an unsaturated queue sheds nothing"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn saturation_sheds_overflow_with_fast_503_and_recovers() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::metrics::reset();
    telemetry::set_enabled(true);
    let dir = temp_cache("saturate");
    let server = Server::bind_with(
        "127.0.0.1:0",
        service(&dir),
        ServerConfig {
            workers: Some(1),
            queue_cap: 2,
            read_timeout: Duration::from_secs(5),
        },
    )
    .expect("bind");
    let addr = server.addr();
    let hot = "/v1/artifacts/T1?seed=7&scale=quick";
    let warm = Client::connect(addr).request(hot, "HTTP/1.1", &[]);
    assert_eq!(warm.status, 200);
    let reference = warm.payload.clone();

    // Saturate: one silent connection pins the lone worker inside its
    // read; two more fill the queue. Everything beyond must shed.
    let pins: Vec<TcpStream> = (0..3)
        .map(|_| TcpStream::connect(addr).expect("pin connect"))
        .collect();
    std::thread::sleep(Duration::from_millis(200));

    const STORM: usize = 24;
    let ready = Arc::new(Barrier::new(STORM));
    let handles: Vec<_> = (0..STORM)
        .map(|_| {
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                ready.wait();
                let started = Instant::now();
                let resp = Client::connect(addr).request(hot, "HTTP/1.1", &[]);
                (
                    resp.status,
                    resp.header("Retry-After").map(str::to_string),
                    started.elapsed(),
                )
            })
        })
        .collect();
    let mut shed = 0usize;
    for handle in handles {
        let (status, retry_after, elapsed) = handle.join().expect("no panics");
        match status {
            503 => {
                shed += 1;
                assert_eq!(retry_after.as_deref(), Some("1"), "503s carry Retry-After");
                assert!(
                    elapsed < Duration::from_secs(2),
                    "shed must be fast, took {elapsed:?}"
                );
            }
            // A storm connection that raced into a freed queue slot is
            // legitimately served; correctness still holds.
            200 => {}
            other => panic!("response must be 200 or a clean 503, got {other}"),
        }
    }
    assert!(
        shed >= STORM - 2,
        "a saturated daemon sheds nearly the whole storm (shed {shed}/{STORM})"
    );
    let snapshot = telemetry::metrics::snapshot();
    assert!(
        snapshot.counter("serve.shed").unwrap_or(0) >= shed as u64,
        "shed connections are counted"
    );
    let peak = snapshot.gauge("serve.queue.peak").unwrap_or(0.0);
    assert!(peak <= 2.0, "queue peak {peak} must respect the cap");

    // Release the pins: the pinned worker times out its silent client,
    // drains the queue, and the daemon serves again — it never hung.
    drop(pins);
    let after = Client::connect(addr).request(hot, "HTTP/1.1", &[]);
    assert_eq!(after.status, 200, "daemon recovers after saturation");
    assert_eq!(after.payload, reference);
    telemetry::set_enabled(false);
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn streamed_whole_and_gzip_responses_decode_to_identical_bytes() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_cache("representations");
    let server = Server::bind("127.0.0.1:0", service(&dir)).expect("bind");
    let addr = server.addr();
    let path = "/v1/artifacts/T2?seed=7&scale=quick";
    let reference = reference_body("T2", 7);

    let streamed = Client::connect(addr).request(path, "HTTP/1.1", &[]);
    assert_eq!(streamed.status, 200);
    assert_eq!(
        streamed.header("Transfer-Encoding"),
        Some("chunked"),
        "HTTP/1.1 artifact bodies stream"
    );
    assert_eq!(streamed.payload, reference, "streamed == engine bytes");

    let whole = Client::connect(addr).request(path, "HTTP/1.0", &[]);
    assert_eq!(whole.status, 200);
    assert!(
        whole.header("Content-Length").is_some(),
        "HTTP/1.0 gets whole-body framing"
    );
    assert_eq!(whole.payload, reference, "whole == engine bytes");

    let gz_streamed = Client::connect(addr).request(path, "HTTP/1.1", &["Accept-Encoding: gzip"]);
    assert_eq!(gz_streamed.status, 200);
    assert_eq!(gz_streamed.header("Content-Encoding"), Some("gzip"));
    assert_eq!(
        serve::gzip::decode(&gz_streamed.payload).expect("valid gzip"),
        reference,
        "streamed gzip decodes to engine bytes"
    );

    let gz_whole = Client::connect(addr).request(path, "HTTP/1.0", &["Accept-Encoding: gzip"]);
    assert_eq!(gz_whole.status, 200);
    assert_eq!(gz_whole.header("Content-Encoding"), Some("gzip"));
    assert_eq!(
        serve::gzip::decode(&gz_whole.payload).expect("valid gzip"),
        reference,
        "whole gzip decodes to engine bytes"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn two_daemons_on_one_cache_dir_serve_identical_bytes() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::metrics::reset();
    telemetry::set_enabled(true);
    let dir = temp_cache("multiproc");
    let server_a = Server::bind("127.0.0.1:0", service(&dir)).expect("bind a");
    let server_b = Server::bind("127.0.0.1:0", service(&dir)).expect("bind b");
    let addrs = [server_a.addr(), server_b.addr()];

    // A concurrent cold storm split across both daemons: whichever
    // coordination path timing selects (shared lease, degraded
    // duplicate), the bytes must be identical everywhere.
    let path = "/v1/artifacts/F6?seed=19&scale=quick";
    const CLIENTS: usize = 8;
    let ready = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                ready.wait();
                let resp = Client::connect(addrs[i % 2]).request(path, "HTTP/1.1", &[]);
                assert_eq!(resp.status, 200);
                resp.payload
            })
        })
        .collect();
    let bodies: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no panics"))
        .collect();
    let reference = reference_body("F6", 19);
    for body in &bodies {
        assert_eq!(body, &reference, "every client of either daemon agrees");
    }
    // The storm left exactly one entry; hot requests on both daemons now
    // serve it without computing.
    for addr in addrs {
        let hot = Client::connect(addr).request(path, "HTTP/1.1", &[]);
        assert_eq!(hot.payload, reference);
    }
    telemetry::set_enabled(false);
    server_a.shutdown();
    server_b.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn a_follower_waits_on_a_sibling_lease_and_serves_its_entry() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::metrics::reset();
    telemetry::set_enabled(true);
    let dir = temp_cache("follow");
    let server = Server::bind("127.0.0.1:0", service(&dir)).expect("bind");
    let addr = server.addr();

    // Simulate a sibling daemon mid-compute: claim the key's lease from
    // "outside" (this is exactly what another process would hold), then
    // land the entry and release while the daemon's request waits.
    let experiment = find("T1").expect("registered");
    let key = CacheKey::for_params(experiment, Scale::Quick, 23);
    let cache = ArtifactCache::new(&dir);
    let table = FlightTable::new(cache.dir(), Duration::from_secs(60));
    let lease = match table.claim(key.fingerprint()) {
        serve::crossflight::Claim::Lead(lease) => lease,
        serve::crossflight::Claim::Follow => panic!("test claims first"),
    };

    let sibling = std::thread::spawn(move || {
        // The "sibling process" computes and stores while holding the
        // lease, exactly as a leading daemon would.
        std::thread::sleep(Duration::from_millis(300));
        let ctx = Context::with_jobs(Scale::Quick, 23, Some(2));
        let artifacts = experiment.run(&ctx).expect("experiment succeeds");
        cache.store(&key, &artifacts).expect("store");
        drop(lease);
    });

    std::thread::sleep(Duration::from_millis(50));
    let resp =
        Client::connect(addr).request("/v1/artifacts/T1?seed=23&scale=quick", "HTTP/1.1", &[]);
    sibling.join().expect("sibling thread");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.payload, reference_body("T1", 23));
    let snapshot = telemetry::metrics::snapshot();
    telemetry::set_enabled(false);
    assert_eq!(
        snapshot.counter("serve.crossflight.follow"),
        Some(1),
        "the daemon followed the sibling's flight instead of recomputing"
    );
    assert_eq!(
        snapshot.counter("serve.crossflight.lead"),
        None,
        "no lead: the sibling held the lease the whole time"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn a_dead_siblings_stale_lease_degrades_to_local_compute() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::metrics::reset();
    telemetry::set_enabled(true);
    let dir = temp_cache("degrade");
    let svc = Arc::new(ArtifactService::new(ServeOptions {
        jobs: Some(2),
        // A short staleness horizon so the test's "crashed sibling"
        // resolves quickly.
        crossflight_stale: Duration::from_millis(300),
        ..ServeOptions::new(&dir)
    }));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc)).expect("bind");
    let addr = server.addr();

    // A lease with no living owner: created, never released, never
    // followed by an entry — a SIGKILLed sibling.
    let experiment = find("T2").expect("registered");
    let key = CacheKey::for_params(experiment, Scale::Quick, 29);
    let table = FlightTable::new(svc.cache().dir(), Duration::from_secs(60));
    match table.claim(key.fingerprint()) {
        serve::crossflight::Claim::Lead(lease) => std::mem::forget(lease),
        serve::crossflight::Claim::Follow => panic!("test claims first"),
    }

    let started = Instant::now();
    let resp =
        Client::connect(addr).request("/v1/artifacts/T2?seed=29&scale=quick", "HTTP/1.1", &[]);
    assert_eq!(resp.status, 200);
    assert_eq!(resp.payload, reference_body("T2", 29));
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "a stale lease must not block serving indefinitely"
    );
    let snapshot = telemetry::metrics::snapshot();
    telemetry::set_enabled(false);
    let degraded = snapshot.counter("serve.crossflight.degraded").unwrap_or(0);
    let led = snapshot.counter("serve.crossflight.lead").unwrap_or(0);
    assert!(
        degraded == 1 || led == 1,
        "the abandoned lease is either waited out (degraded) or broken \
         and re-claimed (lead); got degraded={degraded} lead={led}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn slow_loris_connections_cannot_starve_honest_clients() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_cache("loris");
    let server = Server::bind_with(
        "127.0.0.1:0",
        service(&dir),
        ServerConfig {
            workers: Some(2),
            queue_cap: 32,
            read_timeout: Duration::from_millis(500),
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Four stalled connections against two workers: without the read
    // timeout these would pin the pool forever.
    let loris: Vec<TcpStream> = (0..4)
        .map(|i| {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(format!("GET /healthz HTTP/1.1\r\nX-Slow-{i}:").as_bytes())
                .expect("partial send");
            s
        })
        .collect();

    // An honest client queued behind them is served once the stalled
    // connections time out — well within the client timeout.
    let started = Instant::now();
    let resp = Client::connect(addr).request("/healthz", "HTTP/1.1", &[]);
    assert_eq!(resp.status, 200);
    assert_eq!(resp.payload, b"ok\n");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "honest client waited {:?}",
        started.elapsed()
    );
    // Each stalled connection got a clean 408 before the drop.
    for mut s in loris {
        let mut buf = String::new();
        s.set_read_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
        s.read_to_string(&mut buf).expect("read 408");
        assert!(
            buf.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
            "stalled connections are answered, not abandoned: {buf}"
        );
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
