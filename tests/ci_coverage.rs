//! Empirical coverage validation on realistic (non-normal) testbed data.
//!
//! A 95% interval is only worth reporting if it covers the truth ~95% of
//! the time on the kind of data benchmarks actually produce. These tests
//! estimate the "truth" from a very large reference pool, then measure
//! coverage of small-sample intervals against it.

use taming_variability::stats::ci::bootstrap::{Bootstrap, BootstrapKind};
use taming_variability::stats::ci::nonparametric::{median_ci_approx, median_ci_exact};
use taming_variability::stats::quantile::median;
use taming_variability::testbed::{catalog, Cluster, Timeline};
use taming_variability::workloads::{sample, BenchmarkId};

fn reference_median(
    cluster: &Cluster,
    bench: BenchmarkId,
) -> (taming_variability::testbed::MachineId, f64) {
    let machine = cluster
        .machines()
        .iter()
        .find(|m| m.type_name == "c220g1")
        .unwrap()
        .id;
    let pool: Vec<f64> = (0..20_000u64)
        .map(|n| sample(cluster, machine, bench, 0.0, 1_000_000 + n).unwrap())
        .collect();
    (machine, median(&pool).unwrap())
}

fn coverage<F>(cluster: &Cluster, bench: BenchmarkId, n: usize, trials: usize, ci: F) -> f64
where
    F: Fn(&[f64]) -> (f64, f64),
{
    let (machine, truth) = reference_median(cluster, bench);
    let mut hits = 0usize;
    for t in 0..trials {
        let runs: Vec<f64> = (0..n as u64)
            .map(|i| sample(cluster, machine, bench, 0.0, (t * n) as u64 + i).unwrap())
            .collect();
        let (lo, hi) = ci(&runs);
        if truth >= lo && truth <= hi {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[test]
fn exact_median_ci_covers_on_skewed_disk_data() {
    let cluster = Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), 5);
    let cov = coverage(&cluster, BenchmarkId::DiskSeqRead, 30, 150, |runs| {
        let r = median_ci_exact(runs, 0.95).unwrap();
        (r.ci.lower, r.ci.upper)
    });
    assert!(cov >= 0.90, "exact CI coverage {cov}");
}

#[test]
fn approx_median_ci_covers_on_heavy_tailed_latency() {
    let cluster = Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), 6);
    let cov = coverage(&cluster, BenchmarkId::NetLatency, 40, 150, |runs| {
        let r = median_ci_approx(runs, 0.95).unwrap();
        (r.ci.lower, r.ci.upper)
    });
    assert!(cov >= 0.90, "approx CI coverage {cov}");
}

#[test]
fn bootstrap_median_ci_covers_reasonably() {
    let cluster = Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), 7);
    let cov = coverage(&cluster, BenchmarkId::DiskRandRead, 30, 80, |runs| {
        let ci = Bootstrap::new(300, 1)
            .ci(
                runs,
                |xs| median(xs).unwrap(),
                0.95,
                BootstrapKind::Percentile,
            )
            .unwrap();
        (ci.lower, ci.upper)
    });
    // The percentile bootstrap is known to slightly undercover for the
    // median at small n; accept >= 85%.
    assert!(cov >= 0.85, "bootstrap coverage {cov}");
}

#[test]
fn mean_t_interval_misses_the_median_on_skewed_data() {
    // The negative control that motivates the whole paper: a mean-based
    // t-interval is NOT a median interval on skewed data — its coverage
    // of the median is visibly below nominal.
    use taming_variability::stats::ci::parametric::mean_ci_t;
    let cluster = Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), 8);
    // Heavy-tailed latency at n = 150: the mean sits persistently above
    // the median, and by then the t-interval is too narrow to reach back.
    let cov = coverage(&cluster, BenchmarkId::NetLatency, 150, 100, |runs| {
        let ci = mean_ci_t(runs, 0.95).unwrap();
        (ci.lower, ci.upper)
    });
    assert!(
        cov < 0.90,
        "mean interval should not cover the median at nominal rate, got {cov}"
    );
}
