//! Distributed collection correctness under process faults (DESIGN.md
//! §12): a supervisor plus a fleet of in-process worker threads driving
//! the same exchange protocol the CLI subprocesses use. Workers are
//! killed, stalled, and torn at seed-chosen points; every schedule must
//! converge with no quarantined units, and the merged canonical journal
//! must be byte-identical to a single-process `--jobs 1` collection.
//!
//! Thread-backed workers stand in for subprocesses: a chaos kill makes
//! the thread return with `killed` set (its unit lease left in place,
//! exactly as a SIGKILLed process would leave it), which the handle
//! reports as a death. The binary-level twin of this suite
//! (`crates/serve/tests/distributed_cli.rs`) covers real subprocesses.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use dataset::{
    collect_to_journal, merge_exchange, partition_units, run_worker, selected_machine_ids,
    supervise, CampaignConfig, CollectOptions, DistributedError, ExchangeDir, ShardJournal,
    SupervisorConfig, WorkerExit, WorkerHandle, WorkerOptions, WorkerOutcome,
};
use proptest::prelude::*;
use testbed::{catalog, Cluster, FaultPlan, MachineId, Timeline};
use workloads::BenchmarkId;

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dist-collect-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small campaign that still exercises several machines and shards.
fn tiny_config(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::quick(seed);
    config.machines_per_type = Some(1);
    config.benchmarks = vec![BenchmarkId::MemCopy, BenchmarkId::NetLatency];
    config
}

fn provision(config: &CampaignConfig) -> Cluster {
    Cluster::provision(
        catalog(),
        config.scale,
        Timeline::cloudlab_default(),
        config.seed,
    )
}

/// The `--jobs 1` reference journal every distributed run must match.
fn reference_journal(dir: &Path, cluster: &Cluster, config: &CampaignConfig) -> ShardJournal {
    let journal = ShardJournal::open(dir, config).expect("reference journal opens");
    let options = CollectOptions {
        jobs: Some(1),
        journal: Some(&journal),
        ..CollectOptions::default()
    };
    collect_to_journal(cluster, config, &options).expect("fault-free collection succeeds");
    journal
}

/// Every file of both journal directories, byte for byte.
fn journal_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("journal directory is readable")
        .map(|e| {
            let path = e.expect("entry").path();
            let name = path.file_name().unwrap().to_str().unwrap().to_string();
            (name, std::fs::read(&path).expect("file readable"))
        })
        .collect()
}

fn assert_same_journal(reference: &Path, merged: &Path) {
    let expected = journal_bytes(reference);
    let actual = journal_bytes(merged);
    assert_eq!(
        expected.keys().collect::<Vec<_>>(),
        actual.keys().collect::<Vec<_>>(),
        "merged journal must hold exactly the reference shards"
    );
    for (name, bytes) in &expected {
        assert_eq!(
            bytes, &actual[name],
            "{name} must be byte-identical to the single-process collection"
        );
    }
}

/// An in-process stand-in for a worker subprocess.
struct ThreadWorker {
    worker: usize,
    handle: Option<std::thread::JoinHandle<Result<WorkerOutcome, DistributedError>>>,
}

impl WorkerHandle for ThreadWorker {
    fn worker(&self) -> usize {
        self.worker
    }
    fn try_finish(&mut self) -> io::Result<Option<WorkerExit>> {
        if !self.handle.as_ref().is_some_and(|h| h.is_finished()) {
            return Ok(None);
        }
        let outcome = self.handle.take().expect("handle present").join();
        Ok(Some(match outcome {
            // A chaos kill or a terminal error is a death; only a clean
            // drain (no kill flag) exits like a healthy process.
            Ok(Ok(o)) if !o.killed => WorkerExit::Clean,
            _ => WorkerExit::Died,
        }))
    }
}

/// A spawn closure launching thread-backed workers over `root`.
fn thread_fleet(
    root: &Path,
    cluster: &Arc<Cluster>,
    config: &Arc<CampaignConfig>,
    options: WorkerOptions,
) -> impl FnMut(usize) -> io::Result<Box<dyn WorkerHandle>> {
    let root = root.to_path_buf();
    let cluster = Arc::clone(cluster);
    let config = Arc::clone(config);
    move |worker| {
        let root = root.clone();
        let cluster = Arc::clone(&cluster);
        let config = Arc::clone(&config);
        let handle =
            std::thread::spawn(move || run_worker(&root, &cluster, &config, worker, &options));
        Ok(Box::new(ThreadWorker {
            worker,
            handle: Some(handle),
        }))
    }
}

/// Fast horizons so stalls and reassignments resolve in tens of
/// milliseconds instead of seconds.
fn fast_configs(workers: usize, faults: Option<FaultPlan>) -> (SupervisorConfig, WorkerOptions) {
    let stale = Duration::from_millis(250);
    let mut supervisor = SupervisorConfig::new(workers);
    supervisor.stale_after = stale;
    supervisor.poll = Duration::from_millis(10);
    let options = WorkerOptions {
        faults,
        stale_after: stale,
        poll: Duration::from_millis(10),
        ..WorkerOptions::default()
    };
    (supervisor, options)
}

/// Runs one full distributed collection and returns what the supervisor
/// and merge observed.
fn run_distributed(
    label: &str,
    workers: usize,
    unit_count: usize,
    faults: Option<FaultPlan>,
) -> (dataset::DistributedReport, dataset::MergeReport) {
    let config = Arc::new(tiny_config(77));
    let cluster = Arc::new(provision(&config));
    let machines = selected_machine_ids(&cluster, &config);
    assert!(
        machines.len() >= 2,
        "the tiny campaign has several machines"
    );

    let ref_dir = temp_dir(&format!("{label}-ref"));
    reference_journal(&ref_dir, &cluster, &config);

    let root = temp_dir(&format!("{label}-exchange"));
    let units = partition_units(&machines, unit_count);
    let exchange = ExchangeDir::create(&root, &config, units).expect("exchange creates");
    let (supervisor, options) = fast_configs(workers, faults);
    let mut spawn = thread_fleet(&root, &cluster, &config, options);
    let report = supervise(&exchange, &mut spawn, &supervisor).expect("supervision converges");

    let merged_dir = temp_dir(&format!("{label}-merged"));
    let canonical = ShardJournal::open(&merged_dir, &config).expect("canonical journal opens");
    let merge = merge_exchange(&exchange, &canonical).expect("merge succeeds");
    assert!(
        merge.missing.is_empty(),
        "a converged run leaves no machine without a shard: {:?}",
        merge.missing
    );
    assert_same_journal(&ref_dir, &merged_dir);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&merged_dir);
    (report, merge)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// Any chaos seed, any fleet size: workers are killed, stalled, and
    /// torn at seed-chosen points, yet the run converges with nothing
    /// quarantined and the merged journal byte-identical to `--jobs 1`.
    #[test]
    fn chaos_schedules_converge_byte_identically(
        chaos_seed in 0u64..1_000_000,
        workers in 2usize..=4,
    ) {
        let (report, _) = run_distributed(
            &format!("prop{chaos_seed}w{workers}"),
            workers,
            6,
            Some(FaultPlan::new(chaos_seed)),
        );
        prop_assert_eq!(report.quarantined, 0, "chaos faults are attempt-gated");
        prop_assert!(report.spawned >= workers as u64);
    }
}

/// One pinned chaos schedule, always compiled: offline builds link a
/// proptest stub that erases `proptest!` blocks, and this keeps at
/// least one seed-chosen kill/stall/tear schedule running there.
#[test]
fn pinned_chaos_schedule_converges_byte_identically() {
    let (report, _) = run_distributed("pinned", 3, 6, Some(FaultPlan::new(1702)));
    assert_eq!(report.quarantined, 0, "chaos faults are attempt-gated");
    assert!(report.spawned >= 3);
}

#[test]
fn fault_free_fleet_converges_without_deaths() {
    let (report, merge) = run_distributed("clean", 3, 4, None);
    assert_eq!(report.died, 0);
    assert_eq!(report.reassigned, 0);
    assert_eq!(report.quarantined, 0);
    assert_eq!(report.spawned, 3);
    assert_eq!(merge.duplicates, 0);
}

#[test]
fn forced_kills_are_reaped_reassigned_and_survived() {
    // Every machine site kills post-commit on rounds 0 and 1: each death
    // still commits at least one shard, survivors inherit it through the
    // exchange scan, and the attempt gate ends the carnage by round 2.
    let plan = FaultPlan::with_rates(4242, 0, 0, 0).with_process_rates(1000, 0, 0);
    let (report, _) = run_distributed("kills", 2, 4, Some(plan));
    assert!(report.died > 0, "kill sites must fell workers: {report:?}");
    assert!(
        report.reassigned > 0,
        "orphaned units must be reassigned: {report:?}"
    );
    assert_eq!(report.quarantined, 0);
    assert!(
        report.spawned > 2,
        "the supervisor must respawn after deaths: {report:?}"
    );
}

#[test]
fn forced_stalls_lose_their_leases_without_dying() {
    // Every machine site stalls silently past the staleness horizon on
    // rounds 0 and 1: the supervisor breaks the lease mid-stall and
    // reassigns; the stalled worker notices ownership loss and moves on.
    let plan = FaultPlan::with_rates(4242, 0, 0, 0).with_process_rates(0, 1000, 0);
    let (report, _) = run_distributed("stalls", 2, 3, Some(plan));
    assert!(
        report.reassigned > 0,
        "stale leases must be broken and reassigned: {report:?}"
    );
    assert_eq!(report.quarantined, 0);
}

#[test]
fn unservable_units_are_quarantined_and_the_rest_converge() {
    // A unit holding a machine no cluster has: every attempt fails, the
    // reassignment budget runs out, and the unit is quarantined — while
    // every healthy unit still collects and merges byte-identically.
    let config = Arc::new(tiny_config(77));
    let cluster = Arc::new(provision(&config));
    let machines = selected_machine_ids(&cluster, &config);
    let mut poisoned = machines.clone();
    poisoned.push(MachineId(999_999));

    let root = temp_dir("quarantine-exchange");
    // One machine per unit: the poison pill quarantines alone.
    let units = partition_units(&poisoned, poisoned.len());
    let exchange = ExchangeDir::create(&root, &config, units).expect("exchange creates");
    let (mut supervisor, options) = fast_configs(2, None);
    supervisor.max_unit_attempts = 2;
    let mut spawn = thread_fleet(&root, &cluster, &config, options);
    let report = supervise(&exchange, &mut spawn, &supervisor).expect("supervision terminates");
    assert_eq!(report.quarantined, 1, "{report:?}");
    assert!(report.died > 0, "each failed attempt is a worker death");

    let merged_dir = temp_dir("quarantine-merged");
    let canonical = ShardJournal::open(&merged_dir, &config).expect("canonical journal opens");
    let merge = merge_exchange(&exchange, &canonical).expect("merge succeeds");
    assert_eq!(
        merge.missing,
        vec![MachineId(999_999)],
        "only the unservable machine is missing"
    );
    let ref_dir = temp_dir("quarantine-ref");
    reference_journal(&ref_dir, &cluster, &config);
    assert_same_journal(&ref_dir, &merged_dir);

    for dir in [&root, &merged_dir, &ref_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
