//! CONFIRM validated against ground truth.
//!
//! The estimator's answer is only useful if, having run the recommended
//! number of *fresh* repetitions, the resulting CI actually lands within
//! the target. These tests close that loop on testbed data, and check
//! agreement with the parametric formula where its assumptions hold.

use taming_variability::confirm::{
    estimate, parametric_plan, ConfirmConfig, Growth, PlanStatus, Requirement, SequentialPlanner,
    Statistic,
};
use taming_variability::stats::ci::nonparametric::median_ci_approx;
use taming_variability::testbed::{catalog, Cluster, Timeline};
use taming_variability::workloads::{sample, BenchmarkId};

fn cluster() -> Cluster {
    Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), 31)
}

#[test]
fn recommended_repetitions_actually_deliver_the_target() {
    let cluster = cluster();
    let machine = cluster.machines()[0].id;
    let bench = BenchmarkId::MemTriad;
    let pool: Vec<f64> = (0..300u64)
        .map(|n| sample(&cluster, machine, bench, 0.0, n).unwrap())
        .collect();
    let config = ConfirmConfig::default().with_target_rel_error(0.005);
    let result = estimate(&pool, &config).unwrap();
    let n = result
        .repetitions()
        .expect("memory bandwidth satisfies 0.5% easily");

    // Collect n FRESH runs (disjoint nonces) many times; the CI should
    // meet the target in the typical case (CONFIRM averages over subsets,
    // so individual draws may wobble — require 70% of trials within 1.5x
    // of the target).
    let mut within = 0usize;
    let trials = 40;
    for t in 0..trials {
        let fresh: Vec<f64> = (0..n as u64)
            .map(|i| sample(&cluster, machine, bench, 0.0, 10_000 + t * n as u64 + i).unwrap())
            .collect();
        let ci = median_ci_approx(&fresh, 0.95).unwrap();
        if ci.ci.relative_half_width() <= 0.005 * 1.5 {
            within += 1;
        }
    }
    assert!(
        within as f64 / trials as f64 >= 0.7,
        "only {within}/{trials} fresh batches met the target with n = {n}"
    );
}

#[test]
fn confirm_and_jain_roughly_agree_on_normal_data() {
    // Memory-bandwidth run noise is a clean normal: the non-parametric
    // answer should be within a small factor of the parametric one
    // (medians are ~25% less efficient than means under normality, and
    // CONFIRM's subset floor adds discreteness).
    let cluster = cluster();
    let machine = cluster.machines()[0].id;
    let pool: Vec<f64> = (0..300u64)
        .map(|n| sample(&cluster, machine, BenchmarkId::MemTriad, 0.0, n).unwrap())
        .collect();
    let config = ConfirmConfig::default().with_target_rel_error(0.002);
    let confirm_n = estimate(&pool, &config).unwrap().requirement.as_ordinal() as f64;
    let jain_n = parametric_plan(&pool, &config).unwrap().repetitions as f64;
    let ratio = confirm_n.max(jain_n) / confirm_n.min(jain_n).max(1.0);
    assert!(
        ratio < 5.0,
        "confirm {confirm_n} vs jain {jain_n}: ratio {ratio}"
    );
}

#[test]
fn sequential_planner_matches_confirm_scale() {
    // The live planner and the subsampling estimator answer the same
    // question; on stationary data their answers should be on the same
    // order.
    let cluster = cluster();
    let machine = cluster.machines()[0].id;
    let bench = BenchmarkId::DiskSeqRead;
    let config = ConfirmConfig::default().with_target_rel_error(0.02);

    let pool: Vec<f64> = (0..400u64)
        .map(|n| sample(&cluster, machine, bench, 0.0, n).unwrap())
        .collect();
    let confirm_n = estimate(&pool, &config).unwrap().requirement.as_ordinal();

    let mut planner = SequentialPlanner::new(config, 400);
    let mut sequential_n = 400usize;
    for n in 0..400u64 {
        let v = sample(&cluster, machine, bench, 0.0, 50_000 + n).unwrap();
        if let PlanStatus::Satisfied { repetitions, .. } = planner.push(v).unwrap() {
            sequential_n = repetitions;
            break;
        }
    }
    let ratio = (confirm_n.max(sequential_n) as f64) / (confirm_n.min(sequential_n) as f64);
    assert!(
        ratio < 4.0,
        "confirm {confirm_n} vs sequential {sequential_n}"
    );
}

#[test]
fn exhaustion_reports_pool_size_faithfully() {
    let cluster = cluster();
    // Random disk I/O on an HDD machine at +/-0.2%: hopeless with 60 runs.
    let machine = cluster
        .machines()
        .iter()
        .find(|m| m.type_name == "d430")
        .unwrap()
        .id;
    let pool: Vec<f64> = (0..60u64)
        .map(|n| sample(&cluster, machine, BenchmarkId::DiskRandRead, 0.0, n).unwrap())
        .collect();
    let config = ConfirmConfig::default().with_target_rel_error(0.002);
    let result = estimate(&pool, &config).unwrap();
    assert_eq!(result.requirement, Requirement::Exhausted { pool: 60 });
    assert_eq!(result.requirement.display(), ">60");
}

#[test]
fn statistic_ordering_median_p95_p99() {
    let cluster = cluster();
    let machine = cluster.machines()[0].id;
    let pool: Vec<f64> = (0..900u64)
        .map(|n| sample(&cluster, machine, BenchmarkId::NetLatency, 0.0, n).unwrap())
        .collect();
    let req = |stat: Statistic| {
        let config = ConfirmConfig::default()
            .with_statistic(stat)
            .with_target_rel_error(0.05)
            .with_growth(Growth::Geometric(1.4));
        estimate(&pool, &config).unwrap().requirement.as_ordinal()
    };
    let med = req(Statistic::Median);
    let p95 = req(Statistic::Quantile(0.95));
    let p99 = req(Statistic::Quantile(0.99));
    assert!(med <= p95, "median {med} vs p95 {p95}");
    assert!(p95 <= p99, "p95 {p95} vs p99 {p99}");
    assert!(p99 >= 299, "p99 floor");
}
