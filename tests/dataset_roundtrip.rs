//! Dataset integrity: campaign determinism, CSV/JSON round trips, and
//! store/sampler consistency.

use taming_variability::dataset::{read_csv, run_campaign, write_csv, CampaignConfig, Store};
use taming_variability::workloads::{sample, BenchmarkId};

#[test]
fn campaign_csv_round_trip_preserves_everything() {
    let (_cluster, store) = run_campaign(&CampaignConfig::quick(101));
    let mut buf = Vec::new();
    write_csv(&store, &mut buf).unwrap();
    let back = read_csv(buf.as_slice()).unwrap();
    assert_eq!(store, back);
}

#[test]
fn campaign_json_round_trip_preserves_everything() {
    let (_cluster, store) = run_campaign(&CampaignConfig::quick(102));
    let json = serde_json::to_string(&store).unwrap();
    let back: Store = serde_json::from_str(&json).unwrap();
    assert_eq!(store, back);
}

#[test]
fn store_values_match_direct_sampling() {
    // Every record in the store must be reproducible by calling the
    // sampler directly with the same coordinates.
    let config = CampaignConfig::quick(103);
    let (cluster, store) = run_campaign(&config);
    for record in store.records().iter().step_by(97) {
        let direct = sample(
            &cluster,
            record.machine,
            record.benchmark,
            record.day,
            record.run as u64,
        )
        .unwrap();
        assert_eq!(record.value, direct, "{record:?}");
    }
}

#[test]
fn filters_partition_the_dataset() {
    let (_cluster, store) = run_campaign(&CampaignConfig::quick(104));
    // Summing per-benchmark counts reconstructs the total.
    let total: usize = store
        .benchmarks()
        .into_iter()
        .map(|b| store.filter().benchmark(b).count())
        .sum();
    assert_eq!(total, store.len());
    // Summing per-type counts reconstructs the total.
    let total: usize = store
        .machine_types()
        .into_iter()
        .map(|t| store.filter().machine_type(&t).count())
        .sum();
    assert_eq!(total, store.len());
}

#[test]
fn type_baselines_order_the_measurements() {
    // m510 (NVMe) must report far higher disk-seq throughput than d710
    // (old HDD) — the catalog's heterogeneity must survive the pipeline.
    let (_cluster, store) = run_campaign(&CampaignConfig::quick(105));
    let med = |ty: &str| {
        let vals = store
            .filter()
            .machine_type(ty)
            .benchmark(BenchmarkId::DiskSeqRead)
            .values();
        taming_variability::stats::quantile::median(&vals).unwrap()
    };
    assert!(med("m510") > 4.0 * med("d710"));
}
