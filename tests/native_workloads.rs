//! Native workloads driven end to end through the statistics pipeline.
//!
//! Small sizes keep these fast; the point is that real measurements flow
//! through the same harness, planner, and intervals as simulated ones.

use taming_variability::confirm::{ConfirmConfig, PlanStatus, SequentialPlanner};
use taming_variability::stats::ci::nonparametric::median_ci_approx;
use taming_variability::stats::Summary;
use taming_variability::workloads::native::{
    DiskBench, DiskMode, MemLatencyBench, NetLatencyBench, StreamBench, StreamKernel,
};
use taming_variability::workloads::{Harness, Workload};

#[test]
fn stream_measurements_support_a_median_ci() {
    let mut bench = StreamBench::new(StreamKernel::Copy, 1 << 14)
        .unwrap()
        .with_iterations(2);
    let runs = Harness::new(2, 15).collect(&mut bench).unwrap();
    let ci = median_ci_approx(&runs, 0.95).unwrap();
    assert!(ci.ci.lower > 0.0);
    assert!(ci.ci.contains(ci.ci.estimate));
    let s = Summary::from_slice(&runs).unwrap();
    assert!(s.cov < 5.0, "copy kernel CoV insane: {}", s.cov);
}

#[test]
fn memory_latency_feeds_the_planner() {
    let mut bench = MemLatencyBench::new(1 << 10, 1 << 12, 3).unwrap();
    // A loose 20% target so the test terminates fast even on noisy CI
    // machines.
    let mut planner =
        SequentialPlanner::new(ConfirmConfig::default().with_target_rel_error(0.2), 200);
    let mut stopped = false;
    for _ in 0..200 {
        let ns = bench.run_once().unwrap();
        match planner.push(ns).unwrap() {
            PlanStatus::Satisfied { repetitions, .. } => {
                assert!(repetitions >= 10);
                stopped = true;
                break;
            }
            PlanStatus::CapReached { .. } => break,
            _ => {}
        }
    }
    // Either outcome is valid behaviour; the pipeline must simply not
    // wedge or error.
    assert!(planner.len() >= 10);
    let _ = stopped;
}

#[test]
fn disk_bench_through_harness() {
    let mut bench = DiskBench::new(DiskMode::SeqRead, 4 << 20, 1 << 20, 77).unwrap();
    let runs = Harness::new(1, 5).collect(&mut bench).unwrap();
    assert_eq!(runs.len(), 5);
    assert!(runs.iter().all(|&x| x > 0.0));
}

#[test]
fn net_latency_through_harness() {
    let mut bench = NetLatencyBench::new(25).unwrap();
    let runs = Harness::new(1, 10).collect(&mut bench).unwrap();
    assert_eq!(runs.len(), 10);
    let s = Summary::from_slice(&runs).unwrap();
    assert!(s.median > 0.0);
}
