//! End-to-end exercise of the regression sentinel through the public
//! API: the green/green/red contract (two clean runs build a baseline,
//! a degraded third run flags with a change-point), and crash safety
//! (a torn record never poisons the history or blocks further writes).

use std::path::PathBuf;

use taming_variability::sentinel::{audit, AuditConfig, HistoryStore, MetricStatus, RunRecord};

fn temp_history(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sentinel-audit-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A `repro-all`-shaped record with one wall-clock metric.
fn run_record(total_wall_secs: f64) -> RunRecord {
    let mut rec = RunRecord::new("repro-all", "repro", "0.1.0", 42, "quick");
    rec.push_metric("total_wall_secs", total_wall_secs).unwrap();
    rec
}

#[test]
fn green_green_red_with_online_changepoint() {
    let dir = temp_history("ggr");
    let store = HistoryStore::new(&dir);
    let config = AuditConfig {
        min_history: 2,
        ..AuditConfig::default()
    };

    // Run 1: empty history. Everything warms up, nothing can flag.
    let run1 = run_record(12.0);
    let report = audit(&[], &run1, &config).unwrap();
    assert!(!report.regression(), "run 1 must be green");
    assert!(report.all_warm_up());
    store.append(&run1).unwrap();

    // Run 2: one prior — still below min_history, still green.
    let run2 = run_record(12.4);
    let priors = store.load().unwrap().into_records();
    let report = audit(&priors, &run2, &config).unwrap();
    assert!(!report.regression(), "run 2 must be green");
    assert!(report.all_warm_up());
    store.append(&run2).unwrap();

    // Run 3: a gross slowdown against two comparable priors — red,
    // naming the metric, with the online detector placing the
    // change-point at the audited value (index 2 of the series).
    let run3 = run_record(30.0);
    let priors = store.load().unwrap().into_records();
    let report = audit(&priors, &run3, &config).unwrap();
    assert!(report.regression(), "run 3 must be red");
    assert_eq!(report.flagged(), vec!["total_wall_secs"]);
    let finding = report
        .findings
        .iter()
        .find(|f| f.name == "total_wall_secs")
        .unwrap();
    assert_eq!(finding.status, MetricStatus::Flagged);
    assert!(
        finding.z > config.max_z,
        "robust z {} clears the bar",
        finding.z
    );
    assert_eq!(
        finding.changepoint,
        Some(2),
        "online CUSUM pins the shift to the audited run"
    );

    // Determinism: the same history and value reproduce the same
    // verdict bit for bit.
    let again = audit(&priors, &run3, &config).unwrap();
    assert_eq!(again, report);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn speedups_stay_green_one_sided() {
    let config = AuditConfig {
        min_history: 2,
        ..AuditConfig::default()
    };
    let priors = vec![run_record(12.0), run_record(12.4), run_record(12.2)];
    let fast = run_record(1.0);
    let report = audit(&priors, &fast, &config).unwrap();
    assert!(
        !report.regression(),
        "a speedup is not a regression under the default one-sided audit"
    );
}

#[test]
fn torn_record_leaves_history_readable_and_appendable() {
    let dir = temp_history("torn");
    let store = HistoryStore::new(&dir);
    store.append(&run_record(12.0)).unwrap();
    store.append(&run_record(12.4)).unwrap();

    // Simulate a crash mid-publish: a half-written record at the next
    // sequence number and an orphaned temp file.
    let whole = run_record(12.2).encode().unwrap();
    std::fs::write(dir.join("00000003.rec"), &whole[..whole.len() / 2]).unwrap();
    std::fs::write(dir.join(".tmp-999-deadbeef"), b"partial").unwrap();

    // The torn record is counted and skipped, never parsed into junk.
    let loaded = store.load().unwrap();
    assert_eq!(loaded.records.len(), 2);
    assert_eq!(loaded.corrupt, 1);

    // New appends step over the squatting sequence number, and the
    // store stays fully auditable.
    let seq = store.append(&run_record(12.1)).unwrap();
    assert!(seq > 3, "append steps past the torn seq, got {seq}");
    let records = store.load().unwrap().into_records();
    assert_eq!(records.len(), 3);
    let config = AuditConfig {
        min_history: 2,
        ..AuditConfig::default()
    };
    let (latest, priors) = records.split_last().unwrap();
    let report = audit(priors, latest, &config).unwrap();
    assert!(!report.regression());

    let _ = std::fs::remove_dir_all(&dir);
}
