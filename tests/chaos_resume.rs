//! The fault-model contract of DESIGN.md §8, end to end: inject faults
//! or kill workers anywhere, resume from the shard journal, and the
//! final store is **byte-identical** to an uninterrupted fault-free run
//! — for any seed, any chaos seed, and any worker count. Also the
//! recovery guarantees: a completed journal resumes as a pure no-op,
//! and a corrupted shard is quietly re-collected rather than trusted.

use std::path::PathBuf;

use dataset::{
    collect_jobs, collect_resumable, collect_to_journal, CampaignConfig, CampaignError,
    CollectOptions, Collected, ShardJournal, ShardReader, Store,
};
use proptest::prelude::*;
use testbed::{catalog, Cluster, FaultPlan, FaultPolicy, Timeline};
use workloads::BenchmarkId;

/// A campaign small enough to collect dozens of times in one test, with
/// enough machines that shard chunking and per-machine kills are
/// exercised.
fn tiny_config(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::quick(seed);
    config.machines_per_type = Some(1);
    config.session_every_days = 60.0;
    config.benchmarks = vec![BenchmarkId::MemTriad, BenchmarkId::DiskSeqRead];
    config
}

fn provision(config: &CampaignConfig) -> Cluster {
    Cluster::provision(
        catalog(),
        config.scale,
        Timeline::cloudlab_default(),
        config.seed,
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "chaos-resume-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Loops `collect_resumable` until it completes, counting chaos kills.
/// Panics if resume fails to converge within one kill per machine plus
/// slack, which would mean a killed worker re-visits its commit site.
fn collect_until_complete(
    cluster: &Cluster,
    config: &CampaignConfig,
    options: &CollectOptions<'_>,
) -> (Collected, usize) {
    let budget = cluster.machines().len() + 2;
    let mut kills = 0usize;
    loop {
        match collect_resumable(cluster, config, options) {
            Ok(collected) => return (collected, kills),
            Err(CampaignError::WorkerKilled { .. }) => {
                kills += 1;
                assert!(
                    kills <= budget,
                    "resume did not converge within {budget} kills"
                );
            }
            Err(e) => panic!("unexpected campaign error: {e}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole invariant: for ANY (seed, chaos seed, worker count),
    /// killing and injecting at the chaos plan's deterministic sites and
    /// resuming from the journal converges to the exact store an
    /// uninterrupted fault-free run produces.
    #[test]
    fn kill_or_inject_anywhere_then_resume_is_byte_identical(
        seed in 0..4u64,
        chaos in 1..512u64,
        jobs in 1..4usize,
    ) {
        let config = tiny_config(seed);
        let cluster = provision(&config);
        let golden = collect_jobs(&cluster, &config, Some(1));
        let dir = temp_dir(&format!("prop-{seed}-{chaos}-{jobs}"));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = ShardJournal::open(&dir, &config).expect("journal opens");
        let options = CollectOptions {
            jobs: Some(jobs),
            journal: Some(&journal),
            faults: Some(FaultPlan::with_rates(chaos, 350, 300, 300)),
            policy: FaultPolicy::default(),
        };
        let (collected, _kills) = collect_until_complete(&cluster, &config, &options);
        prop_assert_eq!(collected.store, golden);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The streaming half of the same invariant: collection that never
    /// materializes a store — workers killed mid-run, journal resumed
    /// until complete — leaves a journal whose one-shard-at-a-time
    /// replay reproduces the fault-free materialized store byte for
    /// byte, while never holding more than one shard live.
    #[test]
    fn streaming_replay_after_chaos_matches_the_materialized_store(
        seed in 0..4u64,
        chaos in 1..512u64,
        jobs in 1..4usize,
    ) {
        let config = tiny_config(seed);
        let cluster = provision(&config);
        let golden = collect_jobs(&cluster, &config, Some(1));
        let dir = temp_dir(&format!("stream-{seed}-{chaos}-{jobs}"));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = ShardJournal::open(&dir, &config).expect("journal opens");
        let options = CollectOptions {
            jobs: Some(jobs),
            journal: Some(&journal),
            faults: Some(FaultPlan::with_rates(chaos, 350, 300, 300)),
            policy: FaultPolicy::default(),
        };
        let budget = cluster.machines().len() + 2;
        let mut kills = 0usize;
        loop {
            match collect_to_journal(&cluster, &config, &options) {
                Ok(_report) => break,
                Err(CampaignError::WorkerKilled { .. }) => {
                    kills += 1;
                    prop_assert!(kills <= budget, "streaming resume must converge");
                }
                Err(e) => panic!("unexpected campaign error: {e}"),
            }
        }
        let reader = ShardReader::open(&dir, &config).expect("journal is complete");
        let mut replayed = Store::new();
        for shard in reader.stream() {
            let shard = shard.expect("every shard is readable after convergence");
            replayed.extend(shard.records().iter().cloned());
        }
        prop_assert_eq!(replayed, golden, "stream replay equals the materialized store");
        prop_assert_eq!(reader.stats().peak_shards_resident(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Resuming a completed journal is a pure replay: zero machines are
    /// re-collected and the store still matches, whatever faults are
    /// armed (injection only fires on the collect path).
    #[test]
    fn completed_run_resumes_as_a_noop(seed in 0..4u64, chaos in 1..512u64) {
        let config = tiny_config(seed);
        let cluster = provision(&config);
        let golden = collect_jobs(&cluster, &config, Some(1));
        let dir = temp_dir(&format!("noop-{seed}-{chaos}"));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = ShardJournal::open(&dir, &config).expect("journal opens");
        let options = CollectOptions {
            jobs: Some(2),
            journal: Some(&journal),
            faults: Some(FaultPlan::with_rates(chaos, 350, 300, 300)),
            policy: FaultPolicy::default(),
        };
        let (first, _) = collect_until_complete(&cluster, &config, &options);
        prop_assert_eq!(&first.store, &golden);
        let (resumed, kills) = collect_until_complete(&cluster, &config, &options);
        prop_assert_eq!(kills, 0, "a full journal leaves nothing to kill");
        prop_assert_eq!(resumed.report.collected, 0, "no machine is re-collected");
        let shards = journal.shard_count().expect("journal dir is readable");
        prop_assert_eq!(resumed.report.replayed, shards);
        prop_assert_eq!(resumed.store, golden);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A truncated shard must not be trusted: the loader rejects it and the
/// machine is re-collected, restoring the golden store.
#[test]
fn corrupted_shard_is_recollected_not_trusted() {
    let config = tiny_config(7);
    let cluster = provision(&config);
    let golden = collect_jobs(&cluster, &config, Some(1));
    let dir = temp_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let journal = ShardJournal::open(&dir, &config).expect("journal opens");
    let options = CollectOptions {
        jobs: Some(2),
        journal: Some(&journal),
        ..CollectOptions::default()
    };
    let first = collect_resumable(&cluster, &config, &options).expect("fault-free run completes");
    assert_eq!(first.store, golden);

    // Truncate one shard to half its bytes: checksum validation fails,
    // load returns None, and only that machine is re-collected.
    let shard = std::fs::read_dir(&dir)
        .expect("journal dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "shard"))
        .expect("at least one shard");
    let bytes = std::fs::read(&shard).expect("shard readable");
    std::fs::write(&shard, &bytes[..bytes.len() / 2]).expect("truncation written");

    let resumed = collect_resumable(&cluster, &config, &options).expect("resume completes");
    assert_eq!(
        resumed.report.collected, 1,
        "only the corrupt shard is redone"
    );
    assert_eq!(resumed.store, golden, "the store heals byte-identically");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full-stack convergence at quick scale through `Context::build` — the
/// exact path `repro --resume --chaos` drives: worker deaths abort the
/// build, resume replays the journal, and the final context matches a
/// plain build.
#[test]
fn context_chaos_with_journal_converges_to_the_plain_build() {
    use analysis::{Context, Scale};

    let plain = Context::with_jobs(Scale::Quick, 21, Some(2));
    let dir = temp_dir("ctx");
    let _ = std::fs::remove_dir_all(&dir);
    let config = Scale::Quick.campaign(21);
    let journal = ShardJournal::open(&dir, &config).expect("journal opens");
    let options = CollectOptions {
        jobs: Some(2),
        journal: Some(&journal),
        faults: Some(FaultPlan::with_rates(9, 300, 250, 400)),
        policy: FaultPolicy::default(),
    };
    let budget = plain.cluster.machines().len() + 2;
    let mut kills = 0usize;
    let ctx = loop {
        match Context::build(Scale::Quick, 21, &options) {
            Ok((ctx, _report)) => break ctx,
            Err(CampaignError::WorkerKilled { .. }) => {
                kills += 1;
                assert!(kills <= budget, "context build must converge");
            }
            Err(e) => panic!("unexpected campaign error: {e}"),
        }
    };
    assert_eq!(
        ctx.store(),
        plain.store(),
        "chaos + resume reproduces the store"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `repro --stream --chaos --resume` path end to end: a streaming
/// context built under worker kills (resumed until the journal is
/// complete) renders the same experiment artifacts, byte for byte, as a
/// plain materialized build — without ever holding the full store.
#[test]
fn streaming_context_chaos_renders_byte_identical_artifacts() {
    use analysis::{find, Context, Scale};

    let plain = Context::with_jobs(Scale::Quick, 21, Some(2));
    let dir = temp_dir("stream-ctx");
    let _ = std::fs::remove_dir_all(&dir);
    let config = Scale::Quick.campaign(21);
    let journal = ShardJournal::open(&dir, &config).expect("journal opens");
    let options = CollectOptions {
        jobs: Some(2),
        journal: Some(&journal),
        faults: Some(FaultPlan::with_rates(9, 300, 250, 400)),
        policy: FaultPolicy::default(),
    };
    let budget = plain.cluster.machines().len() + 2;
    let mut kills = 0usize;
    let ctx = loop {
        match Context::build_streaming(Scale::Quick, 21, &options) {
            Ok((ctx, _report)) => break ctx,
            Err(CampaignError::WorkerKilled { .. }) => {
                kills += 1;
                assert!(kills <= budget, "streaming context build must converge");
            }
            Err(e) => panic!("unexpected campaign error: {e}"),
        }
    };
    assert!(ctx.is_streaming(), "the context replays the journal");
    for id in ["T1", "F3", "F6"] {
        let experiment = find(id).expect("registered");
        let got = experiment.run(&ctx).expect("streaming run succeeds");
        let want = experiment.run(&plain).expect("materialized run succeeds");
        let render = |artifacts: &[analysis::Artifact]| -> String {
            artifacts.iter().map(|a| a.to_csv()).collect()
        };
        assert_eq!(
            render(&got),
            render(&want),
            "{id}: streaming and materialized artifacts must be byte-identical"
        );
    }
    let stats = ctx.stream_stats().expect("streaming context has stats");
    assert_eq!(stats.peak_shards_resident(), 1, "one shard live at a time");
    let _ = std::fs::remove_dir_all(&dir);
}
