//! Full-scale (paper-sized) campaign validation.
//!
//! Ignored by default (several seconds + gigabytes of samples); run with
//! `cargo test --test paper_scale -- --ignored`.

use taming_variability::analysis::experiments::normality::census;
use taming_variability::analysis::{Context, Scale};

#[test]
#[ignore = "paper-scale campaign: run explicitly with -- --ignored"]
fn paper_scale_campaign_reproduces_the_headlines() {
    let ctx = Context::new(Scale::Paper, 42);
    // The published dataset's scale: ~900 machines, millions of points.
    assert!(ctx.cluster.machines().len() >= 850);
    assert!(
        ctx.records_len() >= 4_000_000,
        "records {}",
        ctx.records_len()
    );

    // At this sample size the normality census has full power: the
    // overwhelming majority of sets fail.
    let rows = census(&ctx, 0.05).unwrap();
    let sets: usize = rows.iter().map(|r| r.sets).sum();
    let passed: usize = rows.iter().map(|r| r.passed).sum();
    let fail_rate = 1.0 - passed as f64 / sets as f64;
    assert!(fail_rate > 0.6, "fail rate {fail_rate}");
}
