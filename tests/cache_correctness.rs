//! Correctness suite for the content-addressed artifact cache.
//!
//! Three contracts, each enforced end to end through the engine:
//!
//! 1. **Transparency** — a cache-hot run is byte-identical to a
//!    cache-cold run (artifacts, rendered tables, CSV) over arbitrary
//!    seeds and experiment subsets, and serves hits without executing a
//!    single pipeline body.
//! 2. **Invalidation** — changing the seed, the scale, or an
//!    experiment's code-version tag misses for exactly the affected
//!    experiments, observable both through the cache's own counters and
//!    the `cache.hit` / `cache.miss` telemetry counters.
//! 3. **Corruption safety** — truncated, checksum-flipped, or
//!    schema-stale entries are detected, counted as invalidated, and
//!    recomputed without a panic; the rewritten entry hits on the next
//!    run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use analysis::{find, ArtifactCache, CacheKey, Context, Experiment, Scale};
use proptest::prelude::*;

/// Telemetry counters are process-global; tests that assert on them
/// serialize behind this lock so concurrent test threads cannot bleed
/// `cache.*` increments into each other's windows.
static TELEMETRY: Mutex<()> = Mutex::new(());

fn temp_cache(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cache-correctness-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cheap experiments only: the suite runs dozens of engine invocations.
const POOL: [&str; 6] = ["T1", "T2", "F1", "F6", "F7", "T6"];

fn experiments(ids: &[&str]) -> Vec<&'static dyn Experiment> {
    ids.iter().map(|id| find(id).expect("registered")).collect()
}

/// Renders a report the way `repro` does — the bytes the user sees.
fn rendered(report: &[analysis::ExperimentRun]) -> String {
    let mut out = String::new();
    for run in report {
        for artifact in run.outcome.as_ref().expect("experiment succeeds") {
            out.push_str(&artifact.render());
            out.push_str(&artifact.to_csv());
        }
    }
    out
}

fn run_cached(
    ctx: &Arc<Context>,
    subset: &[&dyn Experiment],
    jobs: usize,
    cache: &ArtifactCache,
) -> Vec<analysis::ExperimentRun> {
    analysis::run_experiments_cached(ctx, subset, Some(jobs), Some(cache), &|_| {})
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    // Transparency: for any seed, any subset, and any worker count, the
    // hot run replays the cold run's bytes exactly.
    #[test]
    fn hot_runs_are_byte_identical_to_cold_runs(
        seed in 0u64..1_000_000,
        mask in 1usize..(1 << POOL.len()),
        jobs in 1usize..=4,
    ) {
        let ids: Vec<&str> = POOL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, id)| *id)
            .collect();
        let subset = experiments(&ids);
        let ctx = Arc::new(Context::with_jobs(Scale::Quick, seed, Some(2)));
        let cache = ArtifactCache::new(temp_cache("proptest"));
        let cold = run_cached(&ctx, &subset, jobs, &cache);
        let hot = run_cached(&ctx, &subset, jobs, &cache);
        prop_assert_eq!(cache.misses(), ids.len() as u64);
        prop_assert_eq!(cache.hits(), ids.len() as u64);
        prop_assert!(hot.iter().all(|r| r.cached));
        prop_assert_eq!(rendered(&cold), rendered(&hot));
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}

#[test]
fn hot_runs_execute_zero_experiment_bodies() {
    /// Wraps a registry experiment and counts how often its pipeline
    /// actually executes.
    struct Counting {
        inner: &'static dyn Experiment,
        runs: AtomicUsize,
    }
    impl Experiment for Counting {
        fn id(&self) -> &str {
            self.inner.id()
        }
        fn kind(&self) -> analysis::Kind {
            self.inner.kind()
        }
        fn title(&self) -> &str {
            self.inner.title()
        }
        fn cost(&self) -> analysis::Cost {
            self.inner.cost()
        }
        fn run(&self, ctx: &Context) -> Result<Vec<analysis::Artifact>, analysis::ExperimentError> {
            self.runs.fetch_add(1, Ordering::Relaxed);
            self.inner.run(ctx)
        }
    }
    let counting: Vec<Counting> = ["T1", "T2", "F6"]
        .iter()
        .map(|id| Counting {
            inner: find(id).unwrap(),
            runs: AtomicUsize::new(0),
        })
        .collect();
    let subset: Vec<&dyn Experiment> = counting.iter().map(|c| c as &dyn Experiment).collect();
    let ctx = Arc::new(Context::with_jobs(Scale::Quick, 21, Some(2)));
    let cache = ArtifactCache::new(temp_cache("zero-bodies"));
    run_cached(&ctx, &subset, 2, &cache);
    assert!(counting.iter().all(|c| c.runs.load(Ordering::Relaxed) == 1));
    run_cached(&ctx, &subset, 2, &cache);
    assert!(
        counting.iter().all(|c| c.runs.load(Ordering::Relaxed) == 1),
        "a hot run must not execute any pipeline body"
    );
    let _ = std::fs::remove_dir_all(cache.dir());
}

/// Snapshot deltas of the `cache.*` telemetry counters around `f`.
fn cache_counter_deltas(f: impl FnOnce()) -> (u64, u64, u64) {
    let before = telemetry::metrics::snapshot();
    f();
    let after = telemetry::metrics::snapshot();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    (
        delta("cache.hit"),
        delta("cache.miss"),
        delta("cache.invalidated"),
    )
}

#[test]
fn seed_change_misses_every_experiment() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    let subset = experiments(&["T1", "T2", "F6"]);
    let cache = ArtifactCache::new(temp_cache("seed"));
    let ctx_a = Arc::new(Context::with_jobs(Scale::Quick, 3, Some(2)));
    let ctx_b = Arc::new(Context::with_jobs(Scale::Quick, 4, Some(2)));

    let (hit, miss, _) = cache_counter_deltas(|| {
        run_cached(&ctx_a, &subset, 2, &cache);
    });
    assert_eq!((hit, miss), (0, 3), "cold run misses everything");
    let (hit, miss, _) = cache_counter_deltas(|| {
        run_cached(&ctx_b, &subset, 2, &cache);
    });
    assert_eq!((hit, miss), (0, 3), "a new seed addresses new entries");
    let (hit, miss, _) = cache_counter_deltas(|| {
        run_cached(&ctx_a, &subset, 2, &cache);
    });
    assert_eq!((hit, miss), (3, 0), "the original seed still hits");
    telemetry::set_enabled(false);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn scale_change_misses_every_experiment() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    let subset = experiments(&["T1", "T2"]);
    let cache = ArtifactCache::new(temp_cache("scale"));
    let ctx = Arc::new(Context::with_jobs(Scale::Quick, 5, Some(2)));
    // Same dataset, different scale tag: only the key input under test
    // changes. (Building a real paper-scale campaign here would dominate
    // the whole suite's runtime.)
    let mut relabeled = (*ctx).clone();
    relabeled.scale = Scale::Paper;
    let relabeled = Arc::new(relabeled);

    run_cached(&ctx, &subset, 2, &cache);
    let (hit, miss, _) = cache_counter_deltas(|| {
        run_cached(&relabeled, &subset, 2, &cache);
    });
    assert_eq!((hit, miss), (0, 2), "scale is part of every key");
    let (hit, miss, _) = cache_counter_deltas(|| {
        run_cached(&ctx, &subset, 2, &cache);
    });
    assert_eq!((hit, miss), (2, 0));
    telemetry::set_enabled(false);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn code_version_bump_misses_exactly_the_changed_experiment() {
    /// A registry experiment whose code-version tag the test controls.
    struct Versioned {
        inner: &'static dyn Experiment,
        version: u32,
    }
    impl Experiment for Versioned {
        fn id(&self) -> &str {
            self.inner.id()
        }
        fn kind(&self) -> analysis::Kind {
            self.inner.kind()
        }
        fn title(&self) -> &str {
            self.inner.title()
        }
        fn cost(&self) -> analysis::Cost {
            self.inner.cost()
        }
        fn code_version(&self) -> u32 {
            self.version
        }
        fn run(&self, ctx: &Context) -> Result<Vec<analysis::Artifact>, analysis::ExperimentError> {
            self.inner.run(ctx)
        }
    }
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    let ctx = Arc::new(Context::with_jobs(Scale::Quick, 6, Some(2)));
    let cache = ArtifactCache::new(temp_cache("version"));
    let run_with_version = |version: u32| {
        let versioned = Versioned {
            inner: find("T1").unwrap(),
            version,
        };
        let subset: Vec<&dyn Experiment> = vec![&versioned, find("T2").unwrap()];
        cache_counter_deltas(|| {
            run_cached(&ctx, &subset, 2, &cache);
        })
    };
    assert_eq!(run_with_version(1), (0, 2, 0), "cold");
    assert_eq!(
        run_with_version(2),
        (1, 1, 0),
        "bumping T1's tag must miss T1 and only T1"
    );
    assert_eq!(run_with_version(2), (2, 0, 0), "the bumped entry now hits");
    assert_eq!(run_with_version(1), (2, 0, 0), "the old entry still exists");
    telemetry::set_enabled(false);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn corrupt_entries_recompute_and_heal() {
    let _guard = TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    let ids = ["T1", "T2", "F6"];
    let subset = experiments(&ids);
    let ctx = Arc::new(Context::with_jobs(Scale::Quick, 8, Some(2)));
    let cache = ArtifactCache::new(temp_cache("corrupt"));
    let cold = run_cached(&ctx, &subset, 2, &cache);

    let entry_path = |id: &str| {
        cache
            .dir()
            .join(CacheKey::for_context(find(id).unwrap(), &ctx).file_name())
    };
    // Three distinct defects, one per entry.
    let t1 = std::fs::read_to_string(entry_path("T1")).unwrap();
    std::fs::write(entry_path("T1"), &t1[..t1.len() / 2]).unwrap(); // truncated
    let t2 = std::fs::read_to_string(entry_path("T2")).unwrap();
    let mut lines: Vec<&str> = t2.splitn(8, '\n').collect();
    lines[5] = "checksum 0000000000000000";
    std::fs::write(entry_path("T2"), lines.join("\n")).unwrap(); // bad checksum
    let f6 = std::fs::read_to_string(entry_path("F6")).unwrap();
    std::fs::write(entry_path("F6"), f6.replace("schema 1", "schema 999")).unwrap(); // stale schema

    let (hit, miss, invalidated) = cache_counter_deltas(|| {
        let recomputed = run_cached(&ctx, &subset, 2, &cache);
        for (c, r) in cold.iter().zip(&recomputed) {
            assert!(!r.cached, "{} must recompute, not replay a bad entry", r.id);
            assert_eq!(
                c.outcome.as_ref().unwrap(),
                r.outcome.as_ref().unwrap(),
                "recomputed artifacts match the original"
            );
        }
    });
    assert_eq!(
        (hit, miss, invalidated),
        (0, 0, 3),
        "every defect is detected as invalidation, not a clean miss"
    );

    // The recompute rewrote all three entries; they hit again.
    let (hit, miss, invalidated) = cache_counter_deltas(|| {
        let healed = run_cached(&ctx, &subset, 2, &cache);
        assert!(healed.iter().all(|r| r.cached));
    });
    assert_eq!((hit, miss, invalidated), (3, 0, 0), "rewritten entries hit");
    telemetry::set_enabled(false);
    let _ = std::fs::remove_dir_all(cache.dir());
}
