//! Live repetition planning on YOUR machine.
//!
//! Runs the real in-process STREAM triad kernel and feeds each
//! measurement into the sequential planner until the median memory
//! bandwidth is pinned to +/-2% at 95% confidence — the workflow the
//! paper recommends instead of a hard-coded "we ran it 10 times".
//!
//! Run with: `cargo run --release --example plan_repetitions`

use taming_variability::confirm::{ConfirmConfig, PlanStatus, SequentialPlanner};
use taming_variability::stats::independence::acf_check;
use taming_variability::workloads::native::{StreamBench, StreamKernel};
use taming_variability::workloads::Workload;

fn main() {
    // 8 MiB per array: big enough to leave L2 on most machines while
    // keeping the example fast. Use larger arrays for DRAM bandwidth.
    let mut bench = StreamBench::new(StreamKernel::Triad, 1 << 20)
        .expect("valid size")
        .with_iterations(4);

    // Warm up: first runs pay page-fault and frequency-ramp costs.
    for _ in 0..3 {
        let _ = bench.run_once().expect("triad runs");
    }

    let config = ConfirmConfig::default().with_target_rel_error(0.02);
    let mut planner = SequentialPlanner::new(config, 400);
    println!("measuring STREAM triad until the median is within +/-2% @ 95% ...\n");

    loop {
        let mbps = bench.run_once().expect("triad runs");
        match planner.push(mbps).expect("finite measurement") {
            PlanStatus::Collecting { needed } => {
                println!("  {mbps:10.1} MB/s  (collecting, {needed} more to minimum)");
            }
            PlanStatus::Continue { rel_error, .. } => {
                println!(
                    "  {mbps:10.1} MB/s  (CI half-width {:.2}%, target 2%)",
                    rel_error * 100.0
                );
            }
            PlanStatus::Satisfied { repetitions, ci } => {
                println!(
                    "\nstop after {repetitions} repetitions: median triad bandwidth \
                     {:.1} MB/s, 95% CI [{:.1}, {:.1}]",
                    ci.estimate, ci.lower, ci.upper
                );
                break;
            }
            PlanStatus::CapReached { cap, rel_error } => {
                println!(
                    "\ngave up at the {cap}-run cap (half-width still {:.2}%) — this \
                     machine is noisy; consider pinning frequency/cores",
                    rel_error * 100.0
                );
                break;
            }
        }
    }

    // Sound CIs need independent samples: check before trusting the stop.
    match planner.independence_ok() {
        Ok(true) => println!("independence check: ACF within the white-noise band — OK"),
        Ok(false) => println!(
            "independence check: serial correlation detected — interleave other \
             work or add cool-down gaps between runs"
        ),
        Err(_) => {
            // Too few samples to check; print the ACF band size instead.
            let _ = acf_check(planner.data(), 1);
            println!("independence check: not enough samples to evaluate");
        }
    }
}
