//! A miniature variability study: the paper's campaign in one command.
//!
//! Builds the quick-scale campaign context and prints the core exhibits:
//! the CoV-by-type tables (who varies, and how much), the normality
//! census (how often "mean +/- t-interval" would have been wrong), and
//! the CONFIRM repetition summary.
//!
//! Run with: `cargo run --release --example variability_study`

use taming_variability::analysis::experiments::confirm_study::t4_repetition_summary;
use taming_variability::analysis::experiments::cov::{f4_cov_disk, overall_cov};
use taming_variability::analysis::experiments::normality::f6_normality;
use taming_variability::analysis::{Context, Scale};
use taming_variability::workloads::BenchmarkId;

fn main() {
    println!("building the quick-scale campaign ...\n");
    let ctx = Context::new(Scale::Quick, 7);
    println!(
        "fleet: {} machines across {} types; dataset: {} measurements\n",
        ctx.cluster.machines().len(),
        ctx.cluster.types().len(),
        ctx.records_len()
    );

    // The cross-family headline: disks dwarf everything else.
    println!("median within-machine CoV by subsystem family:");
    for bench in [
        BenchmarkId::MemTriad,
        BenchmarkId::MemLatency,
        BenchmarkId::DiskSeqRead,
        BenchmarkId::DiskRandRead,
        BenchmarkId::NetLatency,
        BenchmarkId::NetBandwidth,
    ] {
        println!(
            "  {:16} {:6.2} %",
            bench.label(),
            overall_cov(&ctx, bench) * 100.0
        );
    }
    println!();

    // The full disk table (F4), the normality census (F6), and the
    // repetition summary (T4).
    for artifact in f4_cov_disk(&ctx)
        .expect("F4 runs on the quick campaign")
        .into_iter()
        .chain(f6_normality(&ctx).expect("F6 runs on the quick campaign"))
        .chain(t4_repetition_summary(&ctx).expect("T4 runs on the quick campaign"))
    {
        println!("{}", artifact.render());
    }

    println!(
        "reading guide: HDD types dominate every variability column; most latency \
         and disk sample sets fail Shapiro-Wilk; and the repetition counts a +/-1% \
         result needs range from 10 (network bandwidth) to more than the whole pool \
         (random disk I/O)."
    );
}
