//! Host health check: is this machine fit to benchmark on?
//!
//! Before trusting any measurement, probe the host itself: how accurately
//! does it time a sleep (scheduler/power-state jitter), does repeated
//! work drift (thermal ramp, frequency scaling), and do quick native
//! benchmarks produce independent, stationary samples? This is the
//! pre-flight checklist the paper's recommendations imply.
//!
//! Run with: `cargo run --release --example host_health`

use taming_variability::stats::independence::{acf_check, trend_test};
use taming_variability::stats::normality::shapiro_wilk;
use taming_variability::stats::stationarity::adf_test;
use taming_variability::stats::Summary;
use taming_variability::workloads::native::{
    ContextSwitchProbe, SleepJitterProbe, StreamBench, StreamKernel, SyscallLatencyProbe,
};
use taming_variability::workloads::Workload;

fn verdict(ok: bool) -> &'static str {
    if ok {
        "OK"
    } else {
        "SUSPECT"
    }
}

fn main() {
    println!("== host benchmarking health check ==\n");

    // 1. Timer jitter: request 200 us sleeps, measure the overshoot.
    let mut probe = SleepJitterProbe::new(200).expect("valid request");
    let overshoots = probe.collect(60).expect("sleep works");
    let s = Summary::from_slice(&overshoots).expect("non-empty");
    println!("sleep(200 us) overshoot:");
    println!(
        "  median {:8.1} us   p99 {:8.1} us   max {:8.1} us",
        s.median, s.p99, s.max
    );
    let timer_ok = s.median < 500.0;
    println!(
        "  timer fidelity: {} (microsecond-scale measurements {} trustworthy here)\n",
        verdict(timer_ok),
        if timer_ok { "are" } else { "are NOT" }
    );

    // 2. OS floors: syscall and context-switch costs bound every
    //    blocking harness on this host.
    let mut syscall = SyscallLatencyProbe::new(5000).expect("/dev/null opens");
    let sys_ns: Vec<f64> = (0..15)
        .map(|_| syscall.run_once().expect("writes"))
        .collect();
    let mut ctx = ContextSwitchProbe::new(500).expect("valid");
    let ctx_us: Vec<f64> = (0..10)
        .map(|_| ctx.run_once().expect("threads run"))
        .collect();
    let med = |v: &[f64]| taming_variability::stats::quantile::median(v).expect("non-empty");
    println!(
        "OS floors: syscall {:.0} ns, thread round trip {:.1} us\n",
        med(&sys_ns),
        med(&ctx_us)
    );

    // 3. Sustained compute: 60 STREAM triad runs; look for drift.
    let mut bench = StreamBench::new(StreamKernel::Triad, 1 << 19)
        .expect("valid size")
        .with_iterations(3);
    for _ in 0..3 {
        let _ = bench.run_once().expect("triad runs");
    }
    let runs: Vec<f64> = (0..60)
        .map(|_| bench.run_once().expect("triad runs"))
        .collect();
    let rs = Summary::from_slice(&runs).expect("non-empty");
    println!("STREAM triad (60 runs after warmup):");
    println!(
        "  median {:9.0} MB/s   CoV {:5.2}%   skew {:+.2}",
        rs.median,
        rs.cov * 100.0,
        rs.skewness
    );

    // Drift: monotone trend across the run sequence?
    let (rho, p_trend) = trend_test(&runs).expect("n >= 10");
    let drift_ok = p_trend > 0.01 || rho.abs() < 0.3;
    println!(
        "  drift: Spearman rho = {rho:+.3} (p = {p_trend:.4}) -> {}",
        verdict(drift_ok)
    );

    // Independence: autocorrelation within the white-noise band?
    let acf = acf_check(&runs, 5).expect("n >= 10");
    println!(
        "  independence: {} lag(s) escape the 95% band -> {}",
        acf.flagged_lags.len(),
        verdict(acf.flagged_lags.len() <= 1)
    );

    // Stationarity: ADF unit-root test.
    match adf_test(&runs, 2) {
        Ok(adf) => println!(
            "  stationarity: ADF stat {:.2} (p ~ {:.3}) -> {}",
            adf.statistic,
            adf.p_value,
            verdict(adf.is_stationary(0.05))
        ),
        Err(e) => println!("  stationarity: not assessable ({e})"),
    }

    // Normality — not required, but know what statistics you may use.
    match shapiro_wilk(&runs) {
        Ok(sw) => println!(
            "  normality: Shapiro-Wilk p = {:.4} -> {}",
            sw.p_value,
            if sw.is_normal(0.05) {
                "normal (t-intervals admissible)"
            } else {
                "not normal (use median + non-parametric CIs)"
            }
        ),
        Err(e) => println!("  normality: not assessable ({e})"),
    }

    println!(
        "\nchecklist: fix anything SUSPECT (pin frequency, disable deep C-states, \
         close background work) before collecting results you intend to publish."
    );
}
