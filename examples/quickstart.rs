//! Quickstart: measure, test normality, report a defensible result.
//!
//! Provisions a simulated machine, collects 50 repetitions of a disk
//! benchmark (the paper's canonical troublemaker), and walks the
//! recommended reporting pipeline: summary -> normality -> non-parametric
//! CI -> CONFIRM repetition estimate.
//!
//! Run with: `cargo run --example quickstart`

use taming_variability::confirm::{estimate, report, ConfirmConfig};
use taming_variability::dataset::{run_campaign, CampaignConfig};
use taming_variability::stats::ci::nonparametric::median_ci_exact;
use taming_variability::stats::normality::shapiro_wilk;
use taming_variability::stats::Summary;
use taming_variability::workloads::{sample, BenchmarkId};

fn main() {
    // 1. A small simulated fleet and its measurement campaign.
    let (cluster, store) = run_campaign(&CampaignConfig::quick(42));
    println!(
        "campaign: {} machines, {} measurements\n",
        store.machines().len(),
        store.len()
    );

    // 2. Fifty repetitions of disk-seq-read on one HDD machine.
    let machine = cluster
        .machines()
        .iter()
        .find(|m| m.type_name == "c220g1")
        .expect("catalog has c220g1")
        .id;
    let runs: Vec<f64> = (0..50u64)
        .map(|n| sample(&cluster, machine, BenchmarkId::DiskSeqRead, 0.0, n).unwrap())
        .collect();

    // 3. Describe the data.
    let summary = Summary::from_slice(&runs).unwrap();
    println!("disk-seq-read on {machine:?} (50 runs):");
    println!("  mean   = {:8.2} MB/s", summary.mean);
    println!("  median = {:8.2} MB/s", summary.median);
    println!("  CoV    = {:8.2} %", summary.cov * 100.0);
    println!("  skew   = {:8.2}", summary.skewness);

    // 4. Would a mean +/- t-interval be justified? Usually not.
    let sw = shapiro_wilk(&runs).unwrap();
    println!(
        "\nShapiro-Wilk: W = {:.4}, p = {:.4} -> {}",
        sw.statistic,
        sw.p_value,
        if sw.is_normal(0.05) {
            "looks normal (this time)"
        } else {
            "NOT normal: report the median, not the mean"
        }
    );

    // 5. The defensible headline number: a non-parametric median CI.
    let ci = median_ci_exact(&runs, 0.95).unwrap();
    println!(
        "\n95% CI of the median: [{:.2}, {:.2}] MB/s (achieved {:.1}%)",
        ci.ci.lower,
        ci.ci.upper,
        ci.achieved_confidence * 100.0
    );

    // 6. How many repetitions would a +/-1% result need? Ask CONFIRM.
    let pool: Vec<f64> = (0..200u64)
        .map(|n| sample(&cluster, machine, BenchmarkId::DiskSeqRead, 0.0, n).unwrap())
        .collect();
    let result = estimate(&pool, &ConfirmConfig::default()).unwrap();
    println!("\n{}", report::render_summary(&result));
}
