//! "Is A faster than B?" — done wrong, then done right.
//!
//! Two nominally identical machines of the same type differ persistently
//! (the hardware lottery). With a handful of runs and mean-based
//! eyeballing, it is easy to "conclude" a difference that is noise — or
//! to miss one that is real. This example runs the comparison both ways:
//! a naive 5-run mean comparison, then the paper's methodology
//! (CONFIRM-planned repetitions, non-parametric CIs, overlap verdict,
//! Mann-Whitney corroboration).
//!
//! Run with: `cargo run --release --example compare_configs`

use taming_variability::confirm::{estimate, ConfirmConfig};
use taming_variability::stats::comparison::{compare_medians, Verdict};
use taming_variability::testbed::{catalog, Cluster, Timeline};
use taming_variability::workloads::{sample, BenchmarkId};

fn runs(
    cluster: &Cluster,
    m: taming_variability::testbed::MachineId,
    n: usize,
    base: u64,
) -> Vec<f64> {
    (0..n as u64)
        .map(|i| sample(cluster, m, BenchmarkId::MemTriad, 0.0, base + i).unwrap())
        .collect()
}

fn main() {
    let cluster = Cluster::provision(catalog(), 0.2, Timeline::quiet(30.0), 1234);
    let fleet = cluster.machines_of_type("c220g2");
    let (a, b) = (fleet[0].id, fleet[4].id);
    println!("comparing mem-triad on two c220g2 machines: {a} vs {b}\n");

    // --- The wrong way: 5 runs, compare the means. ---
    let quick_a = runs(&cluster, a, 5, 0);
    let quick_b = runs(&cluster, b, 5, 0);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (ma, mb) = (mean(&quick_a), mean(&quick_b));
    println!("naive (5 runs each, compare means):");
    println!("  A = {ma:.0} MB/s, B = {mb:.0} MB/s");
    println!(
        "  naive conclusion: {} is faster by {:.2}% — with no error bars at all\n",
        if ma > mb { "A" } else { "B" },
        (ma - mb).abs() / ma.min(mb) * 100.0
    );

    // --- The paper's way. ---
    // 1. Plan the repetition count with CONFIRM on a pilot pool.
    let pilot = runs(&cluster, a, 100, 1000);
    let plan = estimate(
        &pilot,
        &ConfirmConfig::default().with_target_rel_error(0.005),
    )
    .unwrap();
    let n = plan.repetitions().unwrap_or(100).max(30);
    println!(
        "CONFIRM: +/-0.5% on the median needs {} repetitions",
        plan.requirement.display()
    );

    // 2. Collect that many runs on both machines and compare medians with
    //    non-parametric CIs.
    let full_a = runs(&cluster, a, n, 2000);
    let full_b = runs(&cluster, b, n, 3000);
    let cmp = compare_medians(&full_a, &full_b, 0.95).unwrap();
    println!("\nsound comparison ({n} runs each):");
    println!(
        "  A median {:.0} MB/s, 95% CI [{:.0}, {:.0}]",
        cmp.ci_a.estimate, cmp.ci_a.lower, cmp.ci_a.upper
    );
    println!(
        "  B median {:.0} MB/s, 95% CI [{:.0}, {:.0}]",
        cmp.ci_b.estimate, cmp.ci_b.lower, cmp.ci_b.upper
    );
    let verdict = match cmp.verdict {
        Verdict::ALower => "B is genuinely faster (CIs do not overlap)",
        Verdict::BLower => "A is genuinely faster (CIs do not overlap)",
        Verdict::Indistinguishable => "no real difference at 95% confidence",
    };
    println!("  verdict: {verdict}");
    println!(
        "  Mann-Whitney p = {:.4}, Cliff's delta = {:.3}",
        cmp.mann_whitney.p_value, cmp.cliffs_delta
    );
    println!(
        "\nmoral: same hardware SKU, persistent per-unit difference — only the \
         CI-based comparison can tell lottery from noise."
    );
}
