//! Power planning: how many runs to *detect* a speedup?
//!
//! Pinning down one median is half the story; most evaluations claim "A
//! beats B by x%". This example walks the two-sample workflow: pilot both
//! configurations, estimate the effect size, plan the repetition count
//! with Noether's Mann–Whitney formula (cross-checked against the
//! CI-separation plan), then run the planned experiment and render the
//! verdict.
//!
//! Run with: `cargo run --release --example detect_speedup`

use taming_variability::confirm::{
    ci_separation_plan, estimate_p_prime, noether_sample_size, ConfirmConfig,
};
use taming_variability::stats::comparison::{compare_medians, Verdict};
use taming_variability::testbed::{catalog, Cluster, Timeline};
use taming_variability::workloads::{sample, BenchmarkId};

fn runs(
    cluster: &Cluster,
    m: taming_variability::testbed::MachineId,
    bench: BenchmarkId,
    n: usize,
    base: u64,
) -> Vec<f64> {
    (0..n as u64)
        .map(|i| sample(cluster, m, bench, 0.0, base + i).unwrap())
        .collect()
}

fn main() {
    // "Configuration A" and "configuration B" are two same-type machines —
    // the hardware lottery provides a genuine few-percent difference.
    let cluster = Cluster::provision(catalog(), 0.2, Timeline::quiet(30.0), 77);
    let fleet = cluster.machines_of_type("d430");
    let (a, b) = (fleet[0].id, fleet[2].id);
    let bench = BenchmarkId::DiskSeqRead;
    println!("question: does {b} beat {a} on {bench}?\n");

    // 1. Pilot: 20 runs each.
    let pilot_a = runs(&cluster, a, bench, 20, 0);
    let pilot_b = runs(&cluster, b, bench, 20, 0);

    // 2. Effect size and Noether plan.
    let p_prime = estimate_p_prime(&pilot_a, &pilot_b).unwrap();
    println!("pilot effect size p' = P(a < b) = {p_prime:.3}");
    let n = match noether_sample_size(p_prime, 0.05, 0.9) {
        Ok(plan) => {
            println!(
                "Noether: {} runs per group for 90% power at alpha = 0.05",
                plan.per_group
            );
            plan.per_group.clamp(20, 400)
        }
        Err(_) => {
            println!("pilot shows no effect (p' = 0.5); running 100 per group anyway");
            100
        }
    };

    // 3. Cross-check: CI separation for the pilot's relative difference.
    let med = |v: &[f64]| taming_variability::stats::quantile::median(v).unwrap();
    let rel_diff = ((med(&pilot_b) - med(&pilot_a)) / med(&pilot_a))
        .abs()
        .clamp(0.005, 0.5);
    let ci_plan = ci_separation_plan(&pilot_a, rel_diff, &ConfirmConfig::default()).unwrap();
    println!(
        "CI-separation cross-check (for a {:.1}% gap): {} runs",
        rel_diff * 100.0,
        ci_plan.requirement.display()
    );

    // 4. Run the planned experiment with FRESH runs and render the verdict.
    let full_a = runs(&cluster, a, bench, n, 10_000);
    let full_b = runs(&cluster, b, bench, n, 20_000);
    let cmp = compare_medians(&full_a, &full_b, 0.95).unwrap();
    println!("\nplanned experiment ({n} runs per group):");
    println!(
        "  A median {:.1} MB/s  [{:.1}, {:.1}]",
        cmp.ci_a.estimate, cmp.ci_a.lower, cmp.ci_a.upper
    );
    println!(
        "  B median {:.1} MB/s  [{:.1}, {:.1}]",
        cmp.ci_b.estimate, cmp.ci_b.lower, cmp.ci_b.upper
    );
    println!(
        "  relative difference {:+.2}%, Mann-Whitney p = {:.4}, Cliff's delta {:+.3}",
        cmp.relative_difference * 100.0,
        cmp.mann_whitney.p_value,
        cmp.cliffs_delta
    );
    let verdict = match cmp.verdict {
        Verdict::ALower => "B is faster (CIs separated)",
        Verdict::BLower => "A is faster (CIs separated)",
        Verdict::Indistinguishable => "indistinguishable at 95% — do not publish a winner",
    };
    println!("  verdict: {verdict}");
}
