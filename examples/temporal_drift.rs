//! Detecting environment changes in a long-running campaign.
//!
//! Ten months of daily memory-latency measurements on one machine span a
//! kernel upgrade that shifts latency by ~5%. Treating the series as one
//! i.i.d. pool would corrupt every statistic; this example segments it
//! first (PELT + CUSUM) and reports per-segment medians, as the paper's
//! temporal analysis prescribes.
//!
//! Run with: `cargo run --release --example temporal_drift`

use taming_variability::confirm::{estimate_stationary, ConfirmConfig};
use taming_variability::stats::changepoint::{cusum_detect, pelt_mean, split_segments};
use taming_variability::stats::quantile::median;
use taming_variability::testbed::{catalog, Cluster, Subsystem, Timeline};
use taming_variability::workloads::{sample, BenchmarkId};

fn main() {
    let cluster = Cluster::provision(catalog(), 0.05, Timeline::cloudlab_default(), 99);
    let machine = cluster.machines()[0].id;
    println!(
        "ground truth: maintenance events at days {:?}\n",
        cluster.timeline().change_days(Subsystem::MemoryLatency)
    );

    // One measurement per day for the whole campaign.
    let series: Vec<f64> = (0..cluster.timeline().duration_days as usize)
        .map(|d| {
            sample(
                &cluster,
                machine,
                BenchmarkId::MemLatency,
                d as f64,
                d as u64,
            )
            .unwrap()
        })
        .collect();

    // Multiple-changepoint detection (PELT, automatic penalty).
    let changepoints = pelt_mean(&series, None).expect("long series");
    println!("PELT detected changepoints at days: {changepoints:?}");

    // Single-change CUSUM with permutation significance, as a cross-check.
    let cusum = cusum_detect(&series, 500, 7).expect("long series");
    println!(
        "CUSUM: day {} (p = {:.4}), level {:.1} -> {:.1} ns\n",
        cusum.changepoint, cusum.p_value, cusum.mean_before, cusum.mean_after
    );

    // Report per-segment medians — the statistics that are actually safe
    // to quote.
    let segments = split_segments(&series, &changepoints).expect("valid changepoints");
    let mut start = 0usize;
    for seg in segments {
        let med = median(seg).expect("non-empty segment");
        println!(
            "  days {:>3}..{:<3}  median latency {:.1} ns  ({} days)",
            start,
            start + seg.len(),
            med,
            seg.len()
        );
        start += seg.len();
    }
    println!(
        "\nmoral: a single pooled median would average across the upgrade and \
         describe neither environment."
    );

    // Segmentation-aware planning does all of the above in one call:
    // detect the shift, discard the stale regime, plan on the current one.
    let seg = estimate_stationary(
        &series,
        &ConfirmConfig::default().with_target_rel_error(0.02),
    )
    .expect("current regime has enough data");
    println!(
        "\nsegmentation-aware CONFIRM: discarded {} stale days, current-regime \
         median {:.1} ns, {} repetitions for +/-2%",
        seg.discarded,
        seg.result.reference,
        seg.result.requirement.display()
    );
}
