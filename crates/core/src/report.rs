//! Text rendering of CONFIRM results.

use std::fmt::Write as _;

use crate::estimator::ConfirmResult;

/// Renders the convergence curve of a CONFIRM run as an aligned text
/// table (one row per candidate subset size).
///
/// # Examples
///
/// ```
/// use confirm::{estimate, report, ConfirmConfig};
///
/// let pool: Vec<f64> = (0..60).map(|i| 100.0 + 0.05 * (i % 9) as f64).collect();
/// let result = estimate(&pool, &ConfirmConfig::default()).unwrap();
/// let table = report::render_curve(&result);
/// assert!(table.contains("subset"));
/// ```
pub fn render_curve(result: &ConfirmResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "CONFIRM: statistic={} confidence={:.0}% target=±{:.2}%",
        result.statistic.label(),
        result.confidence * 100.0,
        result.target_rel_error * 100.0
    );
    let _ = writeln!(
        out,
        "reference {} = {:.6}; requirement = {}",
        result.statistic.label(),
        result.reference,
        result.requirement.display()
    );
    let _ = writeln!(
        out,
        "{:>8}  {:>14}  {:>14}  {:>10}",
        "subset", "mean lower", "mean upper", "rel err %"
    );
    for p in &result.curve {
        let _ = writeln!(
            out,
            "{:>8}  {:>14.6}  {:>14.6}  {:>10.4}",
            p.subset_size,
            p.mean_lower,
            p.mean_upper,
            p.rel_error * 100.0
        );
    }
    out
}

/// One-line summary of a CONFIRM result.
pub fn render_summary(result: &ConfirmResult) -> String {
    format!(
        "{} repetitions needed for a {:.0}% CI of the {} within ±{:.2}% (reference {:.4})",
        result.requirement.display(),
        result.confidence * 100.0,
        result.statistic.label(),
        result.target_rel_error * 100.0,
        result.reference
    )
}

/// Renders the full decision-flow outcome: normality verdict, both
/// planners' answers, and the endorsement.
pub fn render_recommendation(rec: &crate::Recommendation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "method-selection flow:");
    match rec.normality {
        Some(t) => {
            let _ = writeln!(
                out,
                "  Shapiro-Wilk: W = {:.4}, p = {:.4} -> {}",
                t.statistic,
                t.p_value,
                if t.is_normal(0.05) {
                    "normal"
                } else {
                    "NOT normal"
                }
            );
        }
        None => {
            let _ = writeln!(out, "  Shapiro-Wilk: not assessable");
        }
    }
    let _ = writeln!(
        out,
        "  parametric (Jain): {} repetitions{}",
        rec.parametric.repetitions,
        if rec.parametric.assumption_ok {
            ""
        } else {
            "  [assumption violated]"
        }
    );
    let _ = writeln!(
        out,
        "  CONFIRM:           {} repetitions",
        rec.confirm.requirement.display()
    );
    let _ = writeln!(
        out,
        "  => use {} ({} repetitions)",
        match rec.method {
            crate::ChosenMethod::Parametric => "the parametric estimate",
            crate::ChosenMethod::Confirm => "CONFIRM",
        },
        rec.display()
    );
    out
}

/// Renders a joint multi-statistic plan.
pub fn render_joint(plan: &crate::JointPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "joint repetition plan:");
    for r in &plan.per_statistic {
        let _ = writeln!(
            out,
            "  {:8} -> {}",
            r.statistic.label(),
            r.requirement.display()
        );
    }
    let _ = writeln!(
        out,
        "  combined: {} (binding statistic: {})",
        plan.combined.display(),
        plan.binding_statistic().label()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfirmConfig;
    use crate::estimator::estimate;

    #[test]
    fn curve_table_has_one_row_per_point() {
        let pool: Vec<f64> = (0..80)
            .map(|i| 50.0 + ((i * 7) % 5) as f64 * 0.01)
            .collect();
        let r = estimate(&pool, &ConfirmConfig::default()).unwrap();
        let table = render_curve(&r);
        // 3 header lines + one per curve point.
        assert_eq!(table.lines().count(), 3 + r.curve.len());
        assert!(table.contains("median"));
    }

    #[test]
    fn recommendation_report_mentions_both_methods() {
        let pool: Vec<f64> = (0..80)
            .map(|i| 50.0 + ((i * 7) % 5) as f64 * 0.01)
            .collect();
        let rec = crate::recommend(&pool, &ConfirmConfig::default(), 0.05).unwrap();
        let text = render_recommendation(&rec);
        assert!(text.contains("parametric"));
        assert!(text.contains("CONFIRM"));
        assert!(text.contains("=> use"));
    }

    #[test]
    fn joint_report_lists_statistics() {
        let pool: Vec<f64> = (0..400)
            .map(|i| 100.0 + ((i * 31) % 17) as f64 * 0.05)
            .collect();
        let plan = crate::plan_joint(
            &pool,
            &ConfirmConfig::default().with_target_rel_error(0.05),
            &[crate::Statistic::Median, crate::Statistic::Quantile(0.95)],
        )
        .unwrap();
        let text = render_joint(&plan);
        assert!(text.contains("median"));
        assert!(text.contains("p95"));
        assert!(text.contains("combined"));
    }

    #[test]
    fn summary_mentions_requirement() {
        let pool: Vec<f64> = (0..80)
            .map(|i| 50.0 + ((i * 7) % 5) as f64 * 0.01)
            .collect();
        let r = estimate(&pool, &ConfirmConfig::default()).unwrap();
        let s = render_summary(&r);
        assert!(s.contains("10"), "{s}");
        assert!(s.contains("95%"));
    }
}
