//! Two-sample power planning: repetitions needed to *detect a
//! difference*, not just to pin down one median.
//!
//! The most common experimental question is comparative ("does my
//! optimization beat the baseline by delta?"). Two planners are provided:
//!
//! * [`noether_sample_size`] — Noether's classical formula for the
//!   Mann–Whitney test: repetitions per group from the effect size
//!   `p' = P(X < Y)`, the significance level, and the target power.
//! * [`ci_separation_plan`] — the CI-overlap route this library
//!   recommends for verdicts: enough repetitions that each group's median
//!   CI has half-width below `delta / 2`, so a true relative difference
//!   of `delta` separates the intervals. Runs CONFIRM under the hood on
//!   pilot data.

use serde::{Deserialize, Serialize};

use varstats::error::{invalid, Result};
use varstats::special::normal_quantile;

use crate::config::ConfirmConfig;
use crate::estimator::{estimate, ConfirmResult};

/// Result of Noether's Mann–Whitney sample-size formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoetherPlan {
    /// Repetitions per group.
    pub per_group: usize,
    /// Total repetitions (both groups).
    pub total: usize,
    /// The effect size used, `p' = P(X < Y)`.
    pub p_prime: f64,
}

/// Noether's (1987) sample-size formula for the two-sided Mann–Whitney
/// test with equal group sizes:
/// `N_total = (z_{1-alpha/2} + z_{power})^2 / (3 (p' - 1/2)^2)`.
///
/// `p_prime` is the probability that a random measurement from group X is
/// smaller than one from group Y; 0.5 means no effect, and values near
/// 0.5 require enormous samples.
///
/// # Errors
///
/// Returns an error for `p_prime` equal to 0.5 or outside `(0, 1)`, or
/// out-of-range `alpha`/`power`.
///
/// # Examples
///
/// ```
/// use confirm::noether_sample_size;
///
/// // A solid effect (p' = 0.71) at alpha 0.05, power 0.8 needs about 30
/// // runs per group.
/// let plan = noether_sample_size(0.71, 0.05, 0.8).unwrap();
/// assert!((25..40).contains(&plan.per_group));
/// ```
pub fn noether_sample_size(p_prime: f64, alpha: f64, power: f64) -> Result<NoetherPlan> {
    if !(p_prime > 0.0 && p_prime < 1.0) {
        return Err(invalid(
            "p_prime",
            format!("must be in (0, 1), got {p_prime}"),
        ));
    }
    if (p_prime - 0.5).abs() < 1e-6 {
        return Err(invalid(
            "p_prime",
            "no effect (p' = 0.5): no sample size can detect it",
        ));
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(invalid("alpha", format!("must be in (0, 1), got {alpha}")));
    }
    if !(power > 0.0 && power < 1.0) {
        return Err(invalid("power", format!("must be in (0, 1), got {power}")));
    }
    let z_alpha = normal_quantile(1.0 - alpha / 2.0)?;
    let z_power = normal_quantile(power)?;
    let effect = p_prime - 0.5;
    let total = ((z_alpha + z_power).powi(2) / (3.0 * effect * effect)).ceil() as usize;
    let per_group = total.div_ceil(2);
    Ok(NoetherPlan {
        per_group,
        total: per_group * 2,
        p_prime,
    })
}

/// Estimates `p' = P(x < y)` from pilot samples of the two groups.
///
/// # Errors
///
/// Returns an error on invalid input or fewer than 5 samples per group.
pub fn estimate_p_prime(x: &[f64], y: &[f64]) -> Result<f64> {
    varstats::error::check_finite(x)?;
    varstats::error::check_finite(y)?;
    if x.len() < 5 || y.len() < 5 {
        return Err(varstats::error::StatsError::TooFewSamples {
            needed: 5,
            got: x.len().min(y.len()),
        });
    }
    let mut sorted_y = y.to_vec();
    sorted_y.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut wins = 0.0;
    for &xi in x {
        let below = sorted_y.partition_point(|&v| v < xi);
        let below_or_eq = sorted_y.partition_point(|&v| v <= xi);
        // x < y counts fully; ties count half.
        wins += (sorted_y.len() - below_or_eq) as f64 + 0.5 * (below_or_eq - below) as f64;
    }
    Ok(wins / (x.len() * y.len()) as f64)
}

/// Plans repetitions so that a true relative median difference of
/// `rel_difference` separates the two groups' 95% CIs: each group needs a
/// CI half-width below `rel_difference / 2`, which is delegated to
/// CONFIRM on the pilot pool.
///
/// # Errors
///
/// Returns an error for `rel_difference` outside `(0, 1)` or any
/// underlying CONFIRM error.
pub fn ci_separation_plan(
    pilot: &[f64],
    rel_difference: f64,
    config: &ConfirmConfig,
) -> Result<ConfirmResult> {
    if !(rel_difference > 0.0 && rel_difference < 1.0) {
        return Err(invalid(
            "rel_difference",
            format!("must be in (0, 1), got {rel_difference}"),
        ));
    }
    estimate(pilot, &config.with_target_rel_error(rel_difference / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noether_reference_value() {
        // p' = 0.71, alpha = 0.05 two-sided, power 0.8:
        // N = (1.96 + 0.8416)^2 / (3 * 0.21^2) ~ 59.3 -> 60 total.
        let plan = noether_sample_size(0.71, 0.05, 0.8).unwrap();
        assert!((plan.total as i64 - 60).abs() <= 2, "{plan:?}");
        assert_eq!(plan.total, plan.per_group * 2);
    }

    #[test]
    fn smaller_effects_need_quadratically_more() {
        let big = noether_sample_size(0.7, 0.05, 0.8).unwrap();
        let small = noether_sample_size(0.55, 0.05, 0.8).unwrap();
        let ratio = small.total as f64 / big.total as f64;
        // (0.2 / 0.05)^2 = 16.
        assert!((10.0..25.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn higher_power_needs_more() {
        let p80 = noether_sample_size(0.65, 0.05, 0.8).unwrap();
        let p95 = noether_sample_size(0.65, 0.05, 0.95).unwrap();
        assert!(p95.total > p80.total);
    }

    #[test]
    fn symmetric_effects_cost_the_same() {
        let a = noether_sample_size(0.6, 0.05, 0.8).unwrap();
        let b = noether_sample_size(0.4, 0.05, 0.8).unwrap();
        assert_eq!(a.total, b.total);
    }

    #[test]
    fn p_prime_estimation() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [10.0, 11.0, 12.0, 13.0, 14.0];
        assert_eq!(estimate_p_prime(&x, &y).unwrap(), 1.0);
        assert_eq!(estimate_p_prime(&y, &x).unwrap(), 0.0);
        assert_eq!(estimate_p_prime(&x, &x).unwrap(), 0.5);
    }

    #[test]
    fn pilot_to_plan_round_trip() {
        // Pilot two groups with a clear shift, estimate p', plan, and
        // check the plan is humane for a big effect.
        let x: Vec<f64> = (0..30).map(|i| 100.0 + (i % 7) as f64).collect();
        let y: Vec<f64> = (0..30).map(|i| 106.0 + (i % 7) as f64).collect();
        let p = estimate_p_prime(&x, &y).unwrap();
        assert!(p > 0.8);
        let plan = noether_sample_size(p, 0.05, 0.9).unwrap();
        assert!(plan.per_group < 30, "{plan:?}");
    }

    #[test]
    fn ci_separation_delegates_to_confirm() {
        let pilot: Vec<f64> = (0..200)
            .map(|i| 100.0 + ((i * 13) % 11) as f64 * 0.1)
            .collect();
        let r = ci_separation_plan(&pilot, 0.02, &ConfirmConfig::default()).unwrap();
        assert!((r.target_rel_error - 0.01).abs() < 1e-12);
        assert!(r.repetitions().is_some());
    }

    #[test]
    fn validation() {
        assert!(noether_sample_size(0.5, 0.05, 0.8).is_err());
        assert!(noether_sample_size(0.0, 0.05, 0.8).is_err());
        assert!(noether_sample_size(0.7, 0.0, 0.8).is_err());
        assert!(noether_sample_size(0.7, 0.05, 1.0).is_err());
        assert!(estimate_p_prime(&[1.0], &[2.0]).is_err());
        assert!(ci_separation_plan(&[1.0; 50], 0.0, &ConfirmConfig::default()).is_err());
    }
}
