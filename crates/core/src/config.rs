//! Configuration for the CONFIRM estimator.

use serde::{Deserialize, Serialize};
use varstats::error::{invalid, Result};

/// The statistic whose confidence interval CONFIRM targets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Statistic {
    /// The sample median — the paper's default and recommendation.
    #[default]
    Median,
    /// An arbitrary quantile in `(0, 1)` (e.g. `0.99` for tail latency).
    Quantile(f64),
    /// The sample mean (classical methodology; for comparison runs).
    Mean,
}

impl Statistic {
    /// Short human-readable label.
    pub fn label(&self) -> String {
        match self {
            Statistic::Median => "median".to_string(),
            Statistic::Quantile(q) => format!("p{:.0}", q * 100.0),
            Statistic::Mean => "mean".to_string(),
        }
    }
}

/// How the candidate subset size grows between CONFIRM iterations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Growth {
    /// Increase the subset size by a fixed step (the paper's exhaustive
    /// scan uses step 1).
    Linear(usize),
    /// Multiply the subset size by a factor `> 1` (coarser but much
    /// faster; the returned requirement is an upper bound).
    Geometric(f64),
}

impl Default for Growth {
    fn default() -> Self {
        Growth::Linear(1)
    }
}

/// How each subset's confidence interval is computed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CiMethod {
    /// Order-statistic (binomial normal-approximation) intervals — the
    /// paper's method and the default.
    #[default]
    OrderStatistic,
    /// Bootstrap percentile intervals with this many resamples per
    /// subset. Far slower, but works for statistics with no
    /// order-statistic interval (the ablation in DESIGN.md §6).
    Bootstrap {
        /// Resamples per subset CI (at least 50).
        resamples: usize,
    },
}

/// How the CI "error" is measured against the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ErrorCriterion {
    /// Half the averaged CI width, relative to the full-sample statistic —
    /// the literal reading of the paper's "CI with at most x% error".
    #[default]
    HalfWidth,
    /// The worse of the two averaged bounds' distances from the
    /// full-sample statistic (stricter for asymmetric intervals).
    WorstBound,
}

/// Parameters of a CONFIRM run.
///
/// Defaults follow the paper: 95% confidence, ±1% target error, `c = 200`
/// resampling rounds, minimum subset size 10, exhaustive linear growth,
/// the median as the statistic.
///
/// # Examples
///
/// ```
/// use confirm::{ConfirmConfig, Statistic};
///
/// let config = ConfirmConfig::default()
///     .with_target_rel_error(0.05)
///     .with_statistic(Statistic::Quantile(0.99));
/// assert_eq!(config.rounds, 200);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfirmConfig {
    /// Confidence level of the intervals (paper: 0.95).
    pub confidence: f64,
    /// Target relative error (paper: 0.01 for "±1%").
    pub target_rel_error: f64,
    /// Number of random subsets drawn per candidate size (paper: c = 200).
    pub rounds: usize,
    /// Smallest subset size considered (paper: s >= 10; smaller subsets
    /// cannot carry a non-parametric 95% CI).
    pub min_subset: usize,
    /// Statistic under estimation.
    pub statistic: Statistic,
    /// Subset-size growth schedule.
    pub growth: Growth,
    /// Error criterion.
    pub criterion: ErrorCriterion,
    /// How subset CIs are computed.
    pub ci_method: CiMethod,
    /// RNG seed (CONFIRM is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for ConfirmConfig {
    fn default() -> Self {
        Self {
            confidence: 0.95,
            target_rel_error: 0.01,
            rounds: 200,
            min_subset: 10,
            statistic: Statistic::Median,
            growth: Growth::Linear(1),
            criterion: ErrorCriterion::HalfWidth,
            ci_method: CiMethod::OrderStatistic,
            seed: 0x5eed_c0f1,
        }
    }
}

impl ConfirmConfig {
    /// Sets the confidence level.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Sets the target relative error (fraction, e.g. `0.01`).
    pub fn with_target_rel_error(mut self, e: f64) -> Self {
        self.target_rel_error = e;
        self
    }

    /// Sets the number of resampling rounds per subset size.
    pub fn with_rounds(mut self, c: usize) -> Self {
        self.rounds = c;
        self
    }

    /// Sets the minimum subset size.
    pub fn with_min_subset(mut self, s: usize) -> Self {
        self.min_subset = s;
        self
    }

    /// Sets the statistic.
    pub fn with_statistic(mut self, statistic: Statistic) -> Self {
        self.statistic = statistic;
        self
    }

    /// Sets the growth schedule.
    pub fn with_growth(mut self, growth: Growth) -> Self {
        self.growth = growth;
        self
    }

    /// Sets the error criterion.
    pub fn with_criterion(mut self, criterion: ErrorCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Sets the CI method.
    pub fn with_ci_method(mut self, ci_method: CiMethod) -> Self {
        self.ci_method = ci_method;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for any out-of-domain parameter.
    pub fn validate(&self) -> Result<()> {
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(invalid(
                "confidence",
                format!("must be in (0, 1), got {}", self.confidence),
            ));
        }
        if !(self.target_rel_error > 0.0 && self.target_rel_error < 1.0) {
            return Err(invalid(
                "target_rel_error",
                format!("must be in (0, 1), got {}", self.target_rel_error),
            ));
        }
        if self.rounds < 10 {
            return Err(invalid(
                "rounds",
                format!("need at least 10 rounds, got {}", self.rounds),
            ));
        }
        if self.min_subset < 4 {
            return Err(invalid(
                "min_subset",
                format!("need at least 4, got {}", self.min_subset),
            ));
        }
        if let Statistic::Quantile(q) = self.statistic {
            if !(q > 0.0 && q < 1.0) {
                return Err(invalid(
                    "statistic",
                    format!("quantile must be in (0, 1), got {q}"),
                ));
            }
        }
        if let CiMethod::Bootstrap { resamples } = self.ci_method {
            if resamples < 50 {
                return Err(invalid(
                    "ci_method",
                    format!("bootstrap needs at least 50 resamples, got {resamples}"),
                ));
            }
        }
        match self.growth {
            Growth::Linear(0) => Err(invalid("growth", "linear step must be >= 1")),
            Growth::Geometric(f) if f <= 1.0 || !f.is_finite() => Err(invalid(
                "growth",
                format!("geometric factor must be > 1, got {f}"),
            )),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ConfirmConfig::default();
        assert_eq!(c.confidence, 0.95);
        assert_eq!(c.target_rel_error, 0.01);
        assert_eq!(c.rounds, 200);
        assert_eq!(c.min_subset, 10);
        assert_eq!(c.statistic, Statistic::Median);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let c = ConfirmConfig::default()
            .with_confidence(0.99)
            .with_target_rel_error(0.05)
            .with_rounds(100)
            .with_min_subset(12)
            .with_statistic(Statistic::Quantile(0.95))
            .with_growth(Growth::Geometric(1.5))
            .with_criterion(ErrorCriterion::WorstBound)
            .with_seed(42);
        assert!(c.validate().is_ok());
        assert_eq!(c.seed, 42);
        assert_eq!(c.statistic.label(), "p95");
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert!(ConfirmConfig::default()
            .with_confidence(1.0)
            .validate()
            .is_err());
        assert!(ConfirmConfig::default()
            .with_target_rel_error(0.0)
            .validate()
            .is_err());
        assert!(ConfirmConfig::default().with_rounds(5).validate().is_err());
        assert!(ConfirmConfig::default()
            .with_min_subset(2)
            .validate()
            .is_err());
        assert!(ConfirmConfig::default()
            .with_statistic(Statistic::Quantile(1.0))
            .validate()
            .is_err());
        assert!(ConfirmConfig::default()
            .with_growth(Growth::Linear(0))
            .validate()
            .is_err());
        assert!(ConfirmConfig::default()
            .with_growth(Growth::Geometric(1.0))
            .validate()
            .is_err());
    }

    #[test]
    fn ci_method_validation() {
        assert!(ConfirmConfig::default()
            .with_ci_method(CiMethod::Bootstrap { resamples: 10 })
            .validate()
            .is_err());
        assert!(ConfirmConfig::default()
            .with_ci_method(CiMethod::Bootstrap { resamples: 200 })
            .validate()
            .is_ok());
        assert_eq!(ConfirmConfig::default().ci_method, CiMethod::OrderStatistic);
    }

    #[test]
    fn labels() {
        assert_eq!(Statistic::Median.label(), "median");
        assert_eq!(Statistic::Mean.label(), "mean");
        assert_eq!(Statistic::Quantile(0.99).label(), "p99");
    }
}
