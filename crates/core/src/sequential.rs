//! Online ("have I run enough repetitions yet?") planning.
//!
//! CONFIRM proper needs a pre-collected pool to subsample from. When an
//! experimenter is collecting runs *live*, the natural variant is
//! sequential: after each new measurement, compute the non-parametric CI
//! on everything collected so far and stop when its relative error meets
//! the target. This module implements that stopping rule with the same
//! configuration type, plus guard rails (minimum repetitions, an optional
//! independence check, and a hard cap).

use serde::{Deserialize, Serialize};

use varstats::ci::nonparametric::{min_samples_for_quantile_ci, quantile_ci_approx};
use varstats::ci::parametric::mean_ci_t;
use varstats::ci::ConfidenceInterval;
use varstats::error::{Result, StatsError};
use varstats::independence::acf_check;

use crate::config::{ConfirmConfig, ErrorCriterion, Statistic};

/// Status of a sequential experiment after the latest measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanStatus {
    /// Too few measurements to evaluate anything yet.
    Collecting {
        /// How many measurements are still needed to reach the minimum.
        needed: usize,
    },
    /// The CI is still wider than the target; keep running.
    Continue {
        /// Current relative error.
        rel_error: f64,
        /// Current interval.
        ci: ConfidenceInterval,
    },
    /// The target is met; stop.
    Satisfied {
        /// Number of repetitions collected.
        repetitions: usize,
        /// The final interval.
        ci: ConfidenceInterval,
    },
    /// The hard cap was reached without satisfying the target.
    CapReached {
        /// The cap.
        cap: usize,
        /// Current relative error.
        rel_error: f64,
    },
}

/// A live repetition planner.
///
/// # Examples
///
/// ```
/// use confirm::{ConfirmConfig, SequentialPlanner, PlanStatus};
///
/// let config = ConfirmConfig::default().with_target_rel_error(0.05);
/// let mut planner = SequentialPlanner::new(config, 1000);
/// let mut status = None;
/// for i in 0..200 {
///     status = Some(planner.push(100.0 + (i % 5) as f64).unwrap());
///     if matches!(status, Some(PlanStatus::Satisfied { .. })) {
///         break;
///     }
/// }
/// assert!(matches!(status.unwrap(), PlanStatus::Satisfied { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct SequentialPlanner {
    config: ConfirmConfig,
    cap: usize,
    data: Vec<f64>,
    stopped: bool,
}

impl SequentialPlanner {
    /// Creates a planner with a hard cap on repetitions.
    pub fn new(config: ConfirmConfig, cap: usize) -> Self {
        Self {
            config,
            cap,
            data: Vec::new(),
            stopped: false,
        }
    }

    /// Whether this planner has ever reported [`PlanStatus::Satisfied`]
    /// from [`SequentialPlanner::push`]. Latches on the first stop: the
    /// status can be satisfied again and again as data keeps arriving,
    /// but the experiment stopped only once.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Measurements collected so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no measurements have been collected.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The measurements collected so far.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Adds one measurement and re-evaluates the stopping rule.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is not finite or the configuration is
    /// invalid.
    pub fn push(&mut self, value: f64) -> Result<PlanStatus> {
        self.config.validate()?;
        if !value.is_finite() {
            return Err(StatsError::NonFiniteValue {
                index: self.data.len(),
            });
        }
        self.data.push(value);
        telemetry::metrics::counter("confirm.seq.pushed").inc();
        let status = self.status()?;
        if let PlanStatus::Satisfied { repetitions, .. } = &status {
            // Per-evaluation: counts every satisfied re-evaluation as data
            // keeps arriving.
            telemetry::metrics::counter("confirm.seq.satisfied").inc();
            if !self.stopped {
                // Latching: each planner stops at most once, at its first
                // satisfied evaluation — `confirm.seq.stopped` counts
                // planners, `confirm.seq.stop_n` their stopping points.
                self.stopped = true;
                telemetry::metrics::counter("confirm.seq.stopped").inc();
                telemetry::metrics::histogram("confirm.seq.stop_n").record(*repetitions as f64);
            }
        }
        Ok(status)
    }

    /// Feeds a whole shard of measurements in order, stopping early at
    /// the first satisfied evaluation — the streaming data path's bulk
    /// entry point (one call per machine shard). Returns the status
    /// after the last value consumed.
    ///
    /// # Errors
    ///
    /// Same contract as [`push`](Self::push).
    pub fn push_shard(&mut self, values: &[f64]) -> Result<PlanStatus> {
        let mut status = self.status()?;
        for &v in values {
            if self.stopped {
                break;
            }
            status = self.push(v)?;
        }
        Ok(status)
    }

    /// Evaluates the stopping rule on the current data.
    ///
    /// # Errors
    ///
    /// Returns an error only for degenerate data (zero reference).
    pub fn status(&self) -> Result<PlanStatus> {
        let n = self.data.len();
        let floor = match self.config.statistic {
            Statistic::Median => min_samples_for_quantile_ci(0.5, self.config.confidence)?,
            Statistic::Quantile(q) => min_samples_for_quantile_ci(q, self.config.confidence)?,
            Statistic::Mean => 2,
        };
        let minimum = self.config.min_subset.max(floor);
        if n < minimum {
            return Ok(PlanStatus::Collecting {
                needed: minimum - n,
            });
        }
        let ci = match self.config.statistic {
            Statistic::Median => quantile_ci_approx(&self.data, 0.5, self.config.confidence)?.ci,
            Statistic::Quantile(q) => quantile_ci_approx(&self.data, q, self.config.confidence)?.ci,
            Statistic::Mean => mean_ci_t(&self.data, self.config.confidence)?,
        };
        if ci.estimate == 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        let rel_error = match self.config.criterion {
            ErrorCriterion::HalfWidth => ci.relative_half_width(),
            ErrorCriterion::WorstBound => ci.relative_bound_error(),
        };
        if rel_error <= self.config.target_rel_error {
            Ok(PlanStatus::Satisfied { repetitions: n, ci })
        } else if n >= self.cap {
            Ok(PlanStatus::CapReached {
                cap: self.cap,
                rel_error,
            })
        } else {
            Ok(PlanStatus::Continue { rel_error, ci })
        }
    }

    /// Checks whether the collected series looks independent (lag 1..=5
    /// autocorrelations inside the white-noise band). CIs mislead when it
    /// does not.
    ///
    /// # Errors
    ///
    /// Returns an error with fewer than 20 samples.
    pub fn independence_ok(&self) -> Result<bool> {
        if self.data.len() < 20 {
            return Err(StatsError::TooFewSamples {
                needed: 20,
                got: self.data.len(),
            });
        }
        Ok(acf_check(&self.data, 5)?.looks_independent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn collects_until_minimum() {
        let mut p = SequentialPlanner::new(ConfirmConfig::default(), 100);
        for i in 0..9 {
            let s = p.push(10.0 + i as f64 * 0.001).unwrap();
            assert_eq!(s, PlanStatus::Collecting { needed: 9 - i });
        }
        let s = p.push(10.0).unwrap();
        assert!(!matches!(s, PlanStatus::Collecting { .. }));
    }

    #[test]
    fn tight_stream_satisfies_quickly() {
        let mut p =
            SequentialPlanner::new(ConfirmConfig::default().with_target_rel_error(0.01), 500);
        let mut u = splitmix(1);
        let mut reps = 0;
        for _ in 0..500 {
            reps += 1;
            if let PlanStatus::Satisfied { repetitions, ci } =
                p.push(100.0 + 0.1 * (u() - 0.5)).unwrap()
            {
                assert_eq!(repetitions, reps);
                assert!(ci.relative_half_width() <= 0.01);
                return;
            }
        }
        panic!("never satisfied");
    }

    #[test]
    fn push_shard_matches_value_at_a_time_and_stops_early() {
        let config = ConfirmConfig::default().with_target_rel_error(0.01);
        let mut u = splitmix(1);
        let values: Vec<f64> = (0..500).map(|_| 100.0 + 0.1 * (u() - 0.5)).collect();

        let mut one_at_a_time = SequentialPlanner::new(config, 500);
        let mut stop_n = None;
        for &v in &values {
            if let PlanStatus::Satisfied { repetitions, .. } = one_at_a_time.push(v).unwrap() {
                stop_n = Some(repetitions);
                break;
            }
        }
        let stop_n = stop_n.expect("tight stream satisfies");

        let mut sharded = SequentialPlanner::new(config, 500);
        let mut last = sharded.status().unwrap();
        for shard in values.chunks(37) {
            last = sharded.push_shard(shard).unwrap();
            if sharded.stopped() {
                break;
            }
        }
        assert!(matches!(last, PlanStatus::Satisfied { repetitions, .. } if repetitions == stop_n));
        assert_eq!(
            sharded.len(),
            stop_n,
            "push_shard must not consume past the stopping point"
        );
        assert_eq!(sharded.data(), &values[..stop_n]);
    }

    #[test]
    fn noisy_stream_hits_cap() {
        let mut p =
            SequentialPlanner::new(ConfirmConfig::default().with_target_rel_error(0.001), 40);
        let mut u = splitmix(2);
        let mut last = None;
        for _ in 0..40 {
            last = Some(p.push(100.0 + 50.0 * (u() - 0.5)).unwrap());
        }
        assert!(
            matches!(last, Some(PlanStatus::CapReached { cap: 40, .. })),
            "{last:?}"
        );
    }

    #[test]
    fn stopped_latches_on_first_satisfaction_and_stays() {
        let mut p =
            SequentialPlanner::new(ConfirmConfig::default().with_target_rel_error(0.05), 1000);
        assert!(!p.stopped());
        let mut u = splitmix(9);
        let mut first_stop = None;
        for i in 0..200 {
            let satisfied = matches!(
                p.push(100.0 + 0.1 * (u() - 0.5)).unwrap(),
                PlanStatus::Satisfied { .. }
            );
            if satisfied && first_stop.is_none() {
                first_stop = Some(i);
            }
            // stopped() is exactly "some push has been satisfied".
            assert_eq!(p.stopped(), first_stop.is_some());
        }
        let first = first_stop.expect("tight stream satisfies");
        // The rule stayed satisfied after the latch, so the planner kept
        // reporting Satisfied — but stopped() never un-latched.
        assert!(first < 199);
        assert!(p.stopped());
    }

    #[test]
    fn rejects_non_finite() {
        let mut p = SequentialPlanner::new(ConfirmConfig::default(), 100);
        assert!(p.push(f64::NAN).is_err());
        assert!(p.push(f64::INFINITY).is_err());
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
    }

    #[test]
    fn independence_check_flags_trend() {
        let mut p = SequentialPlanner::new(ConfirmConfig::default(), 1000);
        for i in 0..50 {
            let _ = p.push(100.0 + i as f64).unwrap();
        }
        assert!(!p.independence_ok().unwrap());

        let mut p2 = SequentialPlanner::new(ConfirmConfig::default(), 1000);
        let mut u = splitmix(3);
        for _ in 0..200 {
            let _ = p2.push(100.0 + u()).unwrap();
        }
        assert!(p2.independence_ok().unwrap());
    }

    #[test]
    fn independence_check_needs_data() {
        let p = SequentialPlanner::new(ConfirmConfig::default(), 100);
        assert!(p.independence_ok().is_err());
    }

    #[test]
    fn mean_statistic_stream() {
        let cfg = ConfirmConfig::default()
            .with_statistic(Statistic::Mean)
            .with_target_rel_error(0.02);
        let mut p = SequentialPlanner::new(cfg, 1000);
        let mut u = splitmix(4);
        for _ in 0..300 {
            if let PlanStatus::Satisfied { ci, .. } = p.push(50.0 + 5.0 * (u() - 0.5)).unwrap() {
                assert!((ci.estimate - 50.0).abs() < 1.0);
                return;
            }
        }
        panic!("mean stream never satisfied");
    }
}
