//! Incremental consumption front-end for CONFIRM.
//!
//! The streaming data path (DESIGN.md §11) replays the campaign one
//! machine shard at a time, so the estimators need a way to *observe*
//! measurements as they arrive rather than being handed a fully
//! materialized pool. [`ConfirmAccumulator`] is that front-end: feed it
//! values with [`observe`](ConfirmAccumulator::observe) or whole shards
//! with [`observe_shard`](ConfirmAccumulator::observe_shard), watch the
//! running [`Moments`] for free, then [`finalize`] into the exact same
//! [`ConfirmResult`] a one-shot [`estimate`] call would produce.
//!
//! CONFIRM proper resamples the pool at many subset sizes, so the pool
//! itself must be retained — the accumulator bounds *scratch* memory
//! (per-shard), not the pool. The running moments cost O(1) and let
//! callers report progress (count, mean, CoV) mid-stream without
//! touching the pool.
//!
//! [`finalize`]: ConfirmAccumulator::finalize

use varstats::error::Result;
use varstats::Moments;

use crate::config::ConfirmConfig;
use crate::estimator::{estimate, ConfirmResult};

/// Streaming accumulator over a measurement pool destined for CONFIRM.
///
/// # Examples
///
/// ```
/// use confirm::{ConfirmAccumulator, ConfirmConfig};
///
/// let mut acc = ConfirmAccumulator::new(ConfirmConfig::default());
/// for shard in [[100.0, 101.0, 99.5], [100.5, 100.2, 99.9]] {
///     acc.observe_shard(&shard);
/// }
/// assert_eq!(acc.len(), 6);
/// assert!(acc.moments().cov().unwrap() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct ConfirmAccumulator {
    config: ConfirmConfig,
    pool: Vec<f64>,
    moments: Moments,
}

impl ConfirmAccumulator {
    /// Starts an empty accumulator that will finalize under `config`.
    pub fn new(config: ConfirmConfig) -> Self {
        ConfirmAccumulator {
            config,
            pool: Vec::new(),
            moments: Moments::new(),
        }
    }

    /// Observes one measurement.
    pub fn observe(&mut self, value: f64) {
        self.pool.push(value);
        self.moments.update(value);
    }

    /// Observes a whole shard of measurements in order.
    pub fn observe_shard(&mut self, values: &[f64]) {
        self.pool.reserve(values.len());
        for &v in values {
            self.observe(v);
        }
    }

    /// Number of measurements observed so far.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Running moments of everything observed — O(1) progress signal
    /// (count, mean, CoV) available mid-stream.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// The configuration the accumulator will finalize under.
    pub fn config(&self) -> &ConfirmConfig {
        &self.config
    }

    /// Runs CONFIRM over everything observed. Identical to calling
    /// [`estimate`] on the materialized pool: observation order is the
    /// pool order, so a shard-by-shard fold in the canonical machine
    /// order reproduces the materialized result bit for bit.
    ///
    /// # Errors
    ///
    /// Same contract as [`estimate`] (validation, finiteness, pool at
    /// least `min_subset`).
    pub fn finalize(&self) -> Result<ConfirmResult> {
        estimate(&self.pool, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Vec<f64> {
        (0..240)
            .map(|i| 100.0 + ((i * 17) % 23) as f64 * 0.1)
            .collect()
    }

    #[test]
    fn incremental_finalize_matches_one_shot_estimate() {
        let config = ConfirmConfig::default();
        let data = pool();
        let mut acc = ConfirmAccumulator::new(config.clone());
        for shard in data.chunks(37) {
            acc.observe_shard(shard);
        }
        let streamed = acc.finalize().unwrap();
        let one_shot = estimate(&data, &config).unwrap();
        assert_eq!(streamed.requirement, one_shot.requirement);
        assert_eq!(streamed.reference, one_shot.reference);
        assert_eq!(streamed.curve, one_shot.curve);
    }

    #[test]
    fn moments_track_the_pool_exactly() {
        let data = pool();
        let mut acc = ConfirmAccumulator::new(ConfirmConfig::default());
        assert!(acc.is_empty());
        for &v in &data {
            acc.observe(v);
        }
        let direct: Moments = data.iter().copied().collect();
        assert_eq!(acc.len(), data.len());
        assert_eq!(acc.moments().count(), direct.count());
        assert_eq!(acc.moments().mean(), direct.mean());
        assert_eq!(acc.moments().min(), direct.min());
        assert_eq!(acc.moments().max(), direct.max());
    }

    #[test]
    fn too_small_pools_fail_at_finalize_not_observe() {
        let mut acc = ConfirmAccumulator::new(ConfirmConfig::default());
        acc.observe_shard(&[1.0, 2.0, 3.0]);
        assert!(acc.finalize().is_err());
    }
}
