//! Segmentation-aware planning.
//!
//! CONFIRM assumes its pool is stationary. The paper's temporal finding
//! says long-lived pools often are not: environment changes shift the
//! level mid-campaign, and a repetition estimate computed across the
//! shift describes neither regime. This module composes the two results:
//! detect changepoints first (PELT), then run CONFIRM on the **current**
//! (latest) stationary segment only, reporting what was discarded so the
//! user knows their history went stale.

use serde::{Deserialize, Serialize};

use varstats::changepoint::pelt_mean;
use varstats::error::{Result, StatsError};

use crate::config::ConfirmConfig;
use crate::estimator::{estimate, ConfirmResult};

/// Outcome of segmentation-aware estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentedResult {
    /// Changepoints detected in the pool (indices into the input order).
    pub changepoints: Vec<usize>,
    /// Number of leading measurements discarded as stale regimes.
    pub discarded: usize,
    /// CONFIRM result on the latest stationary segment.
    pub result: ConfirmResult,
    /// Whether the pool was non-stationary (at least one changepoint).
    pub was_nonstationary: bool,
}

/// Runs changepoint detection on the (collection-ordered) pool, then
/// CONFIRM on the latest stationary segment.
///
/// The pool must be in **collection order** — segmentation is meaningless
/// on sorted data.
///
/// # Errors
///
/// Returns an error if the pool is invalid, or if the latest segment is
/// smaller than the configuration's minimum subset (the honest answer:
/// the current regime has too little data; collect more).
///
/// # Examples
///
/// ```
/// use confirm::{estimate_stationary, ConfirmConfig};
///
/// // 80 runs in an old regime, 120 in the current one.
/// let mut pool: Vec<f64> = (0..80).map(|i| 100.0 + (i * 37 % 11) as f64 * 0.05).collect();
/// pool.extend((0..120).map(|i| 110.0 + (i * 37 % 11) as f64 * 0.05));
/// let r = estimate_stationary(&pool, &ConfirmConfig::default()).unwrap();
/// assert!(r.was_nonstationary);
/// assert_eq!(r.discarded, 80);
/// ```
pub fn estimate_stationary(pool: &[f64], config: &ConfirmConfig) -> Result<SegmentedResult> {
    config.validate()?;
    varstats::error::check_finite(pool)?;
    // PELT needs at least 6 points; with fewer, fall through to plain
    // CONFIRM (which will itself reject pools below min_subset).
    let changepoints = if pool.len() >= 6 {
        pelt_mean(pool, None)?
    } else {
        Vec::new()
    };
    let start = changepoints.last().copied().unwrap_or(0);
    let segment = &pool[start..];
    if segment.len() < config.min_subset {
        return Err(StatsError::TooFewSamples {
            needed: config.min_subset,
            got: segment.len(),
        });
    }
    let result = estimate(segment, config)?;
    Ok(SegmentedResult {
        was_nonstationary: !changepoints.is_empty(),
        discarded: start,
        changepoints,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Requirement;

    fn splitmix(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn stationary_pool_passes_through_unchanged() {
        let mut u = splitmix(1);
        let pool: Vec<f64> = (0..150).map(|_| 100.0 + u()).collect();
        let seg = estimate_stationary(&pool, &ConfirmConfig::default()).unwrap();
        assert!(!seg.was_nonstationary);
        assert_eq!(seg.discarded, 0);
        let plain = estimate(&pool, &ConfirmConfig::default()).unwrap();
        assert_eq!(seg.result, plain);
    }

    #[test]
    fn shifted_pool_uses_only_the_new_regime() {
        let mut u = splitmix(2);
        let mut pool: Vec<f64> = (0..100).map(|_| 100.0 + u()).collect();
        pool.extend((0..100).map(|_| 120.0 + u()));
        let seg = estimate_stationary(&pool, &ConfirmConfig::default()).unwrap();
        assert!(seg.was_nonstationary);
        assert!((95..=105).contains(&seg.discarded), "{}", seg.discarded);
        // The reference median must be the NEW regime's (~120.5), not the
        // pooled one (~110).
        assert!(
            (119.0..122.0).contains(&seg.result.reference),
            "reference {}",
            seg.result.reference
        );
    }

    #[test]
    fn plain_confirm_on_shifted_pool_is_corrupted() {
        // The negative control: without segmentation, the shifted pool's
        // "median" straddles two regimes and the requirement explodes (or
        // exhausts) because no subset CI stabilizes around it.
        let mut u = splitmix(3);
        let mut pool: Vec<f64> = (0..100).map(|_| 100.0 + u()).collect();
        pool.extend((0..100).map(|_| 120.0 + u()));
        let plain = estimate(&pool, &ConfirmConfig::default()).unwrap();
        let seg = estimate_stationary(&pool, &ConfirmConfig::default()).unwrap();
        assert!(
            seg.result.requirement.as_ordinal() < plain.requirement.as_ordinal(),
            "segmented {:?} should beat pooled {:?}",
            seg.result.requirement,
            plain.requirement
        );
    }

    #[test]
    fn too_new_a_regime_is_an_honest_error() {
        let mut u = splitmix(4);
        let mut pool: Vec<f64> = (0..100).map(|_| 100.0 + u()).collect();
        pool.extend((0..5).map(|_| 150.0 + u()));
        let err = estimate_stationary(&pool, &ConfirmConfig::default()).unwrap_err();
        assert!(matches!(err, StatsError::TooFewSamples { .. }), "{err:?}");
    }

    #[test]
    fn requirement_is_usable_downstream() {
        let mut u = splitmix(5);
        let mut pool: Vec<f64> = (0..60).map(|_| 50.0 + u()).collect();
        pool.extend((0..80).map(|_| 55.0 + 0.1 * u()));
        let seg = estimate_stationary(&pool, &ConfirmConfig::default().with_target_rel_error(0.02))
            .unwrap();
        assert!(matches!(seg.result.requirement, Requirement::Satisfied(_)));
    }
}
