//! The paper's recommended decision flow.
//!
//! Recommendation (paper §6): pick the repetition-estimation method based
//! on the distribution of the samples — the parametric closed form when
//! the data is demonstrably normal, CONFIRM otherwise. This module
//! automates that flow: test normality, run the appropriate planner, and
//! report everything so the user can audit the decision.

use serde::{Deserialize, Serialize};

use varstats::error::Result;
use varstats::normality::{shapiro_wilk, TestResult};

use crate::config::ConfirmConfig;
use crate::estimator::{estimate, ConfirmResult, Requirement};
use crate::parametric::{parametric_plan, ParametricPlan};

/// Which method the flow selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChosenMethod {
    /// Data passed normality: the parametric formula applies.
    Parametric,
    /// Data failed normality (or was untestable): CONFIRM.
    Confirm,
}

/// The audited outcome of the method-selection flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Shapiro–Wilk result on the pool (None if untestable, e.g. constant
    /// data).
    pub normality: Option<TestResult>,
    /// The method that was selected.
    pub method: ChosenMethod,
    /// The repetition requirement from the selected method.
    pub requirement: Requirement,
    /// The parametric plan (always computed, for comparison).
    pub parametric: ParametricPlan,
    /// The CONFIRM result (always computed, for comparison).
    pub confirm: ConfirmResult,
}

impl Recommendation {
    /// Paper-style rendering of the recommended repetition count.
    pub fn display(&self) -> String {
        self.requirement.display()
    }
}

/// Runs the full decision flow on a pool of pilot measurements.
///
/// Both planners are always executed (the paper's T3-style comparison
/// needs both); `method`/`requirement` reflect which one the flow
/// endorses at significance level `alpha`.
///
/// # Errors
///
/// Returns an error for invalid input or configuration, or a pool smaller
/// than `config.min_subset`.
///
/// # Examples
///
/// ```
/// use confirm::{recommend, ConfirmConfig};
///
/// let pool: Vec<f64> = (0..80).map(|i| 100.0 + ((i * 31) % 11) as f64 * 0.2).collect();
/// let rec = recommend(&pool, &ConfirmConfig::default().with_target_rel_error(0.02), 0.05)
///     .unwrap();
/// println!("{} repetitions via {:?}", rec.display(), rec.method);
/// ```
pub fn recommend(pool: &[f64], config: &ConfirmConfig, alpha: f64) -> Result<Recommendation> {
    config.validate()?;
    let confirm_result = estimate(pool, config)?;
    let parametric = parametric_plan(pool, config)?;
    let normality = shapiro_wilk(pool).ok();
    let normal = normality.map(|t| t.is_normal(alpha)).unwrap_or(false);
    let (method, requirement) = if normal {
        (
            ChosenMethod::Parametric,
            Requirement::Satisfied(parametric.repetitions),
        )
    } else {
        (ChosenMethod::Confirm, confirm_result.requirement)
    };
    Ok(Recommendation {
        normality,
        method,
        requirement,
        parametric,
        confirm: confirm_result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn normal_pool(seed: u64, n: usize, mu: f64, sigma: f64) -> Vec<f64> {
        let mut u = splitmix(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = u().max(1e-12);
                let u2: f64 = u();
                mu + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn normal_data_selects_parametric() {
        let pool = normal_pool(1, 100, 100.0, 2.0);
        let rec = recommend(&pool, &ConfirmConfig::default(), 0.05).unwrap();
        assert_eq!(rec.method, ChosenMethod::Parametric);
        assert!(rec.normality.unwrap().is_normal(0.05));
        assert!(rec.requirement.count().is_some());
    }

    #[test]
    fn skewed_data_selects_confirm() {
        let mut u = splitmix(2);
        let pool: Vec<f64> = (0..100).map(|_| 10.0 - u().max(1e-12).ln() * 3.0).collect();
        let rec = recommend(
            &pool,
            &ConfirmConfig::default().with_target_rel_error(0.05),
            0.05,
        )
        .unwrap();
        assert_eq!(rec.method, ChosenMethod::Confirm);
        assert_eq!(rec.requirement, rec.confirm.requirement);
    }

    #[test]
    fn both_planners_always_present() {
        let pool = normal_pool(3, 60, 50.0, 1.0);
        let rec = recommend(&pool, &ConfirmConfig::default(), 0.05).unwrap();
        assert!(rec.parametric.repetitions >= 1);
        assert!(!rec.confirm.curve.is_empty());
        assert!(!rec.display().is_empty());
    }

    #[test]
    fn propagates_pool_too_small() {
        let pool = vec![1.0, 2.0, 3.0];
        assert!(recommend(&pool, &ConfirmConfig::default(), 0.05).is_err());
    }
}
