//! Joint planning over several statistics at once.
//!
//! Real evaluations report more than one number — typically the median
//! *and* a tail percentile. A repetition count that pins the median can
//! be hopeless for p99, so the joint requirement is the maximum over all
//! target statistics (and exhausted if any is).

use serde::{Deserialize, Serialize};

use varstats::error::{invalid, Result};

use crate::config::{ConfirmConfig, Statistic};
use crate::estimator::{estimate, ConfirmResult, Requirement};

/// Result of a joint plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointPlan {
    /// Per-statistic CONFIRM results, in input order.
    pub per_statistic: Vec<ConfirmResult>,
    /// The combined requirement: the maximum repetition count, or
    /// exhausted if any statistic exhausts the pool.
    pub combined: Requirement,
}

impl JointPlan {
    /// The statistic that drives the combined requirement.
    pub fn binding_statistic(&self) -> Statistic {
        self.per_statistic
            .iter()
            .max_by_key(|r| r.requirement.as_ordinal())
            .map(|r| r.statistic)
            .expect("at least one statistic")
    }
}

/// Runs CONFIRM once per statistic and combines the requirements.
///
/// # Errors
///
/// Returns an error for an empty statistic list or any underlying
/// estimation error.
///
/// # Examples
///
/// ```
/// use confirm::{plan_joint, ConfirmConfig, Statistic};
///
/// let pool: Vec<f64> = (0..400).map(|i| 100.0 + ((i * 31) % 17) as f64 * 0.05).collect();
/// let plan = plan_joint(
///     &pool,
///     &ConfirmConfig::default().with_target_rel_error(0.05),
///     &[Statistic::Median, Statistic::Quantile(0.95)],
/// )
/// .unwrap();
/// assert_eq!(plan.per_statistic.len(), 2);
/// ```
pub fn plan_joint(
    pool: &[f64],
    config: &ConfirmConfig,
    statistics: &[Statistic],
) -> Result<JointPlan> {
    if statistics.is_empty() {
        return Err(invalid("statistics", "need at least one statistic"));
    }
    let mut per_statistic = Vec::with_capacity(statistics.len());
    for &stat in statistics {
        per_statistic.push(estimate(pool, &config.with_statistic(stat))?);
    }
    let combined = per_statistic
        .iter()
        .map(|r| r.requirement)
        .max_by_key(|r| r.as_ordinal())
        .expect("non-empty");
    Ok(JointPlan {
        per_statistic,
        combined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                100.0 + 10.0 * (((z >> 11) as f64) / ((1u64 << 53) as f64) - 0.5)
            })
            .collect()
    }

    #[test]
    fn combined_is_max_of_parts() {
        let data = pool(1, 500);
        let config = ConfirmConfig::default()
            .with_target_rel_error(0.05)
            .with_growth(crate::Growth::Geometric(1.4));
        let plan = plan_joint(
            &data,
            &config,
            &[Statistic::Median, Statistic::Quantile(0.95)],
        )
        .unwrap();
        let max = plan
            .per_statistic
            .iter()
            .map(|r| r.requirement.as_ordinal())
            .max()
            .unwrap();
        assert_eq!(plan.combined.as_ordinal(), max);
    }

    #[test]
    fn tail_statistic_is_binding() {
        let data = pool(2, 600);
        let config = ConfirmConfig::default()
            .with_target_rel_error(0.05)
            .with_growth(crate::Growth::Geometric(1.4));
        let plan = plan_joint(
            &data,
            &config,
            &[Statistic::Median, Statistic::Quantile(0.99)],
        )
        .unwrap();
        assert_eq!(plan.binding_statistic(), Statistic::Quantile(0.99));
    }

    #[test]
    fn exhaustion_propagates_to_combined() {
        let data = pool(3, 100); // p99 floor (299) exceeds the pool.
        let config = ConfirmConfig::default().with_target_rel_error(0.05);
        let plan = plan_joint(
            &data,
            &config,
            &[Statistic::Median, Statistic::Quantile(0.99)],
        )
        .unwrap();
        assert!(matches!(
            plan.combined,
            Requirement::Exhausted { pool: 100 }
        ));
    }

    #[test]
    fn empty_statistics_rejected() {
        let data = pool(4, 100);
        assert!(plan_joint(&data, &ConfirmConfig::default(), &[]).is_err());
    }
}
