//! The parametric baseline planner (Jain's formula).
//!
//! The paper compares CONFIRM against the classical normal-theory
//! repetition estimate. This wrapper gives the two the same interface so
//! experiment T3 can run them side by side, and annotates the parametric
//! answer with a normality test so users see when its assumption is
//! violated.

use serde::{Deserialize, Serialize};

use varstats::error::Result;
use varstats::normality::{shapiro_wilk, TestResult};
use varstats::samplesize::jain_sample_size;

use crate::config::ConfirmConfig;

/// Result of the parametric (Jain) planner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParametricPlan {
    /// Estimated repetitions from Jain's formula.
    pub repetitions: usize,
    /// Raw (unrounded) formula value.
    pub raw: f64,
    /// Shapiro–Wilk result on the pilot data — if this rejects, the
    /// estimate below rests on a false assumption.
    pub normality: Option<TestResult>,
    /// Whether the pilot data passed normality at `alpha = 0.05`.
    pub assumption_ok: bool,
}

/// Estimates repetitions with Jain's formula using `config`'s confidence
/// and target error, and annotates the answer with a Shapiro–Wilk check.
///
/// # Errors
///
/// Returns an error for invalid pilot data or configuration.
///
/// # Examples
///
/// ```
/// use confirm::{parametric_plan, ConfirmConfig};
///
/// let pilot: Vec<f64> = (0..50).map(|i| 100.0 + ((i * 13) % 7) as f64).collect();
/// let plan = parametric_plan(&pilot, &ConfirmConfig::default()).unwrap();
/// assert!(plan.repetitions >= 1);
/// ```
pub fn parametric_plan(pilot: &[f64], config: &ConfirmConfig) -> Result<ParametricPlan> {
    config.validate()?;
    let est = jain_sample_size(pilot, config.target_rel_error, config.confidence)?;
    // Shapiro-Wilk needs 3..=5000 samples and nonzero variance; treat an
    // untestable pilot as "assumption unknown" rather than an error.
    let normality = shapiro_wilk(pilot).ok();
    let assumption_ok = normality.map(|t| t.is_normal(0.05)).unwrap_or(false);
    Ok(ParametricPlan {
        repetitions: est.repetitions,
        raw: est.raw,
        normality,
        assumption_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn normal_pilot_passes_assumption() {
        let mut u = splitmix(1);
        let pilot: Vec<f64> = (0..100)
            .map(|_| {
                let u1: f64 = u().max(1e-12);
                let u2: f64 = u();
                100.0 + (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let plan = parametric_plan(&pilot, &ConfirmConfig::default()).unwrap();
        assert!(plan.assumption_ok);
        assert!(plan.repetitions >= 1);
    }

    #[test]
    fn skewed_pilot_flags_assumption() {
        let mut u = splitmix(2);
        let pilot: Vec<f64> = (0..100).map(|_| 10.0 - u().max(1e-12).ln() * 5.0).collect();
        let plan = parametric_plan(&pilot, &ConfirmConfig::default()).unwrap();
        assert!(!plan.assumption_ok);
        assert!(plan.normality.unwrap().p_value < 0.05);
    }

    #[test]
    fn constant_pilot_is_untestable_but_plannable() {
        let pilot = vec![5.0; 30];
        let plan = parametric_plan(&pilot, &ConfirmConfig::default()).unwrap();
        assert_eq!(plan.repetitions, 1);
        assert!(plan.normality.is_none());
        assert!(!plan.assumption_ok);
    }

    #[test]
    fn tighter_target_more_reps() {
        let mut u = splitmix(3);
        let pilot: Vec<f64> = (0..60).map(|_| 100.0 + 10.0 * (u() - 0.5)).collect();
        let strict = parametric_plan(
            &pilot,
            &ConfirmConfig::default().with_target_rel_error(0.005),
        )
        .unwrap();
        let loose = parametric_plan(
            &pilot,
            &ConfirmConfig::default().with_target_rel_error(0.05),
        )
        .unwrap();
        assert!(strict.repetitions > loose.repetitions);
    }
}
