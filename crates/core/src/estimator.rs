//! The CONFIRM estimator.
//!
//! Given an empirical pool of measurements, CONFIRM answers: *how many
//! repetitions does this experiment need so that a non-parametric CI of
//! the statistic is within ±e% at the chosen confidence level?*
//!
//! The procedure (as published):
//!
//! 1. Pick a candidate subset size `s >= 10`.
//! 2. Draw a random subset of size `s` (without replacement) and compute
//!    the non-parametric CI of the statistic on it.
//! 3. Repeat `c = 200` times; average the lower bounds and the upper
//!    bounds separately.
//! 4. If the averaged interval's relative error is within the target, `s`
//!    is the required repetition count; otherwise grow `s` and repeat.
//!
//! If no `s <= n` reaches the target the result is *exhausted* — the
//! paper reports these entries as "> n" (e.g. "> 50").

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use varstats::ci::nonparametric::{min_samples_for_quantile_ci, quantile_ci_approx};
use varstats::ci::parametric::mean_ci_t;
use varstats::error::{check_finite, Result, StatsError};
use varstats::quantile::{quantile_sorted, QuantileMethod};

use crate::config::{CiMethod, ConfirmConfig, ErrorCriterion, Growth, Statistic};

/// One point of the CONFIRM convergence curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizePoint {
    /// Candidate subset size (repetition count).
    pub subset_size: usize,
    /// Average of the CI lower bounds over the rounds.
    pub mean_lower: f64,
    /// Average of the CI upper bounds over the rounds.
    pub mean_upper: f64,
    /// Relative error of the averaged interval under the configured
    /// criterion.
    pub rel_error: f64,
}

/// Whether CONFIRM found a satisfying repetition count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Requirement {
    /// This many repetitions reach the target error.
    Satisfied(usize),
    /// No subset of the pool (size `n`) reached the target; the true
    /// requirement exceeds `n` (the paper prints "> n").
    Exhausted {
        /// Size of the measurement pool that was exhausted.
        pool: usize,
    },
}

impl Requirement {
    /// The repetition count if satisfied.
    pub fn count(&self) -> Option<usize> {
        match self {
            Requirement::Satisfied(n) => Some(*n),
            Requirement::Exhausted { .. } => None,
        }
    }

    /// Paper-style rendering: a number, or `> n`.
    pub fn display(&self) -> String {
        match self {
            Requirement::Satisfied(n) => n.to_string(),
            Requirement::Exhausted { pool } => format!(">{pool}"),
        }
    }

    /// A numeric value usable for sorting/CDFs: the count, or `pool + 1`
    /// when exhausted.
    pub fn as_ordinal(&self) -> usize {
        match self {
            Requirement::Satisfied(n) => *n,
            Requirement::Exhausted { pool } => pool + 1,
        }
    }
}

/// Full result of a CONFIRM run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfirmResult {
    /// The repetition requirement.
    pub requirement: Requirement,
    /// The full-pool value of the statistic (the reference the error is
    /// measured against).
    pub reference: f64,
    /// Convergence curve: one point per candidate size tried.
    pub curve: Vec<SizePoint>,
    /// The statistic that was estimated.
    pub statistic: Statistic,
    /// Confidence level used.
    pub confidence: f64,
    /// Target relative error used.
    pub target_rel_error: f64,
}

impl ConfirmResult {
    /// Convenience accessor for the satisfied repetition count.
    pub fn repetitions(&self) -> Option<usize> {
        self.requirement.count()
    }
}

/// Computes the statistic on a (small, unsorted) subset.
fn point_estimate(sorted_pool_subset: &mut [f64], statistic: Statistic) -> Result<f64> {
    match statistic {
        Statistic::Mean => {
            Ok(sorted_pool_subset.iter().sum::<f64>() / sorted_pool_subset.len() as f64)
        }
        Statistic::Median | Statistic::Quantile(_) => {
            sorted_pool_subset.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let q = match statistic {
                Statistic::Median => 0.5,
                Statistic::Quantile(q) => q,
                Statistic::Mean => unreachable!(),
            };
            quantile_sorted(sorted_pool_subset, q, QuantileMethod::Linear)
        }
    }
}

/// CI of the statistic on one subset.
fn subset_ci(subset: &[f64], config: &ConfirmConfig, round_seed: u64) -> Result<(f64, f64)> {
    if let CiMethod::Bootstrap { resamples } = config.ci_method {
        let boot = varstats::ci::bootstrap::Bootstrap::new(resamples, round_seed);
        let stat = config.statistic;
        let ci = boot.ci(
            subset,
            move |xs| {
                let mut buf = xs.to_vec();
                point_estimate(&mut buf, stat).unwrap_or(f64::NAN)
            },
            config.confidence,
            varstats::ci::bootstrap::BootstrapKind::Percentile,
        )?;
        return Ok((ci.lower, ci.upper));
    }
    match config.statistic {
        Statistic::Median => {
            let r = quantile_ci_approx(subset, 0.5, config.confidence)?;
            Ok((r.ci.lower, r.ci.upper))
        }
        Statistic::Quantile(q) => {
            let r = quantile_ci_approx(subset, q, config.confidence)?;
            Ok((r.ci.lower, r.ci.upper))
        }
        Statistic::Mean => {
            let ci = mean_ci_t(subset, config.confidence)?;
            Ok((ci.lower, ci.upper))
        }
    }
}

/// Runs CONFIRM over a pool of measurements.
///
/// # Errors
///
/// Returns an error for an invalid config, an invalid pool, a pool smaller
/// than `min_subset`, or a zero-valued reference statistic (relative error
/// undefined).
///
/// # Examples
///
/// ```
/// use confirm::{estimate, ConfirmConfig};
///
/// // A extremely tight pool: even 10 repetitions give a +/-1% CI.
/// let pool: Vec<f64> = (0..60).map(|i| 100.0 + 0.01 * (i % 7) as f64).collect();
/// let result = estimate(&pool, &ConfirmConfig::default()).unwrap();
/// assert_eq!(result.repetitions(), Some(10));
/// ```
pub fn estimate(pool: &[f64], config: &ConfirmConfig) -> Result<ConfirmResult> {
    let _span = telemetry::span("confirm.estimate");
    config.validate()?;
    check_finite(pool)?;
    let n = pool.len();
    if n < config.min_subset {
        return Err(StatsError::TooFewSamples {
            needed: config.min_subset,
            got: n,
        });
    }
    // A two-sided order-statistic CI for quantile q at this confidence
    // only exists from a minimum sample size (e.g. 299 for p99 at 95%).
    // Subsets below that floor would produce clamped, non-covering
    // intervals that fool the width criterion, so CONFIRM never considers
    // them.
    let floor = match config.statistic {
        Statistic::Median => min_samples_for_quantile_ci(0.5, config.confidence)?,
        Statistic::Quantile(q) => min_samples_for_quantile_ci(q, config.confidence)?,
        Statistic::Mean => 2,
    };
    let start = config.min_subset.max(floor);

    // Full-pool reference value of the statistic.
    let mut full = pool.to_vec();
    let reference = point_estimate(&mut full, config.statistic)?;
    if reference == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    if start > n {
        // The pool cannot even carry one valid CI at this size: the paper
        // reports these as "> n".
        telemetry::metrics::counter("confirm.exhausted").inc();
        return Ok(ConfirmResult {
            requirement: Requirement::Exhausted { pool: n },
            reference,
            curve: Vec::new(),
            statistic: config.statistic,
            confidence: config.confidence,
            target_rel_error: config.target_rel_error,
        });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut indices: Vec<usize> = (0..n).collect();
    let mut subset = Vec::with_capacity(n);
    let mut curve = Vec::new();

    let rounds_run = telemetry::metrics::counter("confirm.rounds");
    let sizes_tried = telemetry::metrics::histogram("confirm.subset_size");
    let mut size = start;
    loop {
        sizes_tried.record(size as f64);
        let mut sum_lower = 0.0;
        let mut sum_upper = 0.0;
        for round in 0..config.rounds {
            // Partial Fisher-Yates: the first `size` entries become a
            // uniform random subset without replacement.
            for i in 0..size {
                let j = rng.random_range(i..n);
                indices.swap(i, j);
            }
            subset.clear();
            subset.extend(indices[..size].iter().map(|&i| pool[i]));
            let round_seed = config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((size * 1_000_003 + round) as u64);
            let (lo, hi) = subset_ci(&subset, config, round_seed)?;
            sum_lower += lo;
            sum_upper += hi;
        }
        let mean_lower = sum_lower / config.rounds as f64;
        let mean_upper = sum_upper / config.rounds as f64;
        let rel_error = match config.criterion {
            ErrorCriterion::HalfWidth => (mean_upper - mean_lower) / (2.0 * reference.abs()),
            ErrorCriterion::WorstBound => {
                let lo = (reference - mean_lower).abs();
                let hi = (mean_upper - reference).abs();
                lo.max(hi) / reference.abs()
            }
        };
        rounds_run.add(config.rounds as u64);
        curve.push(SizePoint {
            subset_size: size,
            mean_lower,
            mean_upper,
            rel_error,
        });
        if rel_error <= config.target_rel_error {
            telemetry::metrics::counter("confirm.satisfied").inc();
            return Ok(ConfirmResult {
                requirement: Requirement::Satisfied(size),
                reference,
                curve,
                statistic: config.statistic,
                confidence: config.confidence,
                target_rel_error: config.target_rel_error,
            });
        }
        if size >= n {
            telemetry::metrics::counter("confirm.exhausted").inc();
            return Ok(ConfirmResult {
                requirement: Requirement::Exhausted { pool: n },
                reference,
                curve,
                statistic: config.statistic,
                confidence: config.confidence,
                target_rel_error: config.target_rel_error,
            });
        }
        size = match config.growth {
            Growth::Linear(step) => (size + step).min(n),
            Growth::Geometric(f) => (((size as f64) * f).ceil() as usize).clamp(size + 1, n),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn uniform_pool(seed: u64, n: usize, center: f64, spread: f64) -> Vec<f64> {
        let mut u = splitmix(seed);
        (0..n).map(|_| center + spread * (u() - 0.5)).collect()
    }

    #[test]
    fn tight_data_needs_minimum() {
        let pool = uniform_pool(1, 100, 100.0, 0.1); // CoV ~ 0.03%.
        let r = estimate(&pool, &ConfirmConfig::default()).unwrap();
        assert_eq!(r.repetitions(), Some(10));
        assert_eq!(r.requirement.display(), "10");
    }

    #[test]
    fn noisy_data_needs_more_than_tight_data() {
        let tight = uniform_pool(2, 200, 100.0, 1.0);
        let noisy = uniform_pool(2, 200, 100.0, 20.0);
        let cfg = ConfirmConfig::default();
        let rt = estimate(&tight, &cfg).unwrap();
        let rn = estimate(&noisy, &cfg).unwrap();
        assert!(
            rn.requirement.as_ordinal() > rt.requirement.as_ordinal(),
            "noisy {:?} should exceed tight {:?}",
            rn.requirement,
            rt.requirement
        );
    }

    #[test]
    fn impossible_target_exhausts_pool() {
        let pool = uniform_pool(3, 50, 100.0, 40.0); // Large spread, small pool.
        let cfg = ConfirmConfig::default().with_target_rel_error(0.001);
        let r = estimate(&pool, &cfg).unwrap();
        assert_eq!(r.requirement, Requirement::Exhausted { pool: 50 });
        assert_eq!(r.requirement.display(), ">50");
        assert_eq!(r.requirement.as_ordinal(), 51);
        assert_eq!(r.repetitions(), None);
    }

    #[test]
    fn deterministic_given_seed() {
        let pool = uniform_pool(4, 120, 50.0, 5.0);
        let cfg = ConfirmConfig::default().with_seed(7);
        let a = estimate(&pool, &cfg).unwrap();
        let b = estimate(&pool, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn looser_target_needs_fewer_reps() {
        let pool = uniform_pool(5, 300, 100.0, 10.0);
        let strict = estimate(
            &pool,
            &ConfirmConfig::default().with_target_rel_error(0.005),
        )
        .unwrap();
        let loose = estimate(&pool, &ConfirmConfig::default().with_target_rel_error(0.05)).unwrap();
        assert!(loose.requirement.as_ordinal() <= strict.requirement.as_ordinal());
    }

    #[test]
    fn curve_error_is_decreasing_overall() {
        let pool = uniform_pool(6, 200, 100.0, 10.0);
        let cfg = ConfirmConfig::default().with_target_rel_error(0.002);
        let r = estimate(&pool, &cfg).unwrap();
        assert!(r.curve.len() > 5);
        let first = r.curve.first().unwrap().rel_error;
        let last = r.curve.last().unwrap().rel_error;
        assert!(last < first, "error should shrink: {first} -> {last}");
    }

    #[test]
    fn geometric_growth_is_upper_bound_of_linear() {
        let pool = uniform_pool(7, 250, 100.0, 8.0);
        let lin = estimate(&pool, &ConfirmConfig::default()).unwrap();
        let geo = estimate(
            &pool,
            &ConfirmConfig::default().with_growth(Growth::Geometric(1.3)),
        )
        .unwrap();
        assert!(geo.requirement.as_ordinal() >= lin.requirement.as_ordinal());
        assert!(geo.curve.len() <= lin.curve.len());
    }

    #[test]
    fn mean_statistic_runs_and_matches_reference() {
        let pool = uniform_pool(8, 150, 42.0, 2.0);
        let cfg = ConfirmConfig::default().with_statistic(Statistic::Mean);
        let r = estimate(&pool, &cfg).unwrap();
        let mean = pool.iter().sum::<f64>() / pool.len() as f64;
        assert!((r.reference - mean).abs() < 1e-9);
        assert!(r.repetitions().is_some());
    }

    #[test]
    fn tail_quantile_needs_more_than_median() {
        let pool = uniform_pool(9, 400, 100.0, 10.0);
        let med = estimate(&pool, &ConfirmConfig::default().with_target_rel_error(0.02)).unwrap();
        let p99 = estimate(
            &pool,
            &ConfirmConfig::default()
                .with_target_rel_error(0.02)
                .with_statistic(Statistic::Quantile(0.99)),
        )
        .unwrap();
        // A valid two-sided 95% CI for p99 needs at least 299 samples, so
        // the p99 requirement must start there.
        assert!(
            p99.requirement.as_ordinal() >= 299,
            "p99 {:?}",
            p99.requirement
        );
        assert!(p99.requirement.as_ordinal() >= med.requirement.as_ordinal());
    }

    #[test]
    fn tail_quantile_on_small_pool_is_exhausted() {
        let pool = uniform_pool(13, 50, 100.0, 10.0);
        let r = estimate(
            &pool,
            &ConfirmConfig::default().with_statistic(Statistic::Quantile(0.99)),
        )
        .unwrap();
        assert_eq!(r.requirement, Requirement::Exhausted { pool: 50 });
        assert!(r.curve.is_empty());
    }

    #[test]
    fn validation_errors() {
        let pool = uniform_pool(10, 8, 1.0, 0.1);
        assert!(estimate(&pool, &ConfirmConfig::default()).is_err()); // pool < min_subset.
        assert!(estimate(&[], &ConfirmConfig::default()).is_err());
        let zeros = vec![0.0; 50];
        assert!(estimate(&zeros, &ConfirmConfig::default()).is_err()); // reference 0.
        let bad = ConfirmConfig::default().with_rounds(1);
        assert!(estimate(&uniform_pool(11, 50, 1.0, 0.1), &bad).is_err());
    }

    #[test]
    fn bootstrap_ci_method_agrees_with_order_statistic() {
        // The ablation: bootstrap percentile CIs should land in the same
        // ballpark as order-statistic CIs for the median.
        let pool = uniform_pool(14, 150, 100.0, 10.0);
        let os = estimate(&pool, &ConfirmConfig::default().with_rounds(60)).unwrap();
        let boot = estimate(
            &pool,
            &ConfirmConfig::default()
                .with_rounds(60)
                .with_ci_method(CiMethod::Bootstrap { resamples: 100 }),
        )
        .unwrap();
        let a = os.requirement.as_ordinal() as f64;
        let b = boot.requirement.as_ordinal() as f64;
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 4.0, "order-stat {a} vs bootstrap {b}");
    }

    #[test]
    fn worst_bound_criterion_is_no_looser() {
        let pool = uniform_pool(12, 200, 100.0, 12.0);
        let hw = estimate(
            &pool,
            &ConfirmConfig::default().with_criterion(ErrorCriterion::HalfWidth),
        )
        .unwrap();
        let wb = estimate(
            &pool,
            &ConfirmConfig::default().with_criterion(ErrorCriterion::WorstBound),
        )
        .unwrap();
        assert!(wb.requirement.as_ordinal() >= hw.requirement.as_ordinal());
    }
}
