//! # confirm — repetition estimation for statistically confident results
//!
//! This crate is the primary contribution of the *Taming Performance
//! Variability* (OSDI 2018) reproduction: **CONFIRM**, a procedure that
//! answers the question every experimenter faces — *how many times do I
//! have to repeat this experiment before the result is statistically
//! trustworthy?* — without assuming the data is normally distributed.
//!
//! Three planners are provided:
//!
//! * [`estimate`] — CONFIRM proper: subsample an existing measurement pool
//!   at increasing subset sizes (`c = 200` rounds each, subsets of at
//!   least 10), average the non-parametric CI bounds, and report the first
//!   size whose averaged interval is within the target (default ±1% at
//!   95%). Reports `>n` when the pool is exhausted, exactly like the
//!   paper's tables.
//! * [`SequentialPlanner`] — the live variant: feed measurements as they
//!   arrive and stop when the CI of everything collected so far meets the
//!   target.
//! * [`parametric_plan`] — the classical baseline (Jain's closed form),
//!   annotated with a Shapiro–Wilk check of the assumption it rests on.
//!
//! [`recommend`] wires them into the paper's decision flow: test
//! normality, then trust the parametric answer only when the data earns
//! it.
//!
//! ## Example
//!
//! ```
//! use confirm::{estimate, ConfirmConfig, Statistic};
//!
//! // 200 historical runs of a benchmark.
//! let pool: Vec<f64> = (0..200).map(|i| 100.0 + ((i * 17) % 23) as f64 * 0.1).collect();
//!
//! let config = ConfirmConfig::default()      // 95%, ±1%, c = 200, s >= 10
//!     .with_statistic(Statistic::Median);
//! let result = estimate(&pool, &config).unwrap();
//! println!("run the experiment {} times", result.requirement.display());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod estimator;
mod flow;
mod incremental;
mod multi;
mod parametric;
mod power;
pub mod report;
mod segmented;
mod sequential;

pub use config::{CiMethod, ConfirmConfig, ErrorCriterion, Growth, Statistic};
pub use estimator::{estimate, ConfirmResult, Requirement, SizePoint};
pub use flow::{recommend, ChosenMethod, Recommendation};
pub use incremental::ConfirmAccumulator;
pub use multi::{plan_joint, JointPlan};
pub use parametric::{parametric_plan, ParametricPlan};
pub use power::{ci_separation_plan, estimate_p_prime, noether_sample_size, NoetherPlan};
pub use segmented::{estimate_stationary, SegmentedResult};
pub use sequential::{PlanStatus, SequentialPlanner};
