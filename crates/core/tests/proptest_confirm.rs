//! Property-based tests for the CONFIRM planners.

use confirm::{
    estimate, noether_sample_size, plan_joint, ConfirmConfig, Growth, PlanStatus, Requirement,
    SequentialPlanner, Statistic,
};
use proptest::prelude::*;

fn pool_strategy() -> impl Strategy<Value = Vec<f64>> {
    // Positive measurements with a controlled relative spread.
    (10.0..1000.0f64, 0.001..0.3f64, 30usize..120).prop_map(|(center, spread, n)| {
        let mut state = (center.to_bits() ^ n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let u = ((z >> 11) as f64) / ((1u64 << 53) as f64);
                center * (1.0 + spread * (u - 0.5))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn requirement_respects_floor_and_pool(pool in pool_strategy()) {
        let config = ConfirmConfig::default()
            .with_rounds(20)
            .with_growth(Growth::Geometric(1.5))
            .with_target_rel_error(0.05);
        let r = estimate(&pool, &config).unwrap();
        match r.requirement {
            Requirement::Satisfied(n) => {
                prop_assert!(n >= config.min_subset);
                prop_assert!(n <= pool.len());
            }
            Requirement::Exhausted { pool: p } => prop_assert_eq!(p, pool.len()),
        }
        // The reference statistic lies within the pool's range.
        let min = pool.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = pool.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(r.reference >= min && r.reference <= max);
    }

    #[test]
    fn looser_targets_never_need_more(pool in pool_strategy()) {
        let base = ConfirmConfig::default()
            .with_rounds(20)
            .with_growth(Growth::Geometric(1.5));
        let strict = estimate(&pool, &base.with_target_rel_error(0.01)).unwrap();
        let loose = estimate(&pool, &base.with_target_rel_error(0.10)).unwrap();
        prop_assert!(
            loose.requirement.as_ordinal() <= strict.requirement.as_ordinal(),
            "loose {:?} vs strict {:?}",
            loose.requirement,
            strict.requirement
        );
    }

    #[test]
    fn determinism_across_identical_calls(pool in pool_strategy()) {
        let config = ConfirmConfig::default().with_rounds(15).with_growth(Growth::Geometric(2.0));
        let a = estimate(&pool, &config).unwrap();
        let b = estimate(&pool, &config).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn curve_is_strictly_increasing_in_size(pool in pool_strategy()) {
        let config = ConfirmConfig::default()
            .with_rounds(15)
            .with_growth(Growth::Linear(7))
            .with_target_rel_error(0.002);
        let r = estimate(&pool, &config).unwrap();
        for w in r.curve.windows(2) {
            prop_assert!(w[1].subset_size > w[0].subset_size);
        }
        for p in &r.curve {
            prop_assert!(p.mean_lower <= p.mean_upper);
            prop_assert!(p.rel_error >= 0.0);
        }
    }

    #[test]
    fn joint_plan_is_max_of_parts(pool in pool_strategy()) {
        let config = ConfirmConfig::default()
            .with_rounds(15)
            .with_growth(Growth::Geometric(1.6))
            .with_target_rel_error(0.05);
        let plan = plan_joint(&pool, &config, &[Statistic::Median, Statistic::Mean]).unwrap();
        let max = plan
            .per_statistic
            .iter()
            .map(|r| r.requirement.as_ordinal())
            .max()
            .unwrap();
        prop_assert_eq!(plan.combined.as_ordinal(), max);
    }

    #[test]
    fn sequential_planner_never_stops_before_minimum(pool in pool_strategy()) {
        let config = ConfirmConfig::default().with_target_rel_error(0.5);
        let mut planner = SequentialPlanner::new(config, 1000);
        for (i, &v) in pool.iter().enumerate() {
            match planner.push(v).unwrap() {
                PlanStatus::Satisfied { repetitions, .. } => {
                    prop_assert!(repetitions >= config.min_subset);
                    prop_assert_eq!(repetitions, i + 1);
                    return Ok(());
                }
                PlanStatus::Collecting { .. } => {
                    prop_assert!(i + 1 < config.min_subset);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn noether_monotone_in_effect_size(p1 in 0.55..0.95f64, p2 in 0.55..0.95f64) {
        let (weak, strong) = if (p1 - 0.5).abs() <= (p2 - 0.5).abs() {
            (p1, p2)
        } else {
            (p2, p1)
        };
        let nw = noether_sample_size(weak, 0.05, 0.8).unwrap();
        let ns = noether_sample_size(strong, 0.05, 0.8).unwrap();
        prop_assert!(ns.total <= nw.total);
    }
}
