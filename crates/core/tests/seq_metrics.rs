//! Metric-level contract of the sequential planner: the per-evaluation
//! `confirm.seq.satisfied` counter keeps counting as data arrives, while
//! the latching `confirm.seq.stopped` counter (and the `confirm.seq.stop_n`
//! histogram) fire **once per planner** — never more.
//!
//! Lives in its own integration-test binary so the global telemetry
//! switch it toggles cannot race with other test processes.

use std::sync::Mutex;

use confirm::{ConfirmConfig, PlanStatus, SequentialPlanner};

/// Serializes the tests in this binary: they toggle the global telemetry
/// switch and reset the global metrics registry.
static GLOBALS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Drives one planner on a tight stream for `pushes` measurements,
/// returning how many of them reported `Satisfied`.
fn run_planner(seed: u64, pushes: usize) -> usize {
    let mut planner =
        SequentialPlanner::new(ConfirmConfig::default().with_target_rel_error(0.05), 10_000);
    let mut state = seed;
    let mut satisfied = 0;
    for _ in 0..pushes {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let noise = ((state >> 11) as f64) / ((1u64 << 53) as f64);
        if matches!(
            planner.push(100.0 + 0.1 * (noise - 0.5)).unwrap(),
            PlanStatus::Satisfied { .. }
        ) {
            satisfied += 1;
        }
    }
    assert!(planner.stopped(), "tight stream must satisfy the target");
    satisfied
}

#[test]
fn stopped_fires_once_per_planner_while_satisfied_counts_evaluations() {
    let _guard = lock();
    telemetry::metrics::reset();
    telemetry::set_enabled(true);
    let satisfied_pushes = run_planner(1, 100);
    telemetry::set_enabled(false);

    let snapshot = telemetry::metrics::snapshot();
    assert!(
        satisfied_pushes > 1,
        "stream must stay satisfied after the first stop for the \
         latching distinction to be exercised (got {satisfied_pushes})"
    );
    assert_eq!(
        snapshot.counter("confirm.seq.stopped"),
        Some(1),
        "a single planner stops exactly once"
    );
    assert_eq!(
        snapshot.counter("confirm.seq.satisfied"),
        Some(satisfied_pushes as u64)
    );
    assert_eq!(snapshot.counter("confirm.seq.pushed"), Some(100));
    // The stop-point histogram records one entry per planner, not one
    // per satisfied evaluation.
    assert_eq!(
        snapshot.histogram("confirm.seq.stop_n").map(|h| h.count),
        Some(1)
    );
}

#[test]
fn stopped_counts_planners() {
    let _guard = lock();
    telemetry::metrics::reset();
    telemetry::set_enabled(true);
    for seed in 1..=3 {
        run_planner(seed, 80);
    }
    telemetry::set_enabled(false);

    let snapshot = telemetry::metrics::snapshot();
    assert_eq!(snapshot.counter("confirm.seq.stopped"), Some(3));
    assert_eq!(
        snapshot.histogram("confirm.seq.stop_n").map(|h| h.count),
        Some(3)
    );
}
