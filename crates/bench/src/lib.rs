//! Benchmark-only crate: see the `benches/` directory.
