//! Benchmark-only crate: see the `benches/` directory.
//!
//! The one library export feeds Criterion results into the regression
//! sentinel, so `cargo bench` runs join the same audited history as
//! `repro all` and campaign runs:
//!
//! ```no_run
//! bench::record_criterion_run(
//!     std::path::Path::new("target/criterion"),
//!     std::path::Path::new("artifacts/.sentinel"),
//! ).unwrap();
//! ```
//!
//! (`repro sentinel record --criterion target/criterion` does the same
//! from the CLI.)

use std::path::Path;

/// Records one `bench`-kind run in the sentinel history: every
/// Criterion median found under `criterion_dir` becomes an audited
/// `bench.<name>.median_ns` metric. Returns the appended sequence
/// number.
///
/// # Errors
///
/// Returns an error when no estimates are found (nothing to record is
/// more likely a wrong path than an empty benchmark suite) or when the
/// history cannot be written.
pub fn record_criterion_run(criterion_dir: &Path, history_dir: &Path) -> sentinel::Result<u64> {
    let medians = sentinel::criterion::criterion_medians(criterion_dir);
    if medians.is_empty() {
        return Err(sentinel::SentinelError::InvalidConfig(format!(
            "no Criterion estimates under {}",
            criterion_dir.display()
        )));
    }
    let mut rec =
        sentinel::RunRecord::new("bench", "criterion", env!("CARGO_PKG_VERSION"), 0, "bench");
    for (name, median) in &medians {
        rec.push_metric(name, *median)?;
    }
    sentinel::HistoryStore::new(history_dir).append(&rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn criterion_output_round_trips_into_the_history() {
        let root = std::env::temp_dir().join(format!(
            "bench-sentinel-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        let criterion = root.join("criterion");
        let new = criterion.join("confirm_quick").join("new");
        fs::create_dir_all(&new).unwrap();
        fs::write(
            new.join("estimates.json"),
            "{\"median\": {\"point_estimate\": 123.5}}",
        )
        .unwrap();
        let history = root.join("history");

        let seq = record_criterion_run(&criterion, &history).unwrap();
        assert_eq!(seq, 1);
        let loaded = sentinel::HistoryStore::new(&history).load().unwrap();
        assert_eq!(loaded.records.len(), 1);
        let rec = &loaded.records[0].1;
        assert_eq!(rec.kind, "bench");
        assert_eq!(rec.metrics["bench.confirm_quick.median_ns"], 123.5);

        // An empty or wrong directory is an error, not a silent no-op.
        assert!(record_criterion_run(&root.join("nope"), &history).is_err());
        let _ = fs::remove_dir_all(&root);
    }
}
