//! One bench per reproduced figure: regenerating F1–F12 end to end from
//! a shared quick-scale campaign context.

use std::hint::black_box;

use analysis::{find, Context, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let ctx = Context::new(Scale::Quick, 42);
    let mut group = c.benchmark_group("repro_figures");
    group.sample_size(10);
    for id in [
        "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14",
        "F15", "F16", "F17",
    ] {
        let experiment = find(id).expect("registered figure");
        group.bench_function(id, |b| {
            b.iter(|| experiment.run(black_box(&ctx)).map(|a| a.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
