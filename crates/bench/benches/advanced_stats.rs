//! Criterion benches for the second-wave statistics kernels: KDE,
//! robust estimators, rank tests, stationarity, QQ analytics, and the
//! speedup-ratio bootstrap.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId as CriterionId, Criterion};
use varstats::comparison::speedup_ci;
use varstats::density::Kde;
use varstats::qq::normal_qq;
use varstats::ranktests::{kruskal_wallis, wilcoxon_signed_rank};
use varstats::robust::{hodges_lehmann, hodges_lehmann_ci, trimmed_mean};
use varstats::stationarity::adf_test;

fn skewed_data(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let u = ((z >> 11) as f64) / ((1u64 << 53) as f64);
            100.0 * (1.0 - 0.1 * u.max(1e-12).ln())
        })
        .collect()
}

fn bench_kde(c: &mut Criterion) {
    let mut group = c.benchmark_group("kde");
    for n in [100usize, 1000] {
        let data = skewed_data(n, 1);
        group.bench_with_input(CriterionId::new("grid200", n), &data, |b, d| {
            b.iter(|| Kde::new(black_box(d)).unwrap().grid(200).unwrap().len());
        });
    }
    group.finish();
}

fn bench_robust(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust");
    let data = skewed_data(200, 2);
    group.bench_function("trimmed_mean_200", |b| {
        b.iter(|| trimmed_mean(black_box(&data), 0.1).unwrap());
    });
    group.bench_function("hodges_lehmann_200", |b| {
        b.iter(|| hodges_lehmann(black_box(&data)).unwrap());
    });
    group.sample_size(20);
    group.bench_function("hodges_lehmann_ci_200", |b| {
        b.iter(|| hodges_lehmann_ci(black_box(&data), 0.95).unwrap());
    });
    group.finish();
}

fn bench_rank_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_tests");
    let a = skewed_data(200, 3);
    let b2 = skewed_data(200, 4);
    let c3 = skewed_data(200, 5);
    group.bench_function("wilcoxon_signed_rank_200", |b| {
        b.iter(|| wilcoxon_signed_rank(black_box(&a), 105.0).unwrap());
    });
    group.bench_function("kruskal_wallis_3x200", |b| {
        b.iter(|| kruskal_wallis(black_box(&[&a, &b2, &c3])).unwrap());
    });
    group.finish();
}

fn bench_stationarity_and_qq(c: &mut Criterion) {
    let mut group = c.benchmark_group("series_diagnostics");
    let series = skewed_data(500, 6);
    group.bench_function("adf_lags4_500", |b| {
        b.iter(|| adf_test(black_box(&series), 4).unwrap());
    });
    group.bench_function("normal_qq_500", |b| {
        b.iter(|| normal_qq(black_box(&series)).unwrap());
    });
    group.finish();
}

fn bench_speedup_ci(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup_ci");
    group.sample_size(20);
    let a = skewed_data(100, 7);
    let b2 = skewed_data(100, 8);
    group.bench_function("bootstrap_1000_resamples", |b| {
        b.iter(|| speedup_ci(black_box(&a), black_box(&b2), 0.95, 1000, 9).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kde,
    bench_robust,
    bench_rank_tests,
    bench_stationarity_and_qq,
    bench_speedup_ci
);
criterion_main!(benches);
