//! Criterion benches for the serving daemon's hot path: in-process
//! request handling (text, CSV, gzip), streamed-body chunk production,
//! and full HTTP round trips over a real TCP connection. Recorded into
//! the sentinel history by CI (`repro sentinel record --criterion`), so
//! a serving-throughput regression trips the same audit as an engine
//! slowdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use serve::{ArtifactService, Reply, Request, ServeOptions, Server};

fn temp_cache(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("serve-bench-{label}-{}", std::process::id()))
}

fn warm_service(label: &str) -> Arc<ArtifactService> {
    let service = Arc::new(ArtifactService::new(ServeOptions {
        jobs: Some(2),
        ..ServeOptions::new(temp_cache(label))
    }));
    // Warm the key every bench hits so iterations measure serving, not
    // the one-time artifact computation.
    let reply = service.handle(&request("/v1/artifacts/T1?seed=7&scale=quick", &[]));
    assert_eq!(reply.status(), 200);
    service
}

fn request(path: &str, extra: &[&str]) -> Request {
    let mut raw = format!("GET {path} HTTP/1.1\r\n");
    for h in extra {
        raw.push_str(h);
        raw.push_str("\r\n");
    }
    raw.push_str("\r\n");
    Request::read_from(&mut BufReader::new(raw.as_bytes()))
        .expect("well-formed")
        .expect("one request")
}

fn bench_handle(c: &mut Criterion) {
    let service = warm_service("handle");
    let mut group = c.benchmark_group("serve_throughput");
    let text = request("/v1/artifacts/T1?seed=7&scale=quick", &[]);
    group.bench_function("hot_text", |b| {
        b.iter(|| {
            let reply = service.handle(std::hint::black_box(&text));
            reply.into_response().body.len()
        });
    });
    let gzip = request(
        "/v1/artifacts/T1?seed=7&scale=quick",
        &["Accept-Encoding: gzip"],
    );
    group.bench_function("hot_gzip", |b| {
        b.iter(|| {
            let reply = service.handle(std::hint::black_box(&gzip));
            reply.into_response().body.len()
        });
    });
    group.bench_function("hot_streamed_chunks", |b| {
        b.iter(|| match service.handle(std::hint::black_box(&text)) {
            Reply::Streamed(s) => s.body.map(|chunk| chunk.len()).sum::<usize>(),
            Reply::Whole(r) => r.body.len(),
        });
    });
    group.finish();
}

fn bench_tcp_round_trip(c: &mut Criterion) {
    let server = Server::bind("127.0.0.1:0", warm_service("tcp")).expect("bind");
    let addr = server.addr();
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    group.bench_function("tcp_round_trip_hot", |b| {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream);
        b.iter(|| {
            reader
                .get_mut()
                .write_all(b"GET /v1/artifacts/T1?seed=7&scale=quick HTTP/1.1\r\n\r\n")
                .expect("send");
            // Drain head, then chunked frames until the terminal chunk.
            let mut line = String::new();
            loop {
                line.clear();
                reader.read_line(&mut line).expect("head line");
                if line == "\r\n" {
                    break;
                }
            }
            let mut total = 0usize;
            loop {
                line.clear();
                reader.read_line(&mut line).expect("chunk size");
                let size = usize::from_str_radix(line.trim(), 16).expect("hex size");
                let mut chunk = vec![0u8; size + 2];
                reader.read_exact(&mut chunk).expect("chunk data");
                if size == 0 {
                    break;
                }
                total += size;
            }
            total
        });
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_handle, bench_tcp_round_trip);
criterion_main!(benches);
