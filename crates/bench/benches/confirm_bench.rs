//! Criterion benches for CONFIRM, including the growth-schedule and
//! error-criterion ablations called out in DESIGN.md §6.

use std::hint::black_box;

use confirm::{
    estimate, estimate_stationary, ConfirmConfig, ErrorCriterion, Growth, SequentialPlanner,
};
use criterion::{criterion_group, criterion_main, BenchmarkId as CriterionId, Criterion};
use testbed::{catalog, Cluster, Timeline};
use workloads::{sample, BenchmarkId};

fn pool(bench: BenchmarkId, n: usize) -> Vec<f64> {
    let cluster = Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), 9);
    let machine = cluster.machines()[0].id;
    (0..n as u64)
        .map(|i| sample(&cluster, machine, bench, 0.0, i).unwrap())
        .collect()
}

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("confirm_estimate");
    group.sample_size(10);
    for (label, bench) in [
        ("mem-triad", BenchmarkId::MemTriad),
        ("disk-rand-read", BenchmarkId::DiskRandRead),
    ] {
        let data = pool(bench, 100);
        group.bench_with_input(CriterionId::new("pool100", label), &data, |b, d| {
            let config = ConfirmConfig::default().with_rounds(100);
            b.iter(|| estimate(black_box(d), &config).unwrap());
        });
    }
    group.finish();
}

fn bench_growth_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("confirm_growth_ablation");
    group.sample_size(10);
    let data = pool(BenchmarkId::DiskSeqRead, 150);
    for (label, growth) in [
        ("linear1", Growth::Linear(1)),
        ("linear5", Growth::Linear(5)),
        ("geometric1.3", Growth::Geometric(1.3)),
    ] {
        group.bench_function(label, |b| {
            let config = ConfirmConfig::default()
                .with_rounds(100)
                .with_growth(growth)
                .with_target_rel_error(0.02);
            b.iter(|| estimate(black_box(&data), &config).unwrap());
        });
    }
    group.finish();
}

fn bench_criterion_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("confirm_error_criterion");
    group.sample_size(10);
    let data = pool(BenchmarkId::DiskSeqRead, 100);
    for (label, criterion) in [
        ("half_width", ErrorCriterion::HalfWidth),
        ("worst_bound", ErrorCriterion::WorstBound),
    ] {
        group.bench_function(label, |b| {
            let config = ConfirmConfig::default()
                .with_rounds(100)
                .with_criterion(criterion)
                .with_target_rel_error(0.02);
            b.iter(|| estimate(black_box(&data), &config).unwrap());
        });
    }
    group.finish();
}

fn bench_sequential(c: &mut Criterion) {
    let data = pool(BenchmarkId::MemTriad, 200);
    c.bench_function("sequential_planner_200_pushes", |b| {
        b.iter(|| {
            let mut p = SequentialPlanner::new(
                ConfirmConfig::default().with_target_rel_error(0.001),
                10_000,
            );
            for &v in &data {
                let _ = p.push(black_box(v)).unwrap();
            }
            p.len()
        });
    });
}

fn bench_segmented(c: &mut Criterion) {
    let mut group = c.benchmark_group("confirm_segmented");
    group.sample_size(10);
    // A two-regime pool: plain estimate vs segmentation-aware.
    let mut data = pool(BenchmarkId::MemTriad, 100);
    let shifted: Vec<f64> = data.iter().map(|x| x * 1.1).collect();
    data.extend(shifted);
    let config = ConfirmConfig::default()
        .with_rounds(60)
        .with_target_rel_error(0.02);
    group.bench_function("plain_on_shifted_pool", |b| {
        b.iter(|| estimate(black_box(&data), &config).unwrap());
    });
    group.bench_function("stationary_on_shifted_pool", |b| {
        b.iter(|| estimate_stationary(black_box(&data), &config).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_estimate,
    bench_growth_ablation,
    bench_criterion_ablation,
    bench_sequential,
    bench_segmented
);
criterion_main!(benches);
