//! Measures the cost of instrumentation sites, with telemetry disabled
//! (the default everywhere outside `repro --trace/--metrics`) and
//! enabled.
//!
//! The disabled path is the one every hot loop pays unconditionally; the
//! acceptance bar is "at most one relaxed atomic load per site", so
//! `disabled/*` results should sit within a nanosecond or two of the
//! `baseline` empty loop.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_disabled(c: &mut Criterion) {
    telemetry::set_enabled(false);
    let mut group = c.benchmark_group("telemetry_disabled");
    group.bench_function("baseline_black_box", |b| b.iter(|| black_box(1u64)));
    group.bench_function("span_open_drop", |b| {
        b.iter(|| {
            let _span = telemetry::span(black_box("bench.span"));
        })
    });
    group.bench_function("counter_lookup_and_inc", |b| {
        b.iter(|| telemetry::metrics::counter(black_box("bench.counter")).inc())
    });
    group.bench_function("histogram_lookup_and_record", |b| {
        b.iter(|| telemetry::metrics::histogram(black_box("bench.hist")).record(black_box(1.5)))
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    telemetry::set_enabled(true);
    let mut group = c.benchmark_group("telemetry_enabled");
    group.bench_function("span_open_drop", |b| {
        b.iter(|| {
            let _span = telemetry::span(black_box("bench.span"));
        })
    });
    // Handle held across iterations: the realistic hot-loop shape.
    let counter = telemetry::metrics::counter("bench.counter");
    group.bench_function("counter_inc_held_handle", |b| b.iter(|| counter.inc()));
    let hist = telemetry::metrics::histogram("bench.hist");
    group.bench_function("histogram_record_held_handle", |b| {
        b.iter(|| hist.record(black_box(1.5)))
    });
    group.finish();
    telemetry::set_enabled(false);
    telemetry::trace::clear();
    telemetry::metrics::reset();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
