//! Criterion benches for the statistics kernels, including the
//! exact-vs-approximate median CI ablation and the bootstrap flavors.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId as CriterionId, Criterion};
use varstats::ci::bootstrap::{Bootstrap, BootstrapKind};
use varstats::ci::nonparametric::{median_ci_approx, median_ci_exact};
use varstats::ci::parametric::mean_ci_t;
use varstats::descriptive::Moments;
use varstats::histogram::{BinRule, Histogram};
use varstats::normality::{anderson_darling, shapiro_wilk};
use varstats::quantile::{quantile, QuantileMethod};

fn skewed_data(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let u = ((z >> 11) as f64) / ((1u64 << 53) as f64);
            100.0 * (1.0 - 0.1 * u.max(1e-12).ln())
        })
        .collect()
}

fn bench_median_ci(c: &mut Criterion) {
    let mut group = c.benchmark_group("median_ci");
    for n in [50usize, 500, 5000] {
        let data = skewed_data(n, 1);
        group.bench_with_input(CriterionId::new("exact", n), &data, |b, d| {
            b.iter(|| median_ci_exact(black_box(d), 0.95).unwrap());
        });
        group.bench_with_input(CriterionId::new("approx", n), &data, |b, d| {
            b.iter(|| median_ci_approx(black_box(d), 0.95).unwrap());
        });
        group.bench_with_input(CriterionId::new("mean_t", n), &data, |b, d| {
            b.iter(|| mean_ci_t(black_box(d), 0.95).unwrap());
        });
    }
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap");
    group.sample_size(20);
    let data = skewed_data(100, 2);
    let median_stat = |xs: &[f64]| varstats::quantile::median(xs).expect("non-empty replicate");
    for kind in [
        BootstrapKind::Percentile,
        BootstrapKind::Basic,
        BootstrapKind::Bca,
    ] {
        group.bench_function(format!("{kind:?}"), |b| {
            let boot = Bootstrap::new(500, 3);
            b.iter(|| boot.ci(black_box(&data), median_stat, 0.95, kind).unwrap());
        });
    }
    group.finish();
}

fn bench_normality(c: &mut Criterion) {
    let mut group = c.benchmark_group("normality");
    for n in [50usize, 500, 2000] {
        let data = skewed_data(n, 4);
        group.bench_with_input(CriterionId::new("shapiro_wilk", n), &data, |b, d| {
            b.iter(|| shapiro_wilk(black_box(d)).unwrap());
        });
        group.bench_with_input(CriterionId::new("anderson_darling", n), &data, |b, d| {
            b.iter(|| anderson_darling(black_box(d)).unwrap());
        });
    }
    group.finish();
}

fn bench_quantiles_and_moments(c: &mut Criterion) {
    let mut group = c.benchmark_group("descriptive");
    let data = skewed_data(10_000, 5);
    group.bench_function("quantile_p99_10k", |b| {
        b.iter(|| quantile(black_box(&data), 0.99, QuantileMethod::Linear).unwrap());
    });
    group.bench_function("moments_10k", |b| {
        b.iter(|| black_box(&data).iter().copied().collect::<Moments>());
    });
    group.bench_function("histogram_fd_10k", |b| {
        b.iter(|| Histogram::new(black_box(&data), BinRule::FreedmanDiaconis).unwrap());
    });
    group.finish();
}

fn bench_changepoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("changepoint");
    group.sample_size(20);
    let mut series = skewed_data(500, 6);
    for v in series.iter_mut().skip(250) {
        *v *= 1.1;
    }
    group.bench_function("pelt_500", |b| {
        b.iter(|| varstats::changepoint::pelt_mean(black_box(&series), None).unwrap());
    });
    group.bench_function("binseg_500", |b| {
        b.iter(|| varstats::changepoint::binary_segmentation(black_box(&series), None, 8).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_median_ci,
    bench_bootstrap,
    bench_normality,
    bench_quantiles_and_moments,
    bench_changepoint
);
criterion_main!(benches);
