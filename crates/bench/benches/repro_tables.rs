//! One bench per reproduced table: regenerating T1–T4 end to end from a
//! shared quick-scale campaign context.

use std::hint::black_box;

use analysis::{find, Context, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_tables(c: &mut Criterion) {
    let ctx = Context::new(Scale::Quick, 42);
    let mut group = c.benchmark_group("repro_tables");
    group.sample_size(10);
    for id in ["T1", "T2", "T3", "T4", "T5", "T6", "T7"] {
        let experiment = find(id).expect("registered table");
        group.bench_function(id, |b| {
            b.iter(|| experiment.run(black_box(&ctx)).map(|a| a.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
