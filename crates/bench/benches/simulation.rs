//! Criterion benches for the testbed simulator and campaign generator —
//! the substrate must be fast enough that the paper-scale campaign stays
//! interactive.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dataset::{run_campaign, CampaignConfig};
use testbed::{catalog, Cluster, Subsystem, Timeline};
use workloads::{sample, BenchmarkId};

fn bench_single_measurement(c: &mut Criterion) {
    let cluster = Cluster::provision(catalog(), 0.1, Timeline::cloudlab_default(), 1);
    let machine = cluster.machines()[0].id;
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(1));
    group.bench_function("measure_one", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            cluster
                .measure(machine, Subsystem::DiskSequential, 5.0, black_box(nonce))
                .unwrap()
        });
    });
    group.bench_function("sample_one_benchmark", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            sample(
                &cluster,
                machine,
                BenchmarkId::NetLatency,
                5.0,
                black_box(nonce),
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_provisioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("provisioning");
    group.sample_size(20);
    group.bench_function("full_fleet", |b| {
        b.iter(|| {
            Cluster::provision(catalog(), 1.0, Timeline::cloudlab_default(), black_box(7))
                .machines()
                .len()
        });
    });
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    let config = CampaignConfig::quick(3);
    let records = {
        let (_, store) = run_campaign(&config);
        store.len() as u64
    };
    group.throughput(Throughput::Elements(records));
    group.bench_function("quick_campaign", |b| {
        b.iter(|| run_campaign(black_box(&config)).1.len());
    });
    group.finish();
}

fn bench_store_queries(c: &mut Criterion) {
    let (_, store) = run_campaign(&CampaignConfig::quick(4));
    let mut group = c.benchmark_group("store");
    group.bench_function("filter_benchmark_values", |b| {
        b.iter(|| {
            store
                .filter()
                .benchmark(black_box(BenchmarkId::DiskSeqRead))
                .values()
                .len()
        });
    });
    group.bench_function("group_by_machine", |b| {
        b.iter(|| {
            store
                .filter()
                .benchmark(black_box(BenchmarkId::MemTriad))
                .group_by_machine()
                .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_measurement,
    bench_provisioning,
    bench_campaign,
    bench_store_queries
);
criterion_main!(benches);
