//! Integration tests driving the `repro` binary as a subprocess.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn list_prints_every_experiment() {
    let out = repro().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for id in ["T1", "T7", "F1", "F16"] {
        assert!(stdout.contains(id), "missing {id} in list output");
    }
    assert_eq!(stdout.lines().count(), 25); // header + 24 experiments.
}

#[test]
fn unknown_id_fails_fast_with_message() {
    let out = repro().arg("F99").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown experiment id"));
}

#[test]
fn bad_flags_fail_cleanly() {
    for args in [
        vec!["T1", "--scale", "huge"],
        vec!["T1", "--seed", "abc"],
        vec!["--scale"],
    ] {
        let out = repro().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "{args:?} should fail");
    }
}

#[test]
fn no_ids_is_an_error() {
    let out = repro().output().expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn t2_runs_and_writes_csv_and_json() {
    let dir = std::env::temp_dir().join(format!("repro-cli-test-{}", std::process::id()));
    let out = repro()
        .args(["T2", "--seed", "7", "--out", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("disk-rand-write"));
    let csv = std::fs::read_to_string(dir.join("T2.csv")).unwrap();
    assert!(csv.starts_with("benchmark,"));

    let out = repro()
        .args([
            "T2",
            "--seed",
            "7",
            "--out",
            dir.to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let json = std::fs::read_to_string(dir.join("T2.json")).unwrap();
    assert!(json.contains("\"Table\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seed_changes_measured_artifacts_but_not_structure() {
    let run = |seed: &str| {
        let out = repro()
            .args(["F1", "--seed", seed])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    let a = run("1");
    let b = run("1");
    let c = run("2");
    assert_eq!(a, b, "same seed must reproduce identical output");
    assert_ne!(a, c, "different seeds must differ");
    assert!(c.contains("[F1]"));
}
