//! Experiment artifacts: tables and figure series, with text and CSV
//! rendering.
//!
//! Every experiment produces one or more artifacts. A [`Table`] maps to a
//! paper table; a [`SeriesSet`] carries the `(x, y)` series a figure
//! plots. Both render to aligned text for the terminal and to CSV for
//! external plotting.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// A rendered table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Artifact id (e.g. `T1`, `F6-summary`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count — that is
    /// a programming error in an experiment pipeline, not a data error.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Renders as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "[{}] {}", self.id, self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// The points, in plot order.
    pub points: Vec<(f64, f64)>,
}

/// A figure: several series over shared axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSet {
    /// Artifact id (e.g. `F9`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl SeriesSet {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, name: &str, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            name: name.to_string(),
            points,
        });
    }

    /// Renders the series as aligned text columns (x then one column per
    /// series, rows joined on x where series share x values).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[{}] {}", self.id, self.title);
        let _ = writeln!(out, "x = {}, y = {}", self.x_label, self.y_label);
        for s in &self.series {
            let _ = writeln!(out, "  series `{}` ({} points):", s.name, s.points.len());
            for (x, y) in &s.points {
                let _ = writeln!(out, "    {x:>12.4}  {y:>14.6}");
            }
        }
        out
    }

    /// Renders as long-form CSV: `series,x,y`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "series,{},{}", self.x_label, self.y_label);
        for s in &self.series {
            for (x, y) in &s.points {
                let _ = writeln!(out, "{},{},{}", s.name, x, y);
            }
        }
        out
    }
}

/// Any experiment output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Artifact {
    /// A table artifact.
    Table(Table),
    /// A figure artifact.
    Figure(SeriesSet),
}

impl Artifact {
    /// The artifact id.
    pub fn id(&self) -> &str {
        match self {
            Artifact::Table(t) => &t.id,
            Artifact::Figure(f) => &f.id,
        }
    }

    /// Renders as text.
    pub fn render(&self) -> String {
        match self {
            Artifact::Table(t) => t.render(),
            Artifact::Figure(f) => f.render(),
        }
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        match self {
            Artifact::Table(t) => t.to_csv(),
            Artifact::Figure(f) => f.to_csv(),
        }
    }
}

/// Formats a float with `digits` decimal places (table cell helper).
pub fn fmt(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T0", "demo", &["name", "value"]);
        t.push_row(vec!["a".to_string(), "1".to_string()]);
        t.push_row(vec!["longer".to_string(), "22".to_string()]);
        let s = t.render();
        assert!(s.contains("[T0] demo"));
        assert!(s.contains("name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.push_row(vec!["only-one".to_string()]);
    }

    #[test]
    fn table_csv() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.push_row(vec!["x".to_string(), "1".to_string()]);
        assert_eq!(t.to_csv(), "a,b\nx,1\n");
    }

    #[test]
    fn series_render_and_csv() {
        let mut f = SeriesSet::new("F0", "demo fig", "n", "err");
        f.push_series("mem", vec![(1.0, 0.5), (2.0, 0.25)]);
        f.push_series("disk", vec![(1.0, 0.9)]);
        let s = f.render();
        assert!(s.contains("series `mem` (2 points)"));
        let csv = f.to_csv();
        assert!(csv.starts_with("series,n,err\n"));
        assert!(csv.contains("disk,1,0.9"));
    }

    #[test]
    fn artifact_dispatch() {
        let t = Artifact::Table(Table::new("T9", "t", &["h"]));
        let f = Artifact::Figure(SeriesSet::new("F9", "f", "x", "y"));
        assert_eq!(t.id(), "T9");
        assert_eq!(f.id(), "F9");
        assert!(t.render().contains("T9"));
        assert!(f.to_csv().contains("series"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.756), "75.6%");
    }
}
