//! Experiment artifacts: tables and figure series, with text and CSV
//! rendering.
//!
//! Every experiment produces one or more artifacts. A [`Table`] maps to a
//! paper table; a [`SeriesSet`] carries the `(x, y)` series a figure
//! plots. Both render to aligned text for the terminal and to CSV for
//! external plotting.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// A rendered table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Artifact id (e.g. `T1`, `F6-summary`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count — that is
    /// a programming error in an experiment pipeline, not a data error.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Renders as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "[{}] {}", self.id, self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// The points, in plot order.
    pub points: Vec<(f64, f64)>,
}

/// A figure: several series over shared axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSet {
    /// Artifact id (e.g. `F9`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl SeriesSet {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, name: &str, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            name: name.to_string(),
            points,
        });
    }

    /// Renders the series as aligned text columns (x then one column per
    /// series, rows joined on x where series share x values).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[{}] {}", self.id, self.title);
        let _ = writeln!(out, "x = {}, y = {}", self.x_label, self.y_label);
        for s in &self.series {
            let _ = writeln!(out, "  series `{}` ({} points):", s.name, s.points.len());
            for (x, y) in &s.points {
                let _ = writeln!(out, "    {x:>12.4}  {y:>14.6}");
            }
        }
        out
    }

    /// Renders as long-form CSV: `series,x,y`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "series,{},{}", self.x_label, self.y_label);
        for s in &self.series {
            for (x, y) in &s.points {
                let _ = writeln!(out, "{},{},{}", s.name, x, y);
            }
        }
        out
    }
}

/// Any experiment output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Artifact {
    /// A table artifact.
    Table(Table),
    /// A figure artifact.
    Figure(SeriesSet),
}

impl Artifact {
    /// The artifact id.
    pub fn id(&self) -> &str {
        match self {
            Artifact::Table(t) => &t.id,
            Artifact::Figure(f) => &f.id,
        }
    }

    /// Renders as text.
    pub fn render(&self) -> String {
        match self {
            Artifact::Table(t) => t.render(),
            Artifact::Figure(f) => f.render(),
        }
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        match self {
            Artifact::Table(t) => t.to_csv(),
            Artifact::Figure(f) => f.to_csv(),
        }
    }
}

/// Error from [`decode_artifacts`]: what made the text undecodable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    message: String,
}

impl CodecError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable cause.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CodecError {}

/// First line of every [`encode_artifacts`] payload; bumped with the
/// format.
pub const CODEC_HEADER: &str = "artifacts-codec v1";

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, CodecError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(CodecError::new(format!(
                    "bad escape `\\{}`",
                    other.map_or_else(String::new, String::from)
                )))
            }
        }
    }
    Ok(out)
}

/// Serializes artifacts to the line-based codec the artifact cache
/// stores (see [`crate::cache`]).
///
/// The encoding is **byte-deterministic** (no maps, no float
/// formatting — point coordinates are written as raw IEEE-754 bits) and
/// **self-contained**: it needs no serde backend, so an entry written in
/// one build environment decodes identically in another. Strings are
/// newline-escaped; every list is length-prefixed so truncation is
/// always detectable.
pub fn encode_artifacts(artifacts: &[Artifact]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{CODEC_HEADER}");
    let _ = writeln!(out, "artifacts {}", artifacts.len());
    for artifact in artifacts {
        match artifact {
            Artifact::Table(t) => {
                let _ = writeln!(out, "table {}", escape(&t.id));
                let _ = writeln!(out, "title {}", escape(&t.title));
                let _ = writeln!(out, "headers {}", t.headers.len());
                for h in &t.headers {
                    let _ = writeln!(out, "{}", escape(h));
                }
                let _ = writeln!(out, "rows {}", t.rows.len());
                for row in &t.rows {
                    for cell in row {
                        let _ = writeln!(out, "{}", escape(cell));
                    }
                }
            }
            Artifact::Figure(f) => {
                let _ = writeln!(out, "figure {}", escape(&f.id));
                let _ = writeln!(out, "title {}", escape(&f.title));
                let _ = writeln!(out, "xlabel {}", escape(&f.x_label));
                let _ = writeln!(out, "ylabel {}", escape(&f.y_label));
                let _ = writeln!(out, "series {}", f.series.len());
                for s in &f.series {
                    let _ = writeln!(out, "name {}", escape(&s.name));
                    let _ = writeln!(out, "points {}", s.points.len());
                    for (x, y) in &s.points {
                        let _ = writeln!(out, "{:016x} {:016x}", x.to_bits(), y.to_bits());
                    }
                }
            }
        }
    }
    out
}

/// Decodes an [`encode_artifacts`] payload. Any structural defect —
/// wrong header, bad counts, truncation, malformed escapes or float
/// bits — is a [`CodecError`], never a panic: the cache treats it as a
/// corrupt entry and recomputes.
pub fn decode_artifacts(text: &str) -> Result<Vec<Artifact>, CodecError> {
    let mut lines = text.lines();
    let mut next = move || lines.next().ok_or_else(|| CodecError::new("truncated"));
    let field = |line: &str, tag: &str| -> Result<String, CodecError> {
        line.strip_prefix(tag)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| CodecError::new(format!("expected `{tag} ...`, got `{line}`")))
    };
    let count = |line: &str, tag: &str| -> Result<usize, CodecError> {
        field(line, tag)?
            .parse()
            .map_err(|_| CodecError::new(format!("bad {tag} count in `{line}`")))
    };

    if next()? != CODEC_HEADER {
        return Err(CodecError::new("unknown codec header"));
    }
    let n = count(next()?, "artifacts")?;
    let mut artifacts = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let kind_line = next()?.to_string();
        if let Ok(id) = field(&kind_line, "table") {
            let mut t = Table {
                id: unescape(&id)?,
                title: unescape(&field(next()?, "title")?)?,
                headers: Vec::new(),
                rows: Vec::new(),
            };
            let headers = count(next()?, "headers")?;
            for _ in 0..headers {
                t.headers.push(unescape(next()?)?);
            }
            let rows = count(next()?, "rows")?;
            for _ in 0..rows {
                let mut row = Vec::with_capacity(headers);
                for _ in 0..headers {
                    row.push(unescape(next()?)?);
                }
                t.rows.push(row);
            }
            artifacts.push(Artifact::Table(t));
        } else if let Ok(id) = field(&kind_line, "figure") {
            let mut f = SeriesSet {
                id: unescape(&id)?,
                title: unescape(&field(next()?, "title")?)?,
                x_label: unescape(&field(next()?, "xlabel")?)?,
                y_label: unescape(&field(next()?, "ylabel")?)?,
                series: Vec::new(),
            };
            let series = count(next()?, "series")?;
            for _ in 0..series {
                let name = unescape(&field(next()?, "name")?)?;
                let points = count(next()?, "points")?;
                let mut pts = Vec::with_capacity(points.min(65536));
                for _ in 0..points {
                    let line = next()?;
                    let (x, y) = line
                        .split_once(' ')
                        .ok_or_else(|| CodecError::new(format!("bad point `{line}`")))?;
                    let parse = |s: &str| {
                        u64::from_str_radix(s, 16)
                            .map(f64::from_bits)
                            .map_err(|_| CodecError::new(format!("bad float bits `{s}`")))
                    };
                    pts.push((parse(x)?, parse(y)?));
                }
                f.series.push(Series { name, points: pts });
            }
            artifacts.push(Artifact::Figure(f));
        } else {
            return Err(CodecError::new(format!(
                "expected `table ...` or `figure ...`, got `{kind_line}`"
            )));
        }
    }
    Ok(artifacts)
}

/// Formats a float with `digits` decimal places (table cell helper).
pub fn fmt(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T0", "demo", &["name", "value"]);
        t.push_row(vec!["a".to_string(), "1".to_string()]);
        t.push_row(vec!["longer".to_string(), "22".to_string()]);
        let s = t.render();
        assert!(s.contains("[T0] demo"));
        assert!(s.contains("name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.push_row(vec!["only-one".to_string()]);
    }

    #[test]
    fn table_csv() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.push_row(vec!["x".to_string(), "1".to_string()]);
        assert_eq!(t.to_csv(), "a,b\nx,1\n");
    }

    #[test]
    fn series_render_and_csv() {
        let mut f = SeriesSet::new("F0", "demo fig", "n", "err");
        f.push_series("mem", vec![(1.0, 0.5), (2.0, 0.25)]);
        f.push_series("disk", vec![(1.0, 0.9)]);
        let s = f.render();
        assert!(s.contains("series `mem` (2 points)"));
        let csv = f.to_csv();
        assert!(csv.starts_with("series,n,err\n"));
        assert!(csv.contains("disk,1,0.9"));
    }

    #[test]
    fn artifact_dispatch() {
        let t = Artifact::Table(Table::new("T9", "t", &["h"]));
        let f = Artifact::Figure(SeriesSet::new("F9", "f", "x", "y"));
        assert_eq!(t.id(), "T9");
        assert_eq!(f.id(), "F9");
        assert!(t.render().contains("T9"));
        assert!(f.to_csv().contains("series"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.756), "75.6%");
    }

    #[test]
    fn codec_round_trips_tables_and_figures() {
        let mut t = Table::new("T1", "multi\nline title", &["a\\b", "c"]);
        t.push_row(vec!["x\r\n".to_string(), String::new()]);
        let mut f = SeriesSet::new("F1", "fig", "x", "y");
        f.push_series("exact", vec![(0.1, -0.0), (f64::NAN, f64::INFINITY)]);
        f.push_series("empty", vec![]);
        let input = vec![Artifact::Table(t), Artifact::Figure(f)];

        let encoded = encode_artifacts(&input);
        assert!(encoded.starts_with(CODEC_HEADER));
        let decoded = decode_artifacts(&encoded).unwrap();
        // PartialEq fails on the NaN point, so compare by re-encoding:
        // bit-exact floats round-trip to identical bytes.
        assert_eq!(encode_artifacts(&decoded), encoded);
        assert_eq!(decoded.len(), 2);
        match &decoded[0] {
            Artifact::Table(t) => {
                assert_eq!(t.title, "multi\nline title");
                assert_eq!(t.rows[0][0], "x\r\n");
            }
            other => panic!("expected table, got {}", other.id()),
        }
    }

    #[test]
    fn codec_rejects_damage_without_panicking() {
        let encoded = encode_artifacts(&[Artifact::Table(Table::new("T1", "t", &["h"]))]);
        for bad in [
            "",
            "not-a-codec v9\nartifacts 0\n",
            &encoded[..encoded.len() - 4],              // truncated
            &encoded.replace("table T1", "blob T1"),    // unknown artifact kind
            &encoded.replace("headers 1", "headers x"), // bad count
        ] {
            assert!(decode_artifacts(bad).is_err(), "accepted: {bad:?}");
        }
        assert!(decode_artifacts(&encode_artifacts(&[])).unwrap().is_empty());
    }
}
