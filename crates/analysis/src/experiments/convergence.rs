//! F8: confidence-interval width vs number of repetitions.
//!
//! For one representative machine per subsystem family, the relative
//! half-width of the non-parametric median CI is computed at increasing
//! repetition counts. The curves fall roughly as `1/sqrt(n)`, but from
//! very different starting points — the visual explanation of why disk
//! experiments need an order of magnitude more repetitions.

/// Cache code-version tag for F8: bump on any edit that could
/// change `f8_ci_convergence`'s output, so stale cached artifacts self-invalidate.
pub const F8_CI_CONVERGENCE_VERSION: u32 = 1;
use varstats::ci::nonparametric::median_ci_approx;
use workloads::{sample, BenchmarkId};

use crate::artifact::{Artifact, SeriesSet};
use crate::context::Context;
use crate::registry::ExperimentError;

/// Repetition counts evaluated.
pub const SWEEP: [usize; 7] = [10, 20, 40, 80, 150, 300, 500];

/// The benchmarks each curve represents.
pub const REPRESENTATIVES: [BenchmarkId; 4] = [
    BenchmarkId::MemTriad,
    BenchmarkId::DiskSeqRead,
    BenchmarkId::DiskRandRead,
    BenchmarkId::NetBandwidth,
];

/// Computes the CI-halfwidth curve for `bench` on the first machine of
/// the first HDD type (disk benches) or the biggest fleet (others).
pub fn convergence_curve(ctx: &Context, bench: BenchmarkId) -> Vec<(f64, f64)> {
    let machine = ctx
        .cluster
        .types()
        .iter()
        .find(|t| t.disk == testbed::DiskKind::Hdd)
        .map(|t| ctx.cluster.machines_of_type(&t.name)[0].id)
        .expect("catalog has HDD types");
    SWEEP
        .iter()
        .map(|&n| {
            let runs: Vec<f64> = (0..n as u64)
                .map(|nonce| {
                    sample(&ctx.cluster, machine, bench, 0.0, nonce)
                        .expect("machine comes from this cluster")
                })
                .collect();
            let ci = median_ci_approx(&runs, 0.95).expect("n >= 10");
            (n as f64, ci.ci.relative_half_width())
        })
        .collect()
}

/// F8: one series per representative benchmark.
pub fn f8_ci_convergence(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let mut fig = SeriesSet::new(
        "F8",
        "Median-CI relative half-width vs repetitions (one HDD machine)",
        "repetitions",
        "CI half-width / median",
    );
    for bench in REPRESENTATIVES {
        fig.push_series(bench.label(), convergence_curve(ctx, bench));
    }
    Ok(vec![Artifact::Figure(fig)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn curves_shrink_with_n() {
        let ctx = Context::new(Scale::Quick, 41);
        for bench in REPRESENTATIVES {
            let curve = convergence_curve(&ctx, bench);
            let first = curve.first().unwrap().1;
            let last = curve.last().unwrap().1;
            assert!(
                last < first,
                "{bench}: width should shrink, {first} -> {last}"
            );
        }
    }

    #[test]
    fn disk_curve_sits_above_memory_curve() {
        let ctx = Context::new(Scale::Quick, 42);
        let disk = convergence_curve(&ctx, BenchmarkId::DiskRandRead);
        let mem = convergence_curve(&ctx, BenchmarkId::MemTriad);
        // At every sweep point the disk CI is wider.
        for (d, m) in disk.iter().zip(mem.iter()) {
            assert!(d.1 > m.1, "at n={} disk {} <= mem {}", d.0, d.1, m.1);
        }
    }

    #[test]
    fn shrinkage_is_roughly_sqrt_n() {
        let ctx = Context::new(Scale::Quick, 43);
        let curve = convergence_curve(&ctx, BenchmarkId::DiskSeqRead);
        let at_10 = curve[0].1;
        let at_500 = curve.last().unwrap().1;
        let ratio = at_10 / at_500;
        // sqrt(500/10) ~ 7.1; allow a wide band for order-statistic
        // discreteness.
        assert!((2.0..25.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn f8_artifact_shape() {
        let ctx = Context::new(Scale::Quick, 44);
        let artifacts = f8_ci_convergence(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Figure(f) => {
                assert_eq!(f.series.len(), REPRESENTATIVES.len());
                assert!(f.series.iter().all(|s| s.points.len() == SWEEP.len()));
            }
            _ => panic!("expected figure"),
        }
    }
}
