//! T7: variance homogeneity across same-type machines.
//!
//! "Nominally identical machines behave identically" has two parts:
//! equal location (tested by the lottery analyses) and equal *spread*.
//! Brown–Forsythe tests the latter across every machine of each type:
//! rejection means even the run-to-run noise differs per unit — one more
//! reason single-machine results do not generalize to a type.

/// Cache code-version tag for T7: bump on any edit that could
/// change `t7_variance_homogeneity`'s output, so stale cached artifacts self-invalidate.
pub const T7_VARIANCE_HOMOGENEITY_VERSION: u32 = 1;
use varstats::anova::brown_forsythe;
use workloads::BenchmarkId;

use crate::artifact::{fmt, Artifact, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// Outcome for one (type, benchmark) cell.
#[derive(Debug, Clone)]
pub struct HomogeneityCell {
    /// Machine type.
    pub type_name: String,
    /// Benchmark.
    pub benchmark: BenchmarkId,
    /// Brown–Forsythe p-value across the type's machines.
    pub p_value: f64,
}

/// Runs Brown–Forsythe across each type's machines for `bench`.
///
/// # Errors
///
/// Fails only if a streaming context cannot read a journal shard.
pub fn homogeneity_by_type(
    ctx: &Context,
    bench: BenchmarkId,
) -> Result<Vec<HomogeneityCell>, ExperimentError> {
    // One shard pass gathers every type's per-machine groups in
    // ascending machine order — identical vectors to the grouped walk.
    let mut per_type: std::collections::BTreeMap<String, Vec<Vec<f64>>> =
        std::collections::BTreeMap::new();
    ctx.for_each_shard(|shard| {
        let values = shard.values(bench);
        if !values.is_empty() {
            per_type
                .entry(shard.type_name.to_string())
                .or_default()
                .push(values);
        }
    })?;
    let mut out = Vec::new();
    for mtype in ctx.cluster.types() {
        let Some(groups) = per_type.get(&mtype.name) else {
            continue;
        };
        let refs: Vec<&[f64]> = groups.iter().map(|v| v.as_slice()).collect();
        if refs.len() < 2 {
            continue;
        }
        if let Ok(r) = brown_forsythe(&refs) {
            out.push(HomogeneityCell {
                type_name: mtype.name.clone(),
                benchmark: bench,
                p_value: r.p_value,
            });
        }
    }
    Ok(out)
}

/// T7: per-benchmark fraction of types whose machines fail variance
/// homogeneity, plus the per-type detail for the representative disk
/// benchmark.
pub fn t7_variance_homogeneity(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let mut summary = Table::new(
        "T7",
        "Brown-Forsythe variance homogeneity across same-type machines (alpha = 0.05)",
        &["benchmark", "types tested", "types rejected", "min p"],
    );
    for bench in [
        BenchmarkId::MemTriad,
        BenchmarkId::DiskSeqRead,
        BenchmarkId::DiskRandRead,
        BenchmarkId::NetLatency,
        BenchmarkId::NetBandwidth,
    ] {
        let cells = homogeneity_by_type(ctx, bench)?;
        let rejected = cells.iter().filter(|c| c.p_value < 0.05).count();
        let min_p = cells
            .iter()
            .map(|c| c.p_value)
            .fold(f64::INFINITY, f64::min);
        summary.push_row(vec![
            bench.label().to_string(),
            cells.len().to_string(),
            rejected.to_string(),
            fmt(min_p, 4),
        ]);
    }

    let mut detail = Table::new(
        "T7-detail",
        "Per-type Brown-Forsythe p-values (disk-seq-read)",
        &["type", "p-value", "homogeneous at 5%"],
    );
    for cell in homogeneity_by_type(ctx, BenchmarkId::DiskSeqRead)? {
        detail.push_row(vec![
            cell.type_name,
            fmt(cell.p_value, 4),
            (cell.p_value >= 0.05).to_string(),
        ]);
    }
    Ok(vec![Artifact::Table(summary), Artifact::Table(detail)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn homogeneity_mostly_holds_in_the_simulator() {
        // The simulator's lottery scales each machine's noise only in
        // proportion to its level, so *relative* spreads are nearly
        // equal across same-type machines; at 5% the rejection count
        // should look like the test's false-positive rate, not a
        // wholesale rejection. (A testbed where this fails wholesale
        // would be tagging genuinely heteroscedastic hardware.)
        let ctx = Context::new(Scale::Quick, 141);
        for bench in [BenchmarkId::DiskRandRead, BenchmarkId::NetBandwidth] {
            let cells = homogeneity_by_type(&ctx, bench).unwrap();
            let rejected = cells.iter().filter(|c| c.p_value < 0.05).count();
            assert!(
                rejected <= cells.len() / 2,
                "{bench}: {rejected}/{} rejections",
                cells.len()
            );
        }
    }

    #[test]
    fn genuinely_heteroscedastic_groups_are_caught() {
        // Sanity: the pipeline's test has power when spreads really
        // differ — mix machines from two types whose absolute disk noise
        // differs by an order of magnitude (HDD vs NVMe baselines).
        let ctx = Context::new(Scale::Quick, 144);
        let hdd = ctx
            .store()
            .filter()
            .benchmark(BenchmarkId::DiskSeqRead)
            .machine_type("c220g1")
            .group_by_machine();
        let nvme = ctx
            .store()
            .filter()
            .benchmark(BenchmarkId::DiskSeqRead)
            .machine_type("m510")
            .group_by_machine();
        let mut refs: Vec<&[f64]> = hdd.values().map(|v| v.as_slice()).collect();
        refs.extend(nvme.values().map(|v| v.as_slice()));
        let r = varstats::anova::brown_forsythe(&refs).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn cells_cover_types_with_enough_machines() {
        let ctx = Context::new(Scale::Quick, 142);
        let cells = homogeneity_by_type(&ctx, BenchmarkId::MemTriad).unwrap();
        assert_eq!(cells.len(), ctx.cluster.types().len());
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.p_value));
        }
    }

    #[test]
    fn t7_artifact_shape() {
        let ctx = Context::new(Scale::Quick, 143);
        let artifacts = t7_variance_homogeneity(&ctx).unwrap();
        assert_eq!(artifacts.len(), 2);
        match &artifacts[0] {
            Artifact::Table(t) => assert_eq!(t.rows.len(), 5),
            _ => panic!("expected table"),
        }
    }
}
