//! T3: parametric (Jain) vs non-parametric (CONFIRM) repetition
//! estimates, side by side with the normality verdict.
//!
//! The paper's point: the two methods agree when data is normal and
//! diverge when it is not — and most benchmark data is not. Rows mirror
//! the structure of the published comparison: one machine per type per
//! representative benchmark, the Shapiro–Wilk verdict, and both
//! estimates.

/// Cache code-version tag for T3: bump on any edit that could
/// change `t3_parametric_vs_confirm`'s output, so stale cached artifacts self-invalidate.
pub const T3_PARAMETRIC_VS_CONFIRM_VERSION: u32 = 1;
use confirm::{recommend, ChosenMethod};
use workloads::BenchmarkId;

use crate::artifact::{Artifact, Table};
use crate::context::Context;
use crate::experiments::confirm_study::machine_pool;
use crate::registry::ExperimentError;

/// The benchmarks compared in T3.
pub const BENCHES: [BenchmarkId; 3] = [
    BenchmarkId::MemTriad,
    BenchmarkId::DiskSeqRead,
    BenchmarkId::NetLatency,
];

/// T3: the comparison table.
pub fn t3_parametric_vs_confirm(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let mut t = Table::new(
        "T3",
        "Parametric (Jain) vs CONFIRM repetition estimates (+/-1%, 95%)",
        &[
            "type",
            "benchmark",
            "Shapiro-Wilk",
            "parametric",
            "CONFIRM",
            "chosen method",
        ],
    );
    let config = ctx.confirm.with_growth(confirm::Growth::Geometric(1.25));
    for mtype in ctx.cluster.types() {
        let machine = ctx.cluster.machines_of_type(&mtype.name)[0].id;
        for bench in BENCHES {
            let pool = machine_pool(ctx, machine, bench, ctx.scale.pool_size());
            let rec = recommend(&pool, &config, 0.05).expect("valid pool");
            let sw = rec
                .normality
                .map(|r| if r.is_normal(0.05) { "pass" } else { "fail" })
                .unwrap_or("n/a");
            t.push_row(vec![
                mtype.name.clone(),
                bench.label().to_string(),
                sw.to_string(),
                rec.parametric.repetitions.to_string(),
                rec.confirm.requirement.display(),
                match rec.method {
                    ChosenMethod::Parametric => "parametric".to_string(),
                    ChosenMethod::Confirm => "CONFIRM".to_string(),
                },
            ]);
        }
    }
    Ok(vec![Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn t3_covers_types_times_benches() {
        let ctx = Context::new(Scale::Quick, 61);
        let artifacts = t3_parametric_vs_confirm(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => {
                assert_eq!(t.rows.len(), ctx.cluster.types().len() * BENCHES.len());
                // Both verdicts occur somewhere across the grid.
                let methods: Vec<&str> = t.rows.iter().map(|r| r[5].as_str()).collect();
                assert!(methods.contains(&"CONFIRM"), "{methods:?}");
                // CONFIRM column uses the paper's `>n` rendering when
                // pools exhaust.
                let confirm_col: Vec<&str> = t.rows.iter().map(|r| r[4].as_str()).collect();
                assert!(
                    confirm_col.iter().any(|c| c.starts_with('>'))
                        || confirm_col.iter().all(|c| c.parse::<usize>().is_ok())
                );
            }
            _ => panic!("expected table"),
        }
    }

    #[test]
    fn confirm_never_reports_below_minimum_subset() {
        let ctx = Context::new(Scale::Quick, 62);
        let artifacts = t3_parametric_vs_confirm(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => {
                for row in &t.rows {
                    if let Ok(v) = row[4].parse::<usize>() {
                        assert!(v >= 10, "CONFIRM below s >= 10: {row:?}");
                    }
                }
            }
            _ => panic!("expected table"),
        }
    }

    #[test]
    fn methods_disagree_substantially_on_disk_rows() {
        // The paper's point is that the two estimators frequently
        // disagree — in both directions: Jain's formula can demand far
        // more repetitions than CONFIRM (it targets the mean, inflated by
        // skewed tails) or far fewer (when it trusts a normality that
        // does not hold). On the skewed disk benchmark the disagreement
        // should be the rule, not the exception.
        let ctx = Context::new(Scale::Quick, 63);
        let artifacts = t3_parametric_vs_confirm(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => {
                let mut disagree = 0usize;
                let mut rows = 0usize;
                for row in t.rows.iter().filter(|r| r[1].contains("disk")) {
                    rows += 1;
                    let par: f64 = row[3].parse().unwrap();
                    let conf: f64 = row[4].trim_start_matches('>').parse().unwrap();
                    let ratio = (par.max(conf)) / (par.min(conf)).max(1.0);
                    if ratio >= 2.0 {
                        disagree += 1;
                    }
                }
                assert!(rows > 0);
                assert!(
                    disagree * 2 >= rows,
                    "methods should disagree >= 2x on at least half the disk rows \
                     ({disagree}/{rows})"
                );
            }
            _ => panic!("expected table"),
        }
    }
}
