//! The experiment pipelines, one module per DESIGN.md entry.

pub mod ablation;
pub mod allocation_bias;
pub mod confirm_stability;
pub mod confirm_study;
pub mod convergence;
pub mod cov;
pub mod dataset_overview;
pub mod hardware_tables;
pub mod inter_intra;
pub mod interference_study;
pub mod mean_median;
pub mod motivating;
pub mod normality;
pub mod parametric_vs_confirm;
pub mod qq_study;
pub mod scaling_law;
pub mod temporal;
pub mod variance_homogeneity;
