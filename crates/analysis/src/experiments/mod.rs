//! The experiment pipelines, one module per DESIGN.md entry.

use crate::registry::ExperimentError;

/// [`workloads::sample`] with a typed error instead of an `Option`.
///
/// Pipelines draw from machines they just enumerated out of the shared
/// cluster, so a miss means the context cannot support the pipeline —
/// a persistent, per-id-reportable failure rather than a panic
/// (DESIGN.md §8).
pub(crate) fn draw(
    cluster: &testbed::Cluster,
    machine: testbed::MachineId,
    bench: workloads::BenchmarkId,
    day: f64,
    nonce: u64,
) -> Result<f64, ExperimentError> {
    workloads::sample(cluster, machine, bench, day, nonce)
        .ok_or_else(|| ExperimentError::new(format!("machine {} is not in the cluster", machine.0)))
}

pub mod ablation;
pub mod allocation_bias;
pub mod confirm_stability;
pub mod confirm_study;
pub mod convergence;
pub mod cov;
pub mod dataset_overview;
pub mod hardware_tables;
pub mod inter_intra;
pub mod interference_study;
pub mod mean_median;
pub mod motivating;
pub mod normality;
pub mod parametric_vs_confirm;
pub mod qq_study;
pub mod scaling_law;
pub mod temporal;
pub mod variance_homogeneity;
