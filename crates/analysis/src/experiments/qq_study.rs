//! F13: QQ-plot study — the visual non-normality argument, quantified.
//!
//! Normal QQ data for one benchmark per subsystem family on one machine,
//! plus the Filliben probability-plot correlation for every
//! (machine, benchmark) set — the continuous companion of the binary
//! Shapiro–Wilk census (F6).

/// Cache code-version tag for F13: bump on any edit that could
/// change `f13_qq`'s output, so stale cached artifacts self-invalidate.
pub const F13_QQ_VERSION: u32 = 1;
use varstats::qq::normal_qq;
use varstats::quantile::median;
use workloads::BenchmarkId;

use crate::artifact::{fmt, Artifact, SeriesSet, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// Benchmarks whose QQ lines the figure draws.
pub const REPRESENTATIVES: [BenchmarkId; 3] = [
    BenchmarkId::MemTriad,
    BenchmarkId::DiskSeqRead,
    BenchmarkId::NetLatency,
];

/// F13: QQ series per representative benchmark plus the per-benchmark
/// Filliben correlation census.
pub fn f13_qq(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let machine = ctx.cluster.machines()[0].id;
    let mut fig = SeriesSet::new(
        "F13",
        "Normal QQ (one machine, 200 runs per benchmark; values scaled by their median)",
        "theoretical normal score",
        "observed / median",
    );
    for bench in REPRESENTATIVES {
        let runs: Vec<f64> = (0..200u64)
            .map(|n| crate::experiments::draw(&ctx.cluster, machine, bench, 0.0, n))
            .collect::<Result<_, _>>()?;
        let med = median(&runs).expect("non-empty");
        let scaled: Vec<f64> = runs.iter().map(|x| x / med).collect();
        let qq = normal_qq(&scaled).expect("valid runs");
        fig.push_series(bench.label(), qq.points);
    }

    // Filliben correlations across the campaign, per benchmark.
    let mut t = Table::new(
        "F13-summary",
        "Filliben probability-plot correlation per benchmark (median across machines)",
        &["benchmark", "median r", "min r"],
    );
    // One shard pass collects the per-machine correlations for every
    // benchmark (machine-ascending order, same as the grouped walk).
    let mut rs_per_bench = vec![Vec::new(); BenchmarkId::ALL.len()];
    ctx.for_each_shard(|shard| {
        for (&bench, rs) in BenchmarkId::ALL.iter().zip(rs_per_bench.iter_mut()) {
            let values = shard.values(bench);
            if values.is_empty() {
                continue;
            }
            if let Ok(qq) = normal_qq(&values) {
                rs.push(qq.correlation);
            }
        }
    })?;
    for (bench, rs) in BenchmarkId::ALL.into_iter().zip(rs_per_bench) {
        if rs.is_empty() {
            continue;
        }
        let med = median(&rs).expect("non-empty");
        let min = rs.iter().cloned().fold(f64::INFINITY, f64::min);
        t.push_row(vec![bench.label().to_string(), fmt(med, 4), fmt(min, 4)]);
    }
    Ok(vec![Artifact::Figure(fig), Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn heavy_tailed_benchmarks_have_lower_filliben_r() {
        let ctx = Context::new(Scale::Quick, 91);
        let artifacts = f13_qq(&ctx).unwrap();
        match &artifacts[1] {
            Artifact::Table(t) => {
                let r_of = |label: &str| -> f64 {
                    t.rows.iter().find(|r| r[0] == label).unwrap()[1]
                        .parse()
                        .unwrap()
                };
                let mem = r_of("mem-copy");
                let netlat = r_of("net-latency");
                assert!(mem > netlat, "mem {mem} vs net-lat {netlat}");
                assert!(netlat < 0.99, "heavy tail should bend the line: {netlat}");
            }
            _ => panic!("expected table"),
        }
    }

    #[test]
    fn qq_series_are_monotone() {
        let ctx = Context::new(Scale::Quick, 92);
        let artifacts = f13_qq(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Figure(f) => {
                assert_eq!(f.series.len(), REPRESENTATIVES.len());
                for s in &f.series {
                    for w in s.points.windows(2) {
                        assert!(w[1].0 > w[0].0);
                        assert!(w[1].1 >= w[0].1);
                    }
                }
            }
            _ => panic!("expected figure"),
        }
    }
}
