//! F3/F4/F5: coefficient-of-variation by machine type, per subsystem
//! family.
//!
//! For every machine the run-to-run CoV of each benchmark is computed
//! from its campaign samples; the table reports the median per-machine
//! CoV per (type, benchmark), plus the cross-machine CoV of per-machine
//! medians (the hardware-lottery component). The paper's ordering —
//! disk ≫ memory > network throughput — must emerge.

/// Cache code-version tag for F3: bump on any edit that could
/// change `f3_cov_memory`'s output, so stale cached artifacts self-invalidate.
pub const F3_COV_MEMORY_VERSION: u32 = 1;

/// Cache code-version tag for F4: bump on any edit that could
/// change `f4_cov_disk`'s output, so stale cached artifacts self-invalidate.
pub const F4_COV_DISK_VERSION: u32 = 1;

/// Cache code-version tag for F5: bump on any edit that could
/// change `f5_cov_network`'s output, so stale cached artifacts self-invalidate.
pub const F5_COV_NETWORK_VERSION: u32 = 1;
use std::collections::BTreeMap;

use varstats::descriptive::Moments;
use varstats::quantile::median;
use workloads::BenchmarkId;

use crate::artifact::{pct, Artifact, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// Per-(type, benchmark) variability decomposition.
struct CovRow {
    type_name: String,
    disk: &'static str,
    median_within_cov: f64,
    across_cov: f64,
    machines: usize,
}

fn cov_rows(ctx: &Context, bench: BenchmarkId) -> Result<Vec<CovRow>, ExperimentError> {
    // One shard pass in canonical machine order (identical in both data
    // modes), bucketing per-machine (cov, median) pairs by type.
    let mut per_type: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    ctx.for_each_shard(|shard| {
        let values = shard.values(bench);
        if values.is_empty() {
            return;
        }
        let moments: Moments = values.iter().copied().collect();
        let cov = moments.cov().unwrap_or(0.0);
        let med = median(&values).expect("non-empty group");
        per_type
            .entry(shard.type_name.to_string())
            .or_default()
            .push((cov, med));
    })?;
    Ok(per_type
        .into_iter()
        .map(|(type_name, entries)| {
            let covs: Vec<f64> = entries.iter().map(|(c, _)| *c).collect();
            let medians: Vec<f64> = entries.iter().map(|(_, m)| *m).collect();
            let across: Moments = medians.iter().copied().collect();
            let disk = ctx
                .cluster
                .types()
                .iter()
                .find(|t| t.name == type_name)
                .map(|t| t.disk.label())
                .unwrap_or("?");
            CovRow {
                type_name,
                disk,
                median_within_cov: median(&covs).expect("non-empty"),
                across_cov: across.cov().unwrap_or(0.0),
                machines: entries.len(),
            }
        })
        .collect())
}

fn family_table(
    ctx: &Context,
    id: &str,
    title: &str,
    benches: &[BenchmarkId],
) -> Result<Artifact, ExperimentError> {
    let mut t = Table::new(
        id,
        title,
        &[
            "type",
            "disk",
            "benchmark",
            "machines",
            "median within-machine CoV",
            "across-machine CoV",
        ],
    );
    for &bench in benches {
        for row in cov_rows(ctx, bench)? {
            t.push_row(vec![
                row.type_name,
                row.disk.to_string(),
                bench.label().to_string(),
                row.machines.to_string(),
                pct(row.median_within_cov),
                pct(row.across_cov),
            ]);
        }
    }
    Ok(Artifact::Table(t))
}

/// F3: memory-family CoV by type.
pub fn f3_cov_memory(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    Ok(vec![family_table(
        ctx,
        "F3",
        "CoV by machine type: memory benchmarks",
        &[
            BenchmarkId::MemCopy,
            BenchmarkId::MemTriad,
            BenchmarkId::MemLatency,
        ],
    )?])
}

/// F4: disk-family CoV by type (HDD vs SSD ordering).
pub fn f4_cov_disk(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    Ok(vec![family_table(
        ctx,
        "F4",
        "CoV by machine type: disk benchmarks",
        &BenchmarkId::DISK,
    )?])
}

/// F5: network-family CoV by type (throughput the most stable subsystem).
pub fn f5_cov_network(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    Ok(vec![family_table(
        ctx,
        "F5",
        "CoV by machine type: network benchmarks",
        &BenchmarkId::NETWORK,
    )?])
}

/// Median within-machine CoV across all types for one benchmark —
/// the summary number the cross-family comparisons quote.
pub fn overall_cov(ctx: &Context, bench: BenchmarkId) -> f64 {
    let rows = cov_rows(ctx, bench).expect("data path readable");
    let covs: Vec<f64> = rows.iter().map(|r| r.median_within_cov).collect();
    median(&covs).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn paper_ordering_disk_over_memory_over_network() {
        let ctx = Context::new(Scale::Quick, 11);
        let disk = overall_cov(&ctx, BenchmarkId::DiskRandRead);
        let mem = overall_cov(&ctx, BenchmarkId::MemTriad);
        let net = overall_cov(&ctx, BenchmarkId::NetBandwidth);
        assert!(disk > mem, "disk {disk} vs mem {mem}");
        assert!(mem > net, "mem {mem} vs net {net}");
    }

    #[test]
    fn tables_cover_all_types() {
        let ctx = Context::new(Scale::Quick, 12);
        for (f, rows_per_bench) in [
            (
                f3_cov_memory as fn(&Context) -> Result<Vec<Artifact>, ExperimentError>,
                3usize,
            ),
            (f4_cov_disk, 4),
            (f5_cov_network, 2),
        ] {
            let artifacts = f(&ctx).unwrap();
            match &artifacts[0] {
                Artifact::Table(t) => {
                    assert_eq!(t.rows.len(), rows_per_bench * ctx.cluster.types().len());
                }
                _ => panic!("expected table"),
            }
        }
    }

    #[test]
    fn hdd_types_show_higher_disk_cov_than_flash() {
        let ctx = Context::new(Scale::Quick, 13);
        let rows = cov_rows(&ctx, BenchmarkId::DiskSeqRead).unwrap();
        let hdd_med = median(
            &rows
                .iter()
                .filter(|r| r.disk == "HDD")
                .map(|r| r.median_within_cov)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let flash_med = median(
            &rows
                .iter()
                .filter(|r| r.disk != "HDD")
                .map(|r| r.median_within_cov)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(hdd_med > flash_med, "hdd {hdd_med} vs flash {flash_med}");
    }
}
