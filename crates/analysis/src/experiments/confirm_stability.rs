//! F16: CONFIRM's own stability.
//!
//! A repetition estimator is only trustworthy if its answer does not
//! hinge on its internal randomness. This experiment re-runs CONFIRM on
//! the same pools with different subsampling seeds and reports the spread
//! of the answers — the methodological soundness check the paper's
//! `c = 200` rounds are there to provide — and shows how the spread
//! shrinks as the number of rounds grows.

/// Cache code-version tag for F16: bump on any edit that could
/// change `f16_confirm_stability`'s output, so stale cached artifacts self-invalidate.
pub const F16_CONFIRM_STABILITY_VERSION: u32 = 1;
use confirm::estimate;
use varstats::descriptive::Moments;
use workloads::BenchmarkId;

use crate::artifact::{fmt, Artifact, Table};
use crate::context::Context;
use crate::experiments::confirm_study::machine_pool;
use crate::registry::ExperimentError;

/// Spread of CONFIRM answers across seeds for one configuration.
#[derive(Debug, Clone)]
pub struct StabilityRow {
    /// Rounds per subset size.
    pub rounds: usize,
    /// Mean answer (ordinal) across seeds.
    pub mean: f64,
    /// Standard deviation of the answer across seeds.
    pub std_dev: f64,
    /// Smallest and largest answer seen.
    pub range: (usize, usize),
}

/// Re-runs CONFIRM across `seeds` different subsampling seeds at each
/// rounds setting.
pub fn stability_sweep(
    ctx: &Context,
    bench: BenchmarkId,
    rounds_settings: &[usize],
    seeds: usize,
) -> Vec<StabilityRow> {
    let machine = ctx.cluster.machines_of_type("c220g1")[0].id;
    let pool = machine_pool(ctx, machine, bench, 120);
    rounds_settings
        .iter()
        .map(|&rounds| {
            let answers: Vec<usize> = (0..seeds as u64)
                .map(|s| {
                    let config = ctx
                        .confirm
                        .with_rounds(rounds)
                        .with_target_rel_error(0.02)
                        .with_seed(ctx.seed.wrapping_add(s * 7919));
                    estimate(&pool, &config)
                        .expect("valid pool")
                        .requirement
                        .as_ordinal()
                })
                .collect();
            let m: Moments = answers.iter().map(|&a| a as f64).collect();
            StabilityRow {
                rounds,
                mean: m.mean(),
                std_dev: m.std_dev(),
                range: (
                    *answers.iter().min().expect("non-empty"),
                    *answers.iter().max().expect("non-empty"),
                ),
            }
        })
        .collect()
}

/// F16: the stability table.
pub fn f16_confirm_stability(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let bench = BenchmarkId::DiskSeqRead;
    let rows = stability_sweep(ctx, bench, &[20, 50, 100, 200], 10);
    let mut t = Table::new(
        "F16",
        "CONFIRM answer stability across 10 subsampling seeds (disk-seq-read, +/-2%)",
        &["rounds (c)", "mean answer", "std dev", "min", "max"],
    );
    for r in &rows {
        t.push_row(vec![
            r.rounds.to_string(),
            fmt(r.mean, 1),
            fmt(r.std_dev, 2),
            r.range.0.to_string(),
            r.range.1.to_string(),
        ]);
    }
    Ok(vec![Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn more_rounds_is_never_wildly_less_stable() {
        let ctx = Context::new(Scale::Quick, 131);
        let rows = stability_sweep(&ctx, BenchmarkId::DiskSeqRead, &[20, 200], 8);
        assert_eq!(rows.len(), 2);
        // c = 200 must not be dramatically less stable than c = 20 (allow
        // discreteness noise).
        assert!(
            rows[1].std_dev <= rows[0].std_dev + 2.0,
            "c=20 sd {} vs c=200 sd {}",
            rows[0].std_dev,
            rows[1].std_dev
        );
        // Answers must agree on the rough magnitude.
        let ratio = rows[0].mean.max(rows[1].mean) / rows[0].mean.min(rows[1].mean);
        assert!(ratio < 2.0, "means {} vs {}", rows[0].mean, rows[1].mean);
    }

    #[test]
    fn answers_are_tight_at_paper_rounds() {
        let ctx = Context::new(Scale::Quick, 132);
        let rows = stability_sweep(&ctx, BenchmarkId::MemTriad, &[200], 8);
        let r = &rows[0];
        // Memory pools give rock-solid answers: range within a few reps.
        assert!(
            r.range.1 - r.range.0 <= 4,
            "range {:?} too wide for c = 200",
            r.range
        );
    }

    #[test]
    fn f16_artifact_shape() {
        let ctx = Context::new(Scale::Quick, 133);
        let artifacts = f16_confirm_stability(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => assert_eq!(t.rows.len(), 4),
            _ => panic!("expected table"),
        }
    }
}
