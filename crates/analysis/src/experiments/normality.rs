//! F6: the normality census.
//!
//! Shapiro–Wilk is run on every (machine, benchmark) sample set of the
//! campaign. The paper's headline: a large share of real benchmark data
//! is not normal, and which share depends on the subsystem — eventful,
//! skewed subsystems (disk, network latency) fail most.

/// Cache code-version tag for F6: bump on any edit that could
/// change `f6_normality`'s output, so stale cached artifacts self-invalidate.
pub const F6_NORMALITY_VERSION: u32 = 1;
use varstats::normality::shapiro_wilk;
use workloads::BenchmarkId;

use crate::artifact::{pct, Artifact, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// Outcome of the census for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct NormalityCensusRow {
    /// Benchmark.
    pub benchmark: BenchmarkId,
    /// Number of (machine) sample sets tested.
    pub sets: usize,
    /// How many passed Shapiro–Wilk at the given alpha.
    pub passed: usize,
}

impl NormalityCensusRow {
    /// Fraction of sets passing.
    pub fn pass_rate(&self) -> f64 {
        if self.sets == 0 {
            0.0
        } else {
            self.passed as f64 / self.sets as f64
        }
    }
}

/// Runs the census at significance `alpha`.
///
/// # Errors
///
/// Fails only if a streaming context cannot read a journal shard.
pub fn census(ctx: &Context, alpha: f64) -> Result<Vec<NormalityCensusRow>, ExperimentError> {
    // One shard pass; each machine's set is complete within its shard,
    // so the per-benchmark pass counters accumulate shard by shard.
    let mut tallies = vec![(0usize, 0usize); BenchmarkId::ALL.len()];
    ctx.for_each_shard(|shard| {
        for (&benchmark, tally) in BenchmarkId::ALL.iter().zip(tallies.iter_mut()) {
            let values = shard.values(benchmark);
            if values.len() < 20 {
                continue;
            }
            if let Ok(result) = shapiro_wilk(&values) {
                tally.0 += 1;
                if result.is_normal(alpha) {
                    tally.1 += 1;
                }
            }
        }
    })?;
    Ok(BenchmarkId::ALL
        .iter()
        .zip(tallies)
        .map(|(&benchmark, (sets, passed))| NormalityCensusRow {
            benchmark,
            sets,
            passed,
        })
        .collect())
}

/// F6: pass rates per benchmark plus the overall fraction.
pub fn f6_normality(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let rows = census(ctx, 0.05)?;
    let mut t = Table::new(
        "F6",
        "Shapiro-Wilk normality census (alpha = 0.05), per benchmark",
        &["benchmark", "subsystem", "sets", "passed", "pass rate"],
    );
    let mut total_sets = 0usize;
    let mut total_passed = 0usize;
    for row in &rows {
        total_sets += row.sets;
        total_passed += row.passed;
        t.push_row(vec![
            row.benchmark.label().to_string(),
            row.benchmark.subsystem().label().to_string(),
            row.sets.to_string(),
            row.passed.to_string(),
            pct(row.pass_rate()),
        ]);
    }
    t.push_row(vec![
        "TOTAL".to_string(),
        "-".to_string(),
        total_sets.to_string(),
        total_passed.to_string(),
        pct(total_passed as f64 / total_sets.max(1) as f64),
    ]);
    Ok(vec![Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn census_covers_every_benchmark_and_machine() {
        let ctx = Context::new(Scale::Quick, 21);
        let rows = census(&ctx, 0.05).unwrap();
        assert_eq!(rows.len(), BenchmarkId::ALL.len());
        let machines = ctx.store().machines().len();
        for row in &rows {
            assert_eq!(row.sets, machines, "{:?}", row.benchmark);
            assert!(row.passed <= row.sets);
        }
    }

    #[test]
    fn eventful_subsystems_fail_more_than_memory_bandwidth() {
        // The campaign pools samples across a drifting, event-laden
        // timeline: disk and network-latency sets should pass normality
        // far less often than memory bandwidth (no drift, tiny normal
        // noise).
        let ctx = Context::new(Scale::Quick, 22);
        let rows = census(&ctx, 0.05).unwrap();
        let rate = |b: BenchmarkId| rows.iter().find(|r| r.benchmark == b).unwrap().pass_rate();
        let mem = rate(BenchmarkId::MemCopy);
        let disk = rate(BenchmarkId::DiskRandRead);
        let netlat = rate(BenchmarkId::NetLatency);
        assert!(mem > disk, "mem {mem} vs disk {disk}");
        assert!(mem > netlat, "mem {mem} vs net-lat {netlat}");
        assert!(disk < 0.5, "disk sets should mostly fail, rate {disk}");
    }

    #[test]
    fn f6_table_has_total_row() {
        let ctx = Context::new(Scale::Quick, 23);
        let artifacts = f6_normality(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => {
                assert_eq!(t.rows.len(), BenchmarkId::ALL.len() + 1);
                assert_eq!(t.rows.last().unwrap()[0], "TOTAL");
            }
            _ => panic!("expected table"),
        }
    }

    #[test]
    fn stricter_alpha_passes_more() {
        let ctx = Context::new(Scale::Quick, 24);
        let r5 = census(&ctx, 0.05).unwrap();
        let r1 = census(&ctx, 0.01).unwrap();
        let total = |rows: &[NormalityCensusRow]| -> usize { rows.iter().map(|r| r.passed).sum() };
        assert!(total(&r1) >= total(&r5));
    }
}
