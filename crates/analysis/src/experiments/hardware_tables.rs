//! T1 (hardware catalog) and T2 (benchmark suite) tables.

/// Cache code-version tag for T1: bump on any edit that could
/// change `t1_hardware`'s output, so stale cached artifacts self-invalidate.
pub const T1_HARDWARE_VERSION: u32 = 1;

/// Cache code-version tag for T2: bump on any edit that could
/// change `t2_benchmarks`'s output, so stale cached artifacts self-invalidate.
pub const T2_BENCHMARKS_VERSION: u32 = 1;
use workloads::BenchmarkId;

use crate::artifact::{Artifact, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// T1: the machine-type catalog with provisioned counts.
pub fn t1_hardware(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let mut t = Table::new(
        "T1",
        "Hardware catalog (fleet types and provisioned counts)",
        &[
            "type",
            "site",
            "cpu",
            "cores",
            "GHz",
            "RAM GiB",
            "disk",
            "NIC Gb/s",
            "fleet",
            "provisioned",
        ],
    );
    for mt in ctx.cluster.types() {
        let provisioned = ctx.cluster.machines_of_type(&mt.name).len();
        t.push_row(vec![
            mt.name.clone(),
            mt.site.clone(),
            mt.cpu.clone(),
            mt.cores.to_string(),
            format!("{:.1}", mt.base_ghz),
            mt.ram_gb.to_string(),
            mt.disk.label().to_string(),
            mt.nic_gbps.to_string(),
            mt.count.to_string(),
            provisioned.to_string(),
        ]);
    }
    Ok(vec![Artifact::Table(t)])
}

/// T2: the benchmark suite with families, units, and parameters.
pub fn t2_benchmarks(_ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let mut t = Table::new(
        "T2",
        "Benchmark suite (family, unit, parameters)",
        &["benchmark", "subsystem", "unit", "direction", "parameters"],
    );
    for b in BenchmarkId::ALL {
        t.push_row(vec![
            b.label().to_string(),
            b.subsystem().label().to_string(),
            b.unit().label().to_string(),
            if b.higher_is_better() {
                "higher".to_string()
            } else {
                "lower".to_string()
            },
            b.params().to_string(),
        ]);
    }
    Ok(vec![Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn t1_lists_every_type() {
        let ctx = Context::new(Scale::Quick, 1);
        let artifacts = t1_hardware(&ctx).unwrap();
        assert_eq!(artifacts.len(), 1);
        match &artifacts[0] {
            Artifact::Table(t) => {
                assert_eq!(t.rows.len(), ctx.cluster.types().len());
                assert!(t.render().contains("c220g1"));
            }
            _ => panic!("expected table"),
        }
    }

    #[test]
    fn t2_lists_every_benchmark() {
        let ctx = Context::new(Scale::Quick, 1);
        let artifacts = t2_benchmarks(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => {
                assert_eq!(t.rows.len(), BenchmarkId::ALL.len());
                assert!(t.render().contains("disk-rand-read"));
                assert!(t.render().contains("us"));
            }
            _ => panic!("expected table"),
        }
    }
}
