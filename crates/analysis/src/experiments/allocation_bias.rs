//! F14: allocation-policy bias.
//!
//! Estimating a type's performance from k allocated machines inherits
//! those machines' lottery draws. Sequential allocation pins the estimate
//! to one fixed draw (bias with zero apparent variance); random
//! allocation converts machine identity into honest sampling variance.
//! This experiment quantifies both against the fleet-wide ground truth —
//! the paper's "randomize machine selection" recommendation, measured.

/// Cache code-version tag for F14: bump on any edit that could
/// change `f14_allocation_bias`'s output, so stale cached artifacts self-invalidate.
pub const F14_ALLOCATION_BIAS_VERSION: u32 = 1;
use testbed::{allocate, AllocationPolicy};
use varstats::quantile::median;
use workloads::{sample, BenchmarkId};

use crate::artifact::{pct, Artifact, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// Result of one policy evaluation.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Policy label.
    pub policy: String,
    /// Mean absolute relative error vs the fleet ground truth across
    /// draws.
    pub mean_abs_error: f64,
    /// Worst draw's relative error.
    pub worst_error: f64,
}

/// Median benchmark value over `k` machines (median of per-machine
/// medians over `runs` repetitions).
fn estimate_with(
    ctx: &Context,
    machines: &[&testbed::Machine],
    bench: BenchmarkId,
    runs: usize,
) -> f64 {
    let per_machine: Vec<f64> = machines
        .iter()
        .map(|m| {
            let xs: Vec<f64> = (0..runs as u64)
                .map(|n| {
                    sample(&ctx.cluster, m.id, bench, 0.0, n)
                        .expect("machine comes from this cluster")
                })
                .collect();
            median(&xs).expect("non-empty")
        })
        .collect();
    median(&per_machine).expect("non-empty")
}

/// Evaluates the policies for one (type, benchmark), drawing `draws`
/// random allocations of `k` machines.
pub fn evaluate_policies(
    ctx: &Context,
    type_name: &str,
    bench: BenchmarkId,
    k: usize,
    draws: usize,
) -> Vec<PolicyOutcome> {
    // Ground truth: the fleet-wide median of per-machine medians.
    let fleet = ctx.cluster.machines_of_type(type_name);
    let truth = estimate_with(ctx, &fleet, bench, 30);

    let mut outcomes = Vec::new();
    // Sequential: one deterministic draw.
    let seq = allocate(&ctx.cluster, type_name, k, AllocationPolicy::Sequential);
    let seq_err = (estimate_with(ctx, &seq, bench, 30) - truth).abs() / truth;
    outcomes.push(PolicyOutcome {
        policy: "sequential".to_string(),
        mean_abs_error: seq_err,
        worst_error: seq_err,
    });
    // Strided: also deterministic.
    let strided = allocate(&ctx.cluster, type_name, k, AllocationPolicy::Strided);
    let str_err = (estimate_with(ctx, &strided, bench, 30) - truth).abs() / truth;
    outcomes.push(PolicyOutcome {
        policy: "strided".to_string(),
        mean_abs_error: str_err,
        worst_error: str_err,
    });
    // Random: many draws.
    let mut errors = Vec::with_capacity(draws);
    for seed in 0..draws as u64 {
        let picked = allocate(
            &ctx.cluster,
            type_name,
            k,
            AllocationPolicy::Random {
                seed: ctx.seed.wrapping_add(seed),
            },
        );
        errors.push((estimate_with(ctx, &picked, bench, 30) - truth).abs() / truth);
    }
    outcomes.push(PolicyOutcome {
        policy: format!("random (x{draws})"),
        mean_abs_error: errors.iter().sum::<f64>() / errors.len() as f64,
        worst_error: errors.iter().cloned().fold(0.0, f64::max),
    });
    outcomes
}

/// F14: the policy-bias table across every machine type.
///
/// Sequential allocation is a single arbitrary draw per type — sometimes
/// lucky, sometimes not, and the experimenter cannot tell which. Showing
/// every type makes the hazard visible: the worst type's fixed prefix is
/// biased by several percent, while random allocation turns the same
/// spread into quantifiable (and averageable) sampling noise.
pub fn f14_allocation_bias(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let bench = BenchmarkId::MemTriad;
    let mut t = Table::new(
        "F14",
        &format!(
            "Allocation-policy bias per type: estimating {} from k = 3 machines",
            bench.label()
        ),
        &[
            "type",
            "sequential |error|",
            "strided |error|",
            "random mean |error|",
            "random worst |error|",
        ],
    );
    let mut worst_sequential: f64 = 0.0;
    for mtype in ctx.cluster.types() {
        let outcomes = evaluate_policies(ctx, &mtype.name, bench, 3, 12);
        let seq = outcomes[0].mean_abs_error;
        let strided = outcomes[1].mean_abs_error;
        let random = &outcomes[2];
        worst_sequential = worst_sequential.max(seq);
        t.push_row(vec![
            mtype.name.clone(),
            pct(seq),
            pct(strided),
            pct(random.mean_abs_error),
            pct(random.worst_error),
        ]);
    }
    t.push_row(vec![
        "WORST".to_string(),
        pct(worst_sequential),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    Ok(vec![Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn errors_are_bounded_by_the_lottery_spread() {
        let ctx = Context::new(Scale::Quick, 95);
        let outcomes = evaluate_policies(&ctx, "m400", BenchmarkId::MemTriad, 3, 10);
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert!(
                o.mean_abs_error < 0.10,
                "{}: error {} exceeds the lottery spread",
                o.policy,
                o.mean_abs_error
            );
            assert!(o.worst_error >= o.mean_abs_error - 1e-12);
        }
    }

    #[test]
    fn random_worst_case_sees_more_of_the_fleet() {
        // Across draws, random allocation explores machines sequential
        // never touches; its worst-case error is at least as large as
        // its mean (trivially) and the outcomes differ across draws.
        let ctx = Context::new(Scale::Quick, 96);
        let outcomes = evaluate_policies(&ctx, "c220g2", BenchmarkId::MemTriad, 3, 15);
        let random = outcomes
            .iter()
            .find(|o| o.policy.starts_with("random"))
            .unwrap();
        assert!(random.worst_error > 0.0);
    }

    #[test]
    fn f14_covers_every_type_and_summarizes_worst() {
        let ctx = Context::new(Scale::Quick, 97);
        let artifacts = f14_allocation_bias(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => {
                assert_eq!(t.rows.len(), ctx.cluster.types().len() + 1);
                let last = t.rows.last().unwrap();
                assert_eq!(last[0], "WORST");
                let worst: f64 = last[1].trim_end_matches('%').parse().unwrap();
                // Some type's fixed 3-machine prefix should be visibly
                // biased (the lottery guarantees spread).
                assert!(worst > 0.2, "worst sequential error {worst}%");
            }
            _ => panic!("expected table"),
        }
    }
}
