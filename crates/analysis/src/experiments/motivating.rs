//! F1 (skewed repeated runs on one disk) and F2 (multimodal memory
//! bandwidth across machines) — the paper's motivating exhibits.

/// Cache code-version tag for F1: bump on any edit that could
/// change `f1_motivating`'s output, so stale cached artifacts self-invalidate.
pub const F1_MOTIVATING_VERSION: u32 = 1;

/// Cache code-version tag for F2: bump on any edit that could
/// change `f2_memory_multimodal`'s output, so stale cached artifacts self-invalidate.
pub const F2_MEMORY_MULTIMODAL_VERSION: u32 = 1;
use varstats::histogram::{BinRule, Histogram};
use varstats::quantile::median;
use varstats::Summary;
use workloads::BenchmarkId;

use crate::artifact::{fmt, Artifact, SeriesSet, Table};
use crate::context::Context;
use crate::experiments::draw;
use crate::registry::ExperimentError;

/// Picks the first machine of the first HDD type.
fn first_hdd_machine(ctx: &Context) -> testbed::MachineId {
    let hdd_type = ctx
        .cluster
        .types()
        .iter()
        .find(|t| t.disk == testbed::DiskKind::Hdd)
        .expect("catalog has HDD types");
    ctx.cluster.machines_of_type(&hdd_type.name)[0].id
}

/// F1: 1000 repeated disk-write runs on one machine are skewed with a
/// distinct outlier tail; the mean and median visibly disagree.
pub fn f1_motivating(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let machine = first_hdd_machine(ctx);
    let runs: Vec<f64> = (0..1000u64)
        .map(|n| draw(&ctx.cluster, machine, BenchmarkId::DiskSeqWrite, 0.0, n))
        .collect::<Result<_, _>>()?;
    let summary = Summary::from_slice(&runs).expect("non-empty runs");
    let hist = Histogram::new(&runs, BinRule::Fixed(30)).expect("non-empty runs");

    let mut fig = SeriesSet::new(
        "F1",
        "Motivating example: 1000 disk-seq-write runs on one HDD machine",
        "throughput (MB/s)",
        "runs per bin",
    );
    fig.push_series(
        "histogram",
        (0..hist.bins())
            .map(|i| (hist.bin_center(i), hist.counts[i] as f64))
            .collect(),
    );

    let p5 = {
        let mut s = runs.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        varstats::quantile::quantile_sorted(&s, 0.05, Default::default())
            .map_err(|e| ExperimentError::new(format!("p5 quantile: {e}")))?
    };
    let mut t = Table::new(
        "F1-summary",
        "Summary statistics of the F1 runs (mean vs median disagreement)",
        &["statistic", "value"],
    );
    for (name, v) in [
        ("n", summary.n as f64),
        ("mean", summary.mean),
        ("median", summary.median),
        ("std dev", summary.std_dev),
        ("CoV", summary.cov),
        ("skewness", summary.skewness),
        ("p5", p5),
        ("min", summary.min),
        ("max", summary.max),
        ("mean-median gap", summary.mean_median_gap()),
    ] {
        t.push_row(vec![name.to_string(), fmt(v, 4)]);
    }
    Ok(vec![Artifact::Figure(fig), Artifact::Table(t)])
}

/// F2: per-machine median memory bandwidth across one type's fleet is
/// multimodal — nominally identical machines fall into distinct clusters.
pub fn f2_memory_multimodal(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    // Use the type with the largest provisioned fleet for a dense
    // histogram, and widen the per-machine pool beyond the campaign by
    // sampling directly (cross-machine structure needs many machines; the
    // quick campaign caps machines per type).
    let mtype = ctx
        .cluster
        .types()
        .iter()
        .max_by_key(|t| ctx.cluster.machines_of_type(&t.name).len())
        .expect("catalog non-empty");
    let machines = ctx.cluster.machines_of_type(&mtype.name);
    let medians: Vec<f64> = machines
        .iter()
        .map(|m| {
            let runs: Vec<f64> = (0..30u64)
                .map(|n| draw(&ctx.cluster, m.id, BenchmarkId::MemTriad, 0.0, n))
                .collect::<Result<_, _>>()?;
            median(&runs).map_err(|e| ExperimentError::new(format!("per-machine median: {e}")))
        })
        .collect::<Result<_, _>>()?;
    let hist = Histogram::new(&medians, BinRule::Fixed(24)).expect("non-empty");
    let modes = hist.count_modes(0.04);

    let mut fig = SeriesSet::new(
        "F2",
        &format!(
            "Per-machine median mem-triad bandwidth across {} {} machines ({} modes detected)",
            machines.len(),
            mtype.name,
            modes
        ),
        "median bandwidth (MB/s)",
        "machines per bin",
    );
    fig.push_series(
        "histogram",
        (0..hist.bins())
            .map(|i| (hist.bin_center(i), hist.counts[i] as f64))
            .collect(),
    );

    let spread = {
        let min = medians.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (max - min) / max
    };
    let mut t = Table::new(
        "F2-summary",
        "Cross-machine spread of per-machine medians (hardware lottery)",
        &["type", "machines", "modes", "relative spread"],
    );
    t.push_row(vec![
        mtype.name.clone(),
        machines.len().to_string(),
        modes.to_string(),
        crate::artifact::pct(spread),
    ]);
    Ok(vec![Artifact::Figure(fig), Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn f1_shows_left_skewed_throughput() {
        let ctx = Context::new(Scale::Quick, 3);
        let artifacts = f1_motivating(&ctx).unwrap();
        assert_eq!(artifacts.len(), 2);
        // Throughput outliers are slow runs, so the mean must sit below
        // the median (left skew).
        match &artifacts[1] {
            Artifact::Table(t) => {
                let get = |name: &str| -> f64 {
                    t.rows.iter().find(|r| r[0] == name).unwrap()[1]
                        .parse()
                        .unwrap()
                };
                assert!(
                    get("mean") < get("median"),
                    "disk outliers drag the mean down"
                );
                assert!(get("skewness") < 0.0);
                assert_eq!(get("n"), 1000.0);
            }
            _ => panic!("expected summary table"),
        }
    }

    #[test]
    fn f2_detects_multiple_modes() {
        // Use the paper-scale fleet restriction: quick context still has
        // the full provisioned fleet for the largest type (18 machines at
        // 0.1 scale), enough for modes to show with the 20%/3% clusters
        // at larger fleets; assert at least the artifact structure and
        // spread here.
        let ctx = Context::new(Scale::Quick, 4);
        let artifacts = f2_memory_multimodal(&ctx).unwrap();
        match &artifacts[1] {
            Artifact::Table(t) => {
                let spread: f64 = t.rows[0][3].trim_end_matches('%').parse().unwrap();
                assert!(
                    spread > 1.0,
                    "lottery spread should exceed 1%, got {spread}%"
                );
            }
            _ => panic!("expected summary table"),
        }
    }
}
