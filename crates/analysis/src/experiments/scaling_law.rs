//! F17: CONFIRM's scaling law, validated against theory.
//!
//! For near-normal data the repetitions needed for a ±e relative CI of
//! the median scale as `n ≈ (z * 1.2533 * CoV / e)^2` (the median's
//! asymptotic efficiency is `pi/2` relative to the mean, whence the
//! `sqrt(pi/2) ≈ 1.2533`). This experiment sweeps the testbed's noise
//! scale and checks CONFIRM's measured answers track the quadratic law —
//! the strongest kind of soundness evidence an estimator can offer.

/// Cache code-version tag for F17: bump on any edit that could
/// change `f17_scaling_law`'s output, so stale cached artifacts self-invalidate.
pub const F17_SCALING_LAW_VERSION: u32 = 1;
use confirm::{estimate, Growth};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use varstats::special::normal_quantile;

use crate::artifact::{fmt, Artifact, SeriesSet, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// The CoV levels swept.
pub const COV_SWEEP: [f64; 5] = [0.005, 0.01, 0.02, 0.04, 0.08];

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Coefficient of variation of the synthetic pool.
    pub cov: f64,
    /// CONFIRM's measured requirement (ordinal).
    pub measured: usize,
    /// The theoretical prediction for the median at this CoV.
    pub predicted: f64,
}

/// Runs the sweep: synthetic normal pools at each CoV, CONFIRM at
/// `target` relative error.
pub fn sweep(ctx: &Context, target: f64) -> Vec<ScalingPoint> {
    let z = normal_quantile(0.5 + ctx.confirm.confidence / 2.0).expect("valid confidence");
    let median_efficiency = (std::f64::consts::PI / 2.0).sqrt();
    COV_SWEEP
        .iter()
        .map(|&cov| {
            // A large synthetic normal pool at this CoV.
            let mut rng = StdRng::seed_from_u64(ctx.seed ^ cov.to_bits());
            let pool: Vec<f64> = (0..4000)
                .map(|_| {
                    let u1: f64 = rng.random::<f64>().max(1e-300);
                    let u2: f64 = rng.random::<f64>();
                    let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    100.0 * (1.0 + cov * n)
                })
                .collect();
            let config = ctx
                .confirm
                .with_target_rel_error(target)
                .with_growth(Growth::Geometric(1.15));
            let measured = estimate(&pool, &config)
                .expect("valid pool")
                .requirement
                .as_ordinal();
            let predicted = (z * median_efficiency * cov / target).powi(2);
            ScalingPoint {
                cov,
                measured,
                predicted,
            }
        })
        .collect()
}

/// F17: measured vs predicted requirements across the CoV sweep.
pub fn f17_scaling_law(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let target = 0.01;
    let points = sweep(ctx, target);
    let mut fig = SeriesSet::new(
        "F17",
        "CONFIRM requirement vs CoV (synthetic normal pools, +/-1% 95% CI of the median)",
        "coefficient of variation",
        "repetitions",
    );
    fig.push_series(
        "measured (CONFIRM)",
        points.iter().map(|p| (p.cov, p.measured as f64)).collect(),
    );
    fig.push_series(
        "theory (z * 1.2533 * CoV / e)^2",
        points.iter().map(|p| (p.cov, p.predicted)).collect(),
    );
    let mut t = Table::new(
        "F17-summary",
        "Measured vs predicted (floor of 10 applies at tiny CoV)",
        &["CoV", "measured", "predicted", "ratio"],
    );
    for p in &points {
        let ratio = p.measured as f64 / p.predicted.max(1.0);
        t.push_row(vec![
            fmt(p.cov, 3),
            p.measured.to_string(),
            fmt(p.predicted, 1),
            fmt(ratio, 2),
        ]);
    }
    Ok(vec![Artifact::Figure(fig), Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn requirement_grows_roughly_quadratically() {
        let ctx = Context::new(Scale::Quick, 151);
        let points = sweep(&ctx, 0.01);
        // Above the floor, doubling CoV should multiply the requirement
        // by roughly 4 (allow 2.2x..7x for subset discreteness).
        let above_floor: Vec<&ScalingPoint> = points.iter().filter(|p| p.measured > 12).collect();
        for w in above_floor.windows(2) {
            let growth = w[1].measured as f64 / w[0].measured as f64;
            assert!(
                (2.2..7.0).contains(&growth),
                "CoV {} -> {}: growth {growth}",
                w[0].cov,
                w[1].cov
            );
        }
        assert!(above_floor.len() >= 2, "sweep never left the floor");
    }

    #[test]
    fn measured_tracks_theory_within_a_small_factor() {
        let ctx = Context::new(Scale::Quick, 152);
        let points = sweep(&ctx, 0.01);
        for p in points.iter().filter(|p| p.predicted > 15.0) {
            let ratio = p.measured as f64 / p.predicted;
            assert!(
                (0.4..2.5).contains(&ratio),
                "CoV {}: measured {} vs predicted {:.1}",
                p.cov,
                p.measured,
                p.predicted
            );
        }
    }

    #[test]
    fn f17_artifact_shape() {
        let ctx = Context::new(Scale::Quick, 153);
        let artifacts = f17_scaling_law(&ctx).unwrap();
        assert_eq!(artifacts.len(), 2);
        match &artifacts[0] {
            Artifact::Figure(f) => {
                assert_eq!(f.series.len(), 2);
                assert_eq!(f.series[0].points.len(), COV_SWEEP.len());
            }
            _ => panic!("expected figure"),
        }
    }
}
