//! F11: temporal variability and changepoint detection.
//!
//! A daily time series of one benchmark on one machine spans the whole
//! campaign, including the timeline's maintenance events. PELT and CUSUM
//! must locate the level shifts; the artifact compares detected positions
//! against the simulator's ground truth.

/// Cache code-version tag for F11: bump on any edit that could
/// change `f11_temporal`'s output, so stale cached artifacts self-invalidate.
pub const F11_TEMPORAL_VERSION: u32 = 1;
use varstats::changepoint::{cusum_detect, pelt_mean};
use workloads::{sample, BenchmarkId};

use crate::artifact::{fmt, Artifact, SeriesSet, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// Builds a daily series (one sample per day, decorrelated nonces) of
/// `bench` on `machine`.
pub fn daily_series(ctx: &Context, machine: testbed::MachineId, bench: BenchmarkId) -> Vec<f64> {
    let days = ctx.cluster.timeline().duration_days as usize;
    (0..days)
        .map(|d| {
            sample(&ctx.cluster, machine, bench, d as f64, d as u64)
                .expect("machine comes from this cluster")
        })
        .collect()
}

/// F11 artifacts: the series, the PELT/CUSUM detections, and ground truth.
pub fn f11_temporal(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let bench = BenchmarkId::MemLatency;
    let machine = ctx.cluster.machines()[0].id;
    let series = daily_series(ctx, machine, bench);
    let truth = ctx.cluster.timeline().change_days(bench.subsystem());

    let pelt = pelt_mean(&series, None).unwrap_or_default();
    let cusum = cusum_detect(&series, 200, ctx.seed).ok();

    let mut fig = SeriesSet::new(
        "F11",
        "Daily mem-latency over the ten-month campaign (one machine)",
        "campaign day",
        "latency (ns)",
    );
    fig.push_series(
        "daily median",
        series
            .iter()
            .enumerate()
            .map(|(d, &v)| (d as f64, v))
            .collect(),
    );

    let mut t = Table::new(
        "F11-summary",
        "Changepoints: simulator ground truth vs detections",
        &["source", "positions (day)"],
    );
    let join = |days: &[f64]| {
        days.iter()
            .map(|d| fmt(*d, 0))
            .collect::<Vec<_>>()
            .join(" ")
    };
    t.push_row(vec!["ground truth".to_string(), join(&truth)]);
    t.push_row(vec![
        "PELT".to_string(),
        join(&pelt.iter().map(|&i| i as f64).collect::<Vec<_>>()),
    ]);
    if let Some(c) = cusum {
        t.push_row(vec![
            "CUSUM (single)".to_string(),
            format!(
                "{} (p = {:.4}, {:.1} -> {:.1})",
                c.changepoint, c.p_value, c.mean_before, c.mean_after
            ),
        ]);
    }
    Ok(vec![Artifact::Figure(fig), Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn pelt_recovers_the_maintenance_event() {
        let ctx = Context::new(Scale::Quick, 71);
        let machine = ctx.cluster.machines()[0].id;
        let series = daily_series(&ctx, machine, BenchmarkId::MemLatency);
        let truth = ctx
            .cluster
            .timeline()
            .change_days(testbed::Subsystem::MemoryLatency);
        assert_eq!(truth, vec![95.0]);
        let detected = pelt_mean(&series, None).unwrap();
        assert!(
            detected.iter().any(|&cp| (cp as f64 - 95.0).abs() <= 5.0),
            "PELT missed day-95 event: {detected:?}"
        );
    }

    #[test]
    fn cusum_flags_the_shift_as_significant() {
        let ctx = Context::new(Scale::Quick, 72);
        let machine = ctx.cluster.machines()[0].id;
        let series = daily_series(&ctx, machine, BenchmarkId::MemLatency);
        let c = cusum_detect(&series, 200, 7).unwrap();
        assert!(c.is_significant(0.05), "p = {}", c.p_value);
        assert!(
            (c.changepoint as f64 - 95.0).abs() <= 10.0,
            "{}",
            c.changepoint
        );
        assert!(c.mean_after > c.mean_before);
    }

    #[test]
    fn eventless_subsystem_stays_quiet() {
        let ctx = Context::new(Scale::Quick, 73);
        let machine = ctx.cluster.machines()[0].id;
        let series = daily_series(&ctx, machine, BenchmarkId::NetBandwidth);
        let detected = pelt_mean(&series, None).unwrap();
        assert!(
            detected.is_empty(),
            "no event scheduled for net-bw, got {detected:?}"
        );
    }

    #[test]
    fn f11_artifacts_include_truth_and_detection() {
        let ctx = Context::new(Scale::Quick, 74);
        let artifacts = f11_temporal(&ctx).unwrap();
        assert_eq!(artifacts.len(), 2);
        match &artifacts[1] {
            Artifact::Table(t) => {
                assert!(t.rows.len() >= 2);
                assert_eq!(t.rows[0][0], "ground truth");
                assert_eq!(t.rows[0][1], "95");
            }
            _ => panic!("expected table"),
        }
    }
}
