//! T6: dataset overview — the campaign-scale table the paper's data
//! section opens with (machines × benchmarks × sessions, per-benchmark
//! record counts, and the outlier health sweep).

/// Cache code-version tag for T6: bump on any edit that could
/// change `t6_dataset_overview`'s output, so stale cached artifacts self-invalidate.
pub const T6_DATASET_OVERVIEW_VERSION: u32 = 1;
use dataset::{Fence, OverviewBuilder, SweepBuilder};

use crate::artifact::{fmt, pct, Artifact, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// T6: overview counts plus the per-benchmark outlier fractions.
pub fn t6_dataset_overview(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    // One shard pass feeds both mergeable folds — identical outputs to
    // `overview(&store)` / `outlier_sweep(&store, ..)`, which run the
    // same folds over the materialized record chunks.
    let mut builder = OverviewBuilder::new();
    let mut sweep = SweepBuilder::new(Fence::MadZ { threshold: 3.5 });
    ctx.for_each_shard(|shard| {
        builder.observe_records(shard.records());
        sweep
            .observe_shard(shard.records())
            .expect("campaign values are finite");
    })?;
    let o = builder.finish();
    let mut head = Table::new("T6", "Campaign dataset overview", &["property", "value"]);
    for (k, v) in [
        ("measurements", o.measurements.to_string()),
        ("machines", o.machines.to_string()),
        ("machine types", o.machine_types.to_string()),
        ("benchmarks", o.benchmarks.to_string()),
        ("first day", fmt(o.first_day, 0)),
        ("last day", fmt(o.last_day, 0)),
        ("sessions", ctx.campaign.sessions().to_string()),
        (
            "runs per session",
            ctx.campaign.runs_per_session.to_string(),
        ),
    ] {
        head.push_row(vec![k.to_string(), v]);
    }

    let mut health = Table::new(
        "T6-outliers",
        "Outlier health sweep (MAD z > 3.5), per benchmark",
        &[
            "benchmark",
            "sets",
            "measurements",
            "outlier fraction",
            "worst set",
        ],
    );
    let reports = sweep.finish();
    for r in &reports {
        health.push_row(vec![
            r.benchmark.label().to_string(),
            r.sets.to_string(),
            r.measurements.to_string(),
            pct(r.fraction()),
            pct(r.worst_set_fraction),
        ]);
    }
    Ok(vec![Artifact::Table(head), Artifact::Table(health)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn overview_matches_store() {
        let ctx = Context::new(Scale::Quick, 121);
        let artifacts = t6_dataset_overview(&ctx).unwrap();
        assert_eq!(artifacts.len(), 2);
        match &artifacts[0] {
            Artifact::Table(t) => {
                let get = |name: &str| -> String {
                    t.rows.iter().find(|r| r[0] == name).unwrap()[1].clone()
                };
                assert_eq!(get("measurements"), ctx.records_len().to_string());
                assert_eq!(get("machines"), "30");
                assert_eq!(get("benchmarks"), "11");
            }
            _ => panic!("expected table"),
        }
        match &artifacts[1] {
            Artifact::Table(t) => assert_eq!(t.rows.len(), 11),
            _ => panic!("expected table"),
        }
    }
}
