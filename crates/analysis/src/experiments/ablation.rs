//! T5: CONFIRM configuration ablation.
//!
//! DESIGN.md §6 calls out the design choices CONFIRM exposes: the error
//! criterion, the subset CI method, and the growth schedule. This table
//! runs all of them on the same pool so their effect on the answer (and
//! its cost) is visible side by side.

/// Cache code-version tag for T5: bump on any edit that could
/// change `t5_confirm_ablation`'s output, so stale cached artifacts self-invalidate.
pub const T5_CONFIRM_ABLATION_VERSION: u32 = 1;
use confirm::{estimate, CiMethod, ConfirmConfig, ErrorCriterion, Growth};
use workloads::BenchmarkId;

use crate::artifact::{Artifact, Table};
use crate::context::Context;
use crate::experiments::confirm_study::machine_pool;
use crate::registry::ExperimentError;

/// One ablation row: a configuration label and its outcome.
struct AblationRow {
    label: String,
    requirement: String,
    sizes_tried: usize,
}

fn run_variant(pool: &[f64], label: &str, config: &ConfirmConfig) -> AblationRow {
    let result = estimate(pool, config).expect("valid pool");
    AblationRow {
        label: label.to_string(),
        requirement: result.requirement.display(),
        sizes_tried: result.curve.len(),
    }
}

/// T5: the ablation grid on one skewed disk pool.
pub fn t5_confirm_ablation(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let machine = ctx.cluster.machines_of_type("c220g1")[0].id;
    let pool = machine_pool(ctx, machine, BenchmarkId::DiskSeqRead, 120);
    let base = ctx.confirm.with_target_rel_error(0.02).with_rounds(100);
    let variants: Vec<(&str, ConfirmConfig)> = vec![
        ("baseline (half-width, order-stat, linear+1)", base),
        (
            "worst-bound criterion",
            base.with_criterion(ErrorCriterion::WorstBound),
        ),
        (
            "bootstrap CIs (200 resamples)",
            base.with_ci_method(CiMethod::Bootstrap { resamples: 200 }),
        ),
        ("growth linear+5", base.with_growth(Growth::Linear(5))),
        (
            "growth geometric x1.3",
            base.with_growth(Growth::Geometric(1.3)),
        ),
        ("c = 50 rounds", base.with_rounds(50)),
        ("confidence 99%", base.with_confidence(0.99)),
    ];
    let mut t = Table::new(
        "T5",
        "CONFIRM ablation on one HDD disk-seq-read pool (n = 120, +/-2%)",
        &["configuration", "requirement", "sizes tried"],
    );
    for (label, config) in variants {
        let row = run_variant(&pool, label, &config);
        t.push_row(vec![
            row.label,
            row.requirement,
            row.sizes_tried.to_string(),
        ]);
    }
    Ok(vec![Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    fn parse(s: &str) -> usize {
        s.trim_start_matches('>').parse().unwrap()
    }

    #[test]
    fn ablation_rows_are_consistent() {
        let ctx = Context::new(Scale::Quick, 111);
        let artifacts = t5_confirm_ablation(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => {
                assert_eq!(t.rows.len(), 7);
                let get = |label_prefix: &str| -> usize {
                    parse(
                        &t.rows
                            .iter()
                            .find(|r| r[0].starts_with(label_prefix))
                            .unwrap()[1],
                    )
                };
                let baseline = get("baseline");
                // Worst-bound is never looser than half-width.
                assert!(get("worst-bound") >= baseline);
                // 99% confidence is never cheaper than 95%.
                assert!(get("confidence 99%") >= baseline);
                // Geometric growth only overshoots upward.
                assert!(get("growth geometric") >= baseline);
                // Bootstrap lands within a small factor of order-stat.
                let boot = get("bootstrap");
                let ratio = (boot.max(baseline) as f64) / (boot.min(baseline) as f64);
                assert!(ratio < 4.0, "bootstrap {boot} vs baseline {baseline}");
            }
            _ => panic!("expected table"),
        }
    }

    #[test]
    fn geometric_growth_tries_fewer_sizes() {
        let ctx = Context::new(Scale::Quick, 112);
        let artifacts = t5_confirm_ablation(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => {
                let sizes = |label_prefix: &str| -> usize {
                    t.rows
                        .iter()
                        .find(|r| r[0].starts_with(label_prefix))
                        .unwrap()[2]
                        .parse()
                        .unwrap()
                };
                assert!(sizes("growth geometric") <= sizes("baseline"));
                assert!(sizes("growth linear+5") <= sizes("baseline"));
            }
            _ => panic!("expected table"),
        }
    }
}
