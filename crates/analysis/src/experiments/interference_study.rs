//! F15: multi-tenant interference.
//!
//! The same machines, the same benchmarks — but with a noisy neighbor.
//! Contention widens distributions asymmetrically, fails more normality
//! tests, and inflates the repetition counts CONFIRM reports. This is
//! the experiment an experimenter should run before trusting numbers
//! from a shared testbed.

/// Cache code-version tag for F15: bump on any edit that could
/// change `f15_interference`'s output, so stale cached artifacts self-invalidate.
pub const F15_INTERFERENCE_VERSION: u32 = 1;
use confirm::estimate;
use testbed::{catalog, Cluster, InterferenceModel, Timeline};
use varstats::descriptive::Moments;
use varstats::normality::shapiro_wilk;
use workloads::{sample, BenchmarkId};

use crate::artifact::{pct, Artifact, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// Outcome of the quiet-vs-contended comparison for one benchmark.
#[derive(Debug, Clone)]
pub struct InterferenceOutcome {
    /// The benchmark.
    pub benchmark: BenchmarkId,
    /// Run-to-run CoV on the quiet cluster.
    pub quiet_cov: f64,
    /// Run-to-run CoV under contention.
    pub contended_cov: f64,
    /// CONFIRM requirement (ordinal) on the quiet cluster.
    pub quiet_requirement: String,
    /// CONFIRM requirement under contention.
    pub contended_requirement: String,
    /// Shapiro–Wilk pass (quiet / contended).
    pub normality: (bool, bool),
}

/// Runs the comparison on a fresh pair of clusters sharing the seed.
pub fn compare_interference(ctx: &Context, benches: &[BenchmarkId]) -> Vec<InterferenceOutcome> {
    let quiet = Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), ctx.seed);
    let noisy = Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), ctx.seed)
        .with_interference(InterferenceModel::noisy_neighbor());
    let machine = quiet.machines()[0].id;
    let pool_size = 100usize;
    benches
        .iter()
        .map(|&bench| {
            let q: Vec<f64> = (0..pool_size as u64)
                .map(|n| sample(&quiet, machine, bench, 0.0, n).expect("machine is provisioned"))
                .collect();
            let c: Vec<f64> = (0..pool_size as u64)
                .map(|n| sample(&noisy, machine, bench, 0.0, n).expect("machine is provisioned"))
                .collect();
            let cov = |v: &[f64]| v.iter().copied().collect::<Moments>().cov().unwrap_or(0.0);
            let config = ctx
                .confirm
                .with_target_rel_error(0.02)
                .with_growth(confirm::Growth::Geometric(1.3));
            InterferenceOutcome {
                benchmark: bench,
                quiet_cov: cov(&q),
                contended_cov: cov(&c),
                quiet_requirement: estimate(&q, &config)
                    .expect("valid pool")
                    .requirement
                    .display(),
                contended_requirement: estimate(&c, &config)
                    .expect("valid pool")
                    .requirement
                    .display(),
                normality: (
                    shapiro_wilk(&q).map(|r| r.is_normal(0.05)).unwrap_or(false),
                    shapiro_wilk(&c).map(|r| r.is_normal(0.05)).unwrap_or(false),
                ),
            }
        })
        .collect()
}

/// F15: the quiet-vs-contended table.
pub fn f15_interference(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let benches = [
        BenchmarkId::MemTriad,
        BenchmarkId::DiskSeqRead,
        BenchmarkId::NetLatency,
        BenchmarkId::NetBandwidth,
    ];
    let mut t = Table::new(
        "F15",
        "Noisy-neighbor interference: CoV, CONFIRM (+/-2%), Shapiro-Wilk, quiet vs contended",
        &[
            "benchmark",
            "quiet CoV",
            "contended CoV",
            "quiet reps",
            "contended reps",
            "quiet normal",
            "contended normal",
        ],
    );
    for o in compare_interference(ctx, &benches) {
        t.push_row(vec![
            o.benchmark.label().to_string(),
            pct(o.quiet_cov),
            pct(o.contended_cov),
            o.quiet_requirement,
            o.contended_requirement,
            o.normality.0.to_string(),
            o.normality.1.to_string(),
        ]);
    }
    Ok(vec![Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn contention_raises_cov_everywhere() {
        let ctx = Context::new(Scale::Quick, 98);
        let outcomes =
            compare_interference(&ctx, &[BenchmarkId::MemTriad, BenchmarkId::NetBandwidth]);
        for o in &outcomes {
            assert!(
                o.contended_cov > o.quiet_cov,
                "{}: quiet {} vs contended {}",
                o.benchmark,
                o.quiet_cov,
                o.contended_cov
            );
        }
    }

    #[test]
    fn contention_inflates_repetition_requirements() {
        let ctx = Context::new(Scale::Quick, 99);
        let outcomes = compare_interference(&ctx, &[BenchmarkId::MemTriad]);
        let parse = |s: &str| -> usize { s.trim_start_matches('>').parse().unwrap() };
        let o = &outcomes[0];
        assert!(
            parse(&o.contended_requirement) >= parse(&o.quiet_requirement),
            "quiet {} vs contended {}",
            o.quiet_requirement,
            o.contended_requirement
        );
    }

    #[test]
    fn stable_subsystem_loses_normality_under_contention() {
        // Memory bandwidth is near-normal when quiet (rare small outliers
        // aside); the contention mixture must break normality decisively.
        // Compare Shapiro-Wilk p-values directly to stay robust to the
        // occasional quiet-pool outlier.
        use testbed::{catalog, Cluster, InterferenceModel, Timeline};
        use varstats::normality::shapiro_wilk;
        use workloads::sample;

        let ctx = Context::new(Scale::Quick, 100);
        let quiet = Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), ctx.seed);
        let noisy = Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), ctx.seed)
            .with_interference(InterferenceModel::noisy_neighbor());
        let machine = quiet.machines()[0].id;
        let q: Vec<f64> = (0..100u64)
            .map(|n| sample(&quiet, machine, BenchmarkId::MemTriad, 0.0, n).unwrap())
            .collect();
        let c: Vec<f64> = (0..100u64)
            .map(|n| sample(&noisy, machine, BenchmarkId::MemTriad, 0.0, n).unwrap())
            .collect();
        let pq = shapiro_wilk(&q).unwrap().p_value;
        let pc = shapiro_wilk(&c).unwrap().p_value;
        assert!(pc < 1e-4, "contended mem-triad should fail hard, p = {pc}");
        assert!(pq > pc, "quiet p {pq} should exceed contended p {pc}");
    }

    #[test]
    fn f15_artifact_shape() {
        let ctx = Context::new(Scale::Quick, 101);
        let artifacts = f15_interference(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => assert_eq!(t.rows.len(), 4),
            _ => panic!("expected table"),
        }
    }
}
