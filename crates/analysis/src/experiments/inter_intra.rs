//! F12: inter- vs intra-machine variability decomposition.
//!
//! For each (type, benchmark) the total variance across all samples is
//! split into the within-machine component (mean of per-machine
//! variances) and the between-machine component (variance of per-machine
//! means). The paper's finding: machine identity explains a substantial
//! share — nominally identical machines differ persistently, by up to
//! ~10% end to end.

/// Cache code-version tag for F12: bump on any edit that could
/// change `f12_inter_intra`'s output, so stale cached artifacts self-invalidate.
pub const F12_INTER_INTRA_VERSION: u32 = 1;
use varstats::descriptive::Moments;
use workloads::BenchmarkId;

use crate::artifact::{pct, Artifact, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// Variance decomposition of one (type, benchmark) cell.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Machine type.
    pub type_name: String,
    /// Benchmark.
    pub benchmark: BenchmarkId,
    /// Number of machines.
    pub machines: usize,
    /// Fraction of total variance explained by machine identity.
    pub between_fraction: f64,
    /// Relative spread of per-machine medians `(max - min) / max`.
    pub median_spread: f64,
}

/// Decomposes one (type, benchmark).
///
/// # Errors
///
/// Fails only if a streaming context cannot read a journal shard.
pub fn decompose(
    ctx: &Context,
    type_name: &str,
    bench: BenchmarkId,
) -> Result<Option<Decomposition>, ExperimentError> {
    // One shard pass over the type's machines, ascending id — the same
    // per-machine vectors the grouped store walk yields.
    let mut groups: Vec<Vec<f64>> = Vec::new();
    ctx.for_each_shard(|shard| {
        if shard.type_name != type_name {
            return;
        }
        let values = shard.values(bench);
        if !values.is_empty() {
            groups.push(values);
        }
    })?;
    if groups.len() < 2 {
        return Ok(None);
    }
    let mut within = 0.0;
    let mut means = Vec::new();
    let mut medians = Vec::new();
    let mut total_moments = Moments::new();
    for values in &groups {
        let m: Moments = values.iter().copied().collect();
        within += m.population_variance();
        means.push(m.mean());
        medians.push(varstats::quantile::median(values).expect("non-empty"));
        for &v in values {
            total_moments.update(v);
        }
    }
    within /= groups.len() as f64;
    let between: Moments = means.iter().copied().collect();
    let between_var = between.population_variance();
    let total = within + between_var;
    let max = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = medians.iter().cloned().fold(f64::INFINITY, f64::min);
    Ok(Some(Decomposition {
        type_name: type_name.to_string(),
        benchmark: bench,
        machines: groups.len(),
        between_fraction: if total > 0.0 {
            between_var / total
        } else {
            0.0
        },
        median_spread: if max > 0.0 { (max - min) / max } else { 0.0 },
    }))
}

/// F12: the decomposition table for memory and disk benchmarks.
pub fn f12_inter_intra(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let mut t = Table::new(
        "F12",
        "Inter- vs intra-machine variability (between-machine variance share)",
        &[
            "type",
            "benchmark",
            "machines",
            "between-machine share",
            "median spread",
        ],
    );
    for bench in [BenchmarkId::MemTriad, BenchmarkId::DiskSeqRead] {
        for mtype in ctx.cluster.types() {
            if let Some(d) = decompose(ctx, &mtype.name, bench)? {
                t.push_row(vec![
                    d.type_name,
                    d.benchmark.label().to_string(),
                    d.machines.to_string(),
                    pct(d.between_fraction),
                    pct(d.median_spread),
                ]);
            }
        }
    }
    Ok(vec![Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn memory_lottery_dominates_within_machine_noise() {
        // Memory bandwidth: per-run noise is ~0.4% but the lottery is
        // several percent, so machine identity should explain most of
        // the variance for at least some types.
        let ctx = Context::new(Scale::Quick, 81);
        let fractions: Vec<f64> = ctx
            .cluster
            .types()
            .iter()
            .filter_map(|t| decompose(&ctx, &t.name, BenchmarkId::MemTriad).unwrap())
            .map(|d| d.between_fraction)
            .collect();
        assert!(!fractions.is_empty());
        let max = fractions.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.5, "lottery share should dominate somewhere: {max}");
    }

    #[test]
    fn disk_noise_reduces_the_between_share() {
        // Disk run noise is large, so the between-machine share for disk
        // should typically sit below memory's.
        let ctx = Context::new(Scale::Quick, 82);
        let avg = |bench: BenchmarkId| -> f64 {
            let fr: Vec<f64> = ctx
                .cluster
                .types()
                .iter()
                .filter_map(|t| decompose(&ctx, &t.name, bench).unwrap())
                .map(|d| d.between_fraction)
                .collect();
            fr.iter().sum::<f64>() / fr.len() as f64
        };
        assert!(avg(BenchmarkId::MemTriad) > avg(BenchmarkId::DiskSeqRead));
    }

    #[test]
    fn median_spread_reaches_paper_magnitude() {
        // "Up to ~10%" — the worst type's memory spread should be at
        // least a few percent.
        let ctx = Context::new(Scale::Quick, 83);
        let max_spread = ctx
            .cluster
            .types()
            .iter()
            .filter_map(|t| decompose(&ctx, &t.name, BenchmarkId::MemTriad).unwrap())
            .map(|d| d.median_spread)
            .fold(0.0, f64::max);
        assert!(
            (0.02..0.15).contains(&max_spread),
            "max spread {max_spread}"
        );
    }

    #[test]
    fn single_machine_type_is_skipped() {
        let ctx = Context::new(Scale::Quick, 84);
        assert!(decompose(&ctx, "no-such-type", BenchmarkId::MemTriad)
            .unwrap()
            .is_none());
    }

    #[test]
    fn f12_table_is_populated() {
        let ctx = Context::new(Scale::Quick, 85);
        let artifacts = f12_inter_intra(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => {
                assert_eq!(t.rows.len(), 2 * ctx.cluster.types().len());
            }
            _ => panic!("expected table"),
        }
    }
}
