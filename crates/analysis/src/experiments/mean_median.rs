//! F7: mean vs median robustness under contamination.
//!
//! The paper argues for median-based, non-parametric reporting. This
//! experiment makes the argument quantitative: a clean normal population
//! is contaminated with an increasing fraction of slow outlier runs, and
//! the bias of the mean (with its t-interval) is compared to the bias of
//! the median (with its order-statistic interval).

/// Cache code-version tag for F7: bump on any edit that could
/// change `f7_mean_vs_median`'s output, so stale cached artifacts self-invalidate.
pub const F7_MEAN_VS_MEDIAN_VERSION: u32 = 1;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use varstats::ci::nonparametric::median_ci_exact;
use varstats::ci::parametric::mean_ci_t;
use varstats::quantile::median;

use crate::artifact::{fmt, pct, Artifact, SeriesSet, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// One contamination level's outcome.
#[derive(Debug, Clone, Copy)]
pub struct ContaminationPoint {
    /// Fraction of contaminated samples.
    pub contamination: f64,
    /// Relative bias of the mean estimate vs the clean truth.
    pub mean_bias: f64,
    /// Relative bias of the median estimate.
    pub median_bias: f64,
    /// Mean CI relative half width.
    pub mean_ci_halfwidth: f64,
    /// Median CI relative half width.
    pub median_ci_halfwidth: f64,
}

/// Runs the sweep: `trials` datasets of `n` samples at each contamination
/// level; outliers run `outlier_factor` times slower.
pub fn contamination_sweep(
    seed: u64,
    n: usize,
    trials: usize,
    outlier_factor: f64,
) -> Vec<ContaminationPoint> {
    let truth = 100.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2];
    levels
        .iter()
        .map(|&contamination| {
            let mut mean_bias = 0.0;
            let mut median_bias = 0.0;
            let mut mean_hw = 0.0;
            let mut median_hw = 0.0;
            for _ in 0..trials {
                let data: Vec<f64> = (0..n)
                    .map(|_| {
                        // Box-Muller normal around the truth.
                        let u1: f64 = rng.random::<f64>().max(1e-12);
                        let u2: f64 = rng.random::<f64>();
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        let base = truth + z;
                        if rng.random::<f64>() < contamination {
                            base * outlier_factor
                        } else {
                            base
                        }
                    })
                    .collect();
                let m_ci = mean_ci_t(&data, 0.95).expect("n >= 2");
                let med_ci = median_ci_exact(&data, 0.95).expect("n >= 3");
                mean_bias += (m_ci.estimate - truth) / truth;
                median_bias += (median(&data).expect("trial pool is non-empty") - truth) / truth;
                mean_hw += m_ci.relative_half_width();
                median_hw += med_ci.ci.relative_half_width();
            }
            let t = trials as f64;
            ContaminationPoint {
                contamination,
                mean_bias: mean_bias / t,
                median_bias: median_bias / t,
                mean_ci_halfwidth: mean_hw / t,
                median_ci_halfwidth: median_hw / t,
            }
        })
        .collect()
}

/// F7 artifacts: bias curves and the summary table.
pub fn f7_mean_vs_median(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let points = contamination_sweep(ctx.seed.wrapping_add(7), 50, 60, 3.0);
    let mut fig = SeriesSet::new(
        "F7",
        "Estimator bias under contamination (outliers 3x slower, n = 50)",
        "contamination fraction",
        "relative bias of estimate",
    );
    fig.push_series(
        "mean",
        points
            .iter()
            .map(|p| (p.contamination, p.mean_bias))
            .collect(),
    );
    fig.push_series(
        "median",
        points
            .iter()
            .map(|p| (p.contamination, p.median_bias))
            .collect(),
    );
    let mut t = Table::new(
        "F7-summary",
        "Bias and CI half-width by contamination level",
        &[
            "contamination",
            "mean bias",
            "median bias",
            "mean CI halfwidth",
            "median CI halfwidth",
        ],
    );
    for p in &points {
        t.push_row(vec![
            pct(p.contamination),
            fmt(p.mean_bias, 5),
            fmt(p.median_bias, 5),
            fmt(p.mean_ci_halfwidth, 5),
            fmt(p.median_ci_halfwidth, 5),
        ]);
    }
    Ok(vec![Artifact::Figure(fig), Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn mean_bias_grows_median_stays() {
        let points = contamination_sweep(1, 50, 40, 3.0);
        let clean = &points[0];
        let dirty = points.last().unwrap();
        // 20% contamination at 3x shifts the mean by ~40%; the median
        // barely moves.
        assert!(dirty.mean_bias > 0.2, "mean bias {}", dirty.mean_bias);
        assert!(
            dirty.median_bias.abs() < 0.05,
            "median bias {}",
            dirty.median_bias
        );
        assert!(clean.mean_bias.abs() < 0.01);
        // Contamination also blows up the mean's CI width.
        assert!(dirty.mean_ci_halfwidth > 3.0 * clean.mean_ci_halfwidth);
    }

    #[test]
    fn bias_is_monotone_in_contamination() {
        let points = contamination_sweep(2, 50, 40, 3.0);
        for w in points.windows(2) {
            assert!(w[1].mean_bias >= w[0].mean_bias - 0.01);
        }
    }

    #[test]
    fn f7_artifacts_shape() {
        let ctx = Context::new(Scale::Quick, 31);
        let artifacts = f7_mean_vs_median(&ctx).unwrap();
        assert_eq!(artifacts.len(), 2);
        match &artifacts[0] {
            Artifact::Figure(f) => {
                assert_eq!(f.series.len(), 2);
                assert_eq!(f.series[0].points.len(), 6);
            }
            _ => panic!("expected figure"),
        }
    }
}
