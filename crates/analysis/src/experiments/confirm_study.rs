//! F9 / F10 / T4: the CONFIRM experiments — the paper's headline.
//!
//! * **F9** — for every machine, CONFIRM estimates the repetitions needed
//!   for a ±1% 95% CI of the median of each representative benchmark;
//!   the CDF across machines is plotted per benchmark. Disk machines need
//!   the most; many exhaust the pool (reported as `> n`).
//! * **F10** — tail quantiles: repetitions needed for the median vs p95
//!   vs p99 (at a looser ±5% target). Tails are dramatically costlier.
//! * **T4** — the summary table: median and 95th-percentile machine
//!   requirement per benchmark, at 1% and 5% targets.

/// Cache code-version tag for F9: bump on any edit that could
/// change `f9_confirm_cdf`'s output, so stale cached artifacts self-invalidate.
pub const F9_CONFIRM_CDF_VERSION: u32 = 1;

/// Cache code-version tag for F10: bump on any edit that could
/// change `f10_confirm_tails`'s output, so stale cached artifacts self-invalidate.
pub const F10_CONFIRM_TAILS_VERSION: u32 = 1;

/// Cache code-version tag for T4: bump on any edit that could
/// change `t4_repetition_summary`'s output, so stale cached artifacts self-invalidate.
pub const T4_REPETITION_SUMMARY_VERSION: u32 = 1;
use confirm::{estimate, ConfirmConfig, Requirement, Statistic};
use varstats::quantile::{quantile, QuantileMethod};
use workloads::{sample, BenchmarkId};

use crate::artifact::{Artifact, SeriesSet, Table};
use crate::context::Context;
use crate::registry::ExperimentError;

/// The benchmarks the repetition studies track.
pub const REPRESENTATIVES: [BenchmarkId; 4] = [
    BenchmarkId::MemTriad,
    BenchmarkId::DiskSeqRead,
    BenchmarkId::DiskRandRead,
    BenchmarkId::NetBandwidth,
];

/// Builds a fresh day-0 measurement pool for one machine and benchmark
/// (run-to-run variability only: no drift, no timeline events).
pub fn machine_pool(
    ctx: &Context,
    machine: testbed::MachineId,
    bench: BenchmarkId,
    size: usize,
) -> Vec<f64> {
    (0..size as u64)
        .map(|nonce| sample(&ctx.cluster, machine, bench, 0.0, nonce).expect("machine exists"))
        .collect()
}

/// The machines the repetition studies cover (capped per type by scale).
pub fn study_machines(ctx: &Context) -> Vec<testbed::MachineId> {
    let cap = ctx.scale.machines_per_type();
    let mut out = Vec::new();
    for t in ctx.cluster.types() {
        out.extend(
            ctx.cluster
                .machines_of_type(&t.name)
                .into_iter()
                .take(cap)
                .map(|m| m.id),
        );
    }
    out
}

/// Runs CONFIRM per machine for one benchmark, returning the ordinal
/// requirements (pool+1 when exhausted).
pub fn requirements_per_machine(
    ctx: &Context,
    bench: BenchmarkId,
    config: &ConfirmConfig,
) -> Vec<Requirement> {
    let pool_size = ctx.scale.pool_size();
    study_machines(ctx)
        .into_iter()
        .map(|machine| {
            let pool = machine_pool(ctx, machine, bench, pool_size);
            estimate(&pool, config).expect("pool is valid").requirement
        })
        .collect()
}

/// Turns a set of requirements into CDF points over repetition counts.
pub fn requirement_cdf(requirements: &[Requirement]) -> Vec<(f64, f64)> {
    let mut ordinals: Vec<usize> = requirements.iter().map(|r| r.as_ordinal()).collect();
    ordinals.sort_unstable();
    let n = ordinals.len() as f64;
    ordinals
        .iter()
        .enumerate()
        .map(|(i, &v)| (v as f64, (i + 1) as f64 / n))
        .collect()
}

/// F9: CDFs of required repetitions (±1% @ 95%) across machines.
pub fn f9_confirm_cdf(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let config = ctx.confirm.with_growth(confirm::Growth::Geometric(1.25));
    let mut fig = SeriesSet::new(
        "F9",
        "CONFIRM: CDF across machines of repetitions for a +/-1% 95% CI of the median",
        "repetitions required",
        "fraction of machines",
    );
    let mut t = Table::new(
        "F9-summary",
        "Machines exhausting the pool (requirement > pool size)",
        &["benchmark", "machines", "exhausted", "pool size"],
    );
    for bench in REPRESENTATIVES {
        let reqs = requirements_per_machine(ctx, bench, &config);
        let exhausted = reqs
            .iter()
            .filter(|r| matches!(r, Requirement::Exhausted { .. }))
            .count();
        t.push_row(vec![
            bench.label().to_string(),
            reqs.len().to_string(),
            exhausted.to_string(),
            ctx.scale.pool_size().to_string(),
        ]);
        fig.push_series(bench.label(), requirement_cdf(&reqs));
    }
    Ok(vec![Artifact::Figure(fig), Artifact::Table(t)])
}

/// F10: repetitions for median vs p95 vs p99 (±5% target).
pub fn f10_confirm_tails(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    // Tail quantiles need big pools: generate one large pool per
    // machine on a heavy-tailed benchmark (network latency).
    let bench = BenchmarkId::NetLatency;
    let pool_size = 800;
    let machines: Vec<testbed::MachineId> = study_machines(ctx).into_iter().take(8).collect();
    let statistics = [
        Statistic::Median,
        Statistic::Quantile(0.95),
        Statistic::Quantile(0.99),
    ];
    let mut fig = SeriesSet::new(
        "F10",
        "CONFIRM on tail quantiles (net-latency, +/-5% 95% CI): CDF across machines",
        "repetitions required",
        "fraction of machines",
    );
    let mut t = Table::new(
        "F10-summary",
        "Median machine requirement per statistic",
        &["statistic", "median requirement", "exhausted"],
    );
    for stat in statistics {
        let config = ctx
            .confirm
            .with_statistic(stat)
            .with_target_rel_error(0.05)
            .with_growth(confirm::Growth::Geometric(1.3));
        let reqs: Vec<Requirement> = machines
            .iter()
            .map(|&m| {
                let pool = machine_pool(ctx, m, bench, pool_size);
                estimate(&pool, &config).expect("pool is valid").requirement
            })
            .collect();
        let ordinals: Vec<f64> = reqs.iter().map(|r| r.as_ordinal() as f64).collect();
        let med = quantile(&ordinals, 0.5, QuantileMethod::Linear)
            .map_err(|e| ExperimentError::new(format!("requirement quantile: {e}")))?;
        let exhausted = reqs
            .iter()
            .filter(|r| matches!(r, Requirement::Exhausted { .. }))
            .count();
        let med_display = if med > pool_size as f64 {
            format!(">{pool_size}")
        } else {
            format!("{med:.0}")
        };
        t.push_row(vec![stat.label(), med_display, exhausted.to_string()]);
        fig.push_series(&stat.label(), requirement_cdf(&reqs));
    }
    Ok(vec![Artifact::Figure(fig), Artifact::Table(t)])
}

/// T4: summary of requirements per benchmark at 1% and 5% targets.
pub fn t4_repetition_summary(ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
    let mut t = Table::new(
        "T4",
        "Repetitions for a 95% median CI (median / p95 machine; `>n` = pool exhausted)",
        &[
            "benchmark",
            "target",
            "median machine",
            "p95 machine",
            "exhausted",
        ],
    );
    for bench in REPRESENTATIVES {
        for &target in &[0.01f64, 0.05] {
            let config = ctx
                .confirm
                .with_target_rel_error(target)
                .with_growth(confirm::Growth::Geometric(1.25));
            let reqs = requirements_per_machine(ctx, bench, &config);
            let ordinals: Vec<f64> = reqs.iter().map(|r| r.as_ordinal() as f64).collect();
            let med = quantile(&ordinals, 0.5, QuantileMethod::Linear)
                .map_err(|e| ExperimentError::new(format!("requirement quantile: {e}")))?;
            let p95 = quantile(&ordinals, 0.95, QuantileMethod::Linear)
                .map_err(|e| ExperimentError::new(format!("requirement quantile: {e}")))?;
            let pool = ctx.scale.pool_size() as f64;
            let disp = |v: f64| {
                if v > pool {
                    format!(">{}", pool as usize)
                } else {
                    format!("{v:.0}")
                }
            };
            let exhausted = reqs
                .iter()
                .filter(|r| matches!(r, Requirement::Exhausted { .. }))
                .count();
            t.push_row(vec![
                bench.label().to_string(),
                format!("{:.0}%", target * 100.0),
                disp(med),
                disp(p95),
                format!("{exhausted}/{}", reqs.len()),
            ]);
        }
    }
    Ok(vec![Artifact::Table(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn disk_needs_more_repetitions_than_memory_and_network() {
        let ctx = Context::new(Scale::Quick, 51);
        let config = ctx.confirm.with_growth(confirm::Growth::Geometric(1.3));
        let med_req = |b| {
            let reqs = requirements_per_machine(&ctx, b, &config);
            let ords: Vec<f64> = reqs.iter().map(|r| r.as_ordinal() as f64).collect();
            quantile(&ords, 0.5, QuantileMethod::Linear).unwrap()
        };
        let disk = med_req(BenchmarkId::DiskRandRead);
        let mem = med_req(BenchmarkId::MemTriad);
        let net = med_req(BenchmarkId::NetBandwidth);
        assert!(disk > mem, "disk {disk} vs mem {mem}");
        assert!(disk > net, "disk {disk} vs net {net}");
        // Random disk I/O at 1% should exhaust the 60-run quick pool on
        // most machines.
        assert!(disk > 55.0, "disk requirement {disk}");
        // Network throughput is so stable the minimum subset suffices.
        assert!(net <= 15.0, "net requirement {net}");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let ctx = Context::new(Scale::Quick, 52);
        let config = ctx.confirm.with_growth(confirm::Growth::Geometric(1.4));
        let reqs = requirements_per_machine(&ctx, BenchmarkId::MemTriad, &config);
        let cdf = requirement_cdf(&reqs);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn f10_tails_cost_more() {
        let ctx = Context::new(Scale::Quick, 53);
        let artifacts = f10_confirm_tails(&ctx).unwrap();
        match &artifacts[1] {
            Artifact::Table(t) => {
                let parse =
                    |row: usize| -> f64 { t.rows[row][1].trim_start_matches('>').parse().unwrap() };
                let median_req = parse(0);
                let p99_req = parse(2);
                assert!(
                    p99_req > median_req,
                    "p99 {p99_req} should exceed median {median_req}"
                );
                assert!(p99_req >= 299.0, "p99 floor is 299, got {p99_req}");
            }
            _ => panic!("expected table"),
        }
    }

    #[test]
    fn t4_looser_target_needs_fewer() {
        let ctx = Context::new(Scale::Quick, 54);
        let artifacts = t4_repetition_summary(&ctx).unwrap();
        match &artifacts[0] {
            Artifact::Table(t) => {
                assert_eq!(t.rows.len(), REPRESENTATIVES.len() * 2);
                // For each benchmark, the 5% row's median requirement is
                // <= the 1% row's.
                for pair in t.rows.chunks(2) {
                    let parse = |s: &str| -> f64 { s.trim_start_matches('>').parse().unwrap() };
                    let strict = parse(&pair[0][2]);
                    let loose = parse(&pair[1][2]);
                    assert!(loose <= strict, "{pair:?}");
                }
            }
            _ => panic!("expected table"),
        }
    }
}
