//! # analysis — the evaluation reproduction pipelines
//!
//! Every table and figure of the paper's evaluation (as reconstructed in
//! DESIGN.md §4) has a pipeline here that regenerates it from the
//! simulated campaign: T1/T2 (setup tables), F1–F12 (figures), T3/T4
//! (comparison and summary tables). The [`registry`] maps ids to
//! pipelines; the `repro` binary drives them from the command line:
//!
//! ```text
//! cargo run -p analysis --bin repro -- list
//! cargo run -p analysis --bin repro -- F9 --scale quick --seed 42
//! cargo run -p analysis --bin repro -- all --out artifacts/
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod context;
pub mod experiments;
pub mod registry;

pub use artifact::{Artifact, Series, SeriesSet, Table};
pub use context::{Context, Scale};
pub use registry::{all, find, Experiment, Kind};
