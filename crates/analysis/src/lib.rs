//! # analysis — the evaluation reproduction pipelines
//!
//! Every table and figure of the paper's evaluation (as reconstructed in
//! DESIGN.md §4) has a pipeline here that regenerates it from the
//! simulated campaign: T1/T2 (setup tables), F1–F12 (figures), T3/T4
//! (comparison and summary tables). The [`registry`] maps ids to
//! [`Experiment`] trait objects (id, kind, title, cost class, fallible
//! `run`); the [`engine`] executes any slice of them across worker
//! threads under a byte-identical determinism contract; the `repro`
//! binary drives both from the command line:
//!
//! ```text
//! cargo run -p serve --bin repro -- list
//! cargo run -p serve --bin repro -- F9 --scale quick --seed 42
//! cargo run -p serve --bin repro -- all --jobs 8 --out artifacts/
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// I/O paths carry typed errors into per-id failure reports; `unwrap()`
// outside tests regresses that contract (DESIGN.md §8).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod artifact;
pub mod cache;
pub mod context;
pub mod engine;
pub mod experiments;
pub mod registry;

pub use artifact::{Artifact, Series, SeriesSet, Table};
pub use cache::{ArtifactCache, CacheKey, CacheStats, CACHE_SCHEMA_VERSION};
pub use context::{Context, DataSource, Scale, ShardView, StreamSource};
pub use engine::{
    run_experiments, run_experiments_cached, run_experiments_opts, run_experiments_with,
    EngineOptions, ExperimentRun, FaultStats,
};
pub use registry::{all, find, Cost, ErrorClass, Experiment, ExperimentError, Kind};
