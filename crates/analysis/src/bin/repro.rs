//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! repro list
//! repro all [--scale quick|paper] [--seed N] [--out DIR]
//! repro F9 T3 ... [--scale ...] [--seed ...] [--out DIR]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::{all, find, Context, Scale};

struct Args {
    ids: Vec<String>,
    scale: Scale,
    seed: u64,
    out: Option<PathBuf>,
    json: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        scale: Scale::Quick,
        seed: 42,
        out: None,
        json: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "list" => args.list = true,
            "all" => args.ids = all().iter().map(|e| e.id.to_string()).collect(),
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = Scale::parse(&v).ok_or(format!("unknown scale `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                args.out = Some(PathBuf::from(v));
            }
            "--json" => args.json = true,
            "--help" | "-h" => {
                return Err(
                    "usage: repro <list|all|ID...> [--scale quick|paper] [--seed N] \
                     [--out DIR] [--json]"
                        .to_string(),
                );
            }
            id => args.ids.push(id.to_string()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        println!("{:<4}  {:<6}  title", "id", "kind");
        for e in all() {
            println!(
                "{:<4}  {:<6}  {}",
                e.id,
                match e.kind {
                    analysis::Kind::Table => "table",
                    analysis::Kind::Figure => "figure",
                },
                e.title
            );
        }
        return ExitCode::SUCCESS;
    }
    if args.ids.is_empty() {
        eprintln!("nothing to do; try `repro list` or `repro all`");
        return ExitCode::FAILURE;
    }
    // Resolve ids before paying for the campaign.
    let mut experiments = Vec::new();
    for id in &args.ids {
        match find(id) {
            Some(e) => experiments.push(e),
            None => {
                eprintln!("unknown experiment id `{id}` (see `repro list`)");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "building campaign context (scale {:?}, seed {}) ...",
        args.scale, args.seed
    );
    let ctx = Context::new(args.scale, args.seed);
    eprintln!(
        "campaign: {} machines, {} records",
        ctx.cluster.machines().len(),
        ctx.store.len()
    );
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    for e in experiments {
        eprintln!("== running {} ({}) ==", e.id, e.title);
        let artifacts = (e.run)(&ctx);
        for artifact in &artifacts {
            println!("{}", artifact.render());
            if let Some(dir) = &args.out {
                let (path, payload) = if args.json {
                    (
                        dir.join(format!("{}.json", artifact.id())),
                        serde_json::to_string_pretty(artifact)
                            .expect("artifacts always serialize"),
                    )
                } else {
                    (dir.join(format!("{}.csv", artifact.id())), artifact.to_csv())
                };
                if let Err(err) = std::fs::write(&path, payload) {
                    eprintln!("cannot write {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", path.display());
            }
        }
    }
    ExitCode::SUCCESS
}
