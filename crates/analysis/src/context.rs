//! Shared experiment context.
//!
//! All experiments slice the same campaign dataset, so the registry
//! builds one [`Context`] (cluster + store + defaults) and hands it to
//! every pipeline. `Scale::Quick` keeps everything CI-sized;
//! `Scale::Paper` provisions the full fleet and a dense session schedule.

use confirm::ConfirmConfig;
use dataset::{CampaignConfig, CampaignError, CollectOptions, CollectReport, Store};
use testbed::{catalog, Cluster, Timeline};

/// How big the campaign backing the experiments is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Small fleet, seconds of compute. The default.
    #[default]
    Quick,
    /// Full fleet and dense schedule — the scale of the published
    /// dataset. Minutes of compute.
    Paper,
}

impl Scale {
    /// Parses `quick` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Lowercase label (`quick` / `paper`) for CLI output and cache keys.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }

    /// The campaign configuration this scale implies.
    pub fn campaign(&self, seed: u64) -> CampaignConfig {
        match self {
            Scale::Quick => CampaignConfig::quick(seed),
            Scale::Paper => CampaignConfig::paper(seed),
        }
    }

    /// How many machines per type the machine-level experiments (CONFIRM
    /// CDFs, normality census) consider.
    pub fn machines_per_type(&self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Paper => 12,
        }
    }

    /// Size of the per-machine measurement pools the repetition
    /// experiments draw.
    pub fn pool_size(&self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Paper => 150,
        }
    }
}

/// Everything an experiment pipeline needs.
#[derive(Debug, Clone)]
pub struct Context {
    /// The scale this context was built at.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// The campaign configuration used.
    pub campaign: CampaignConfig,
    /// The provisioned cluster.
    pub cluster: Cluster,
    /// The collected dataset.
    pub store: Store,
    /// CONFIRM defaults (95%, ±1%, c = 200, s >= 10).
    pub confirm: ConfirmConfig,
}

impl Context {
    /// Runs the campaign and assembles the context. Collection is sharded
    /// across one worker per core; the dataset is byte-identical to a
    /// single-threaded run (see [`dataset::collect_jobs`]).
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self::with_jobs(scale, seed, None)
    }

    /// Like [`Context::new`] with an explicit campaign worker count
    /// (`None` = one per core). The worker count never changes the data,
    /// only the wall-clock time to collect it.
    pub fn with_jobs(scale: Scale, seed: u64, jobs: Option<usize>) -> Self {
        let options = CollectOptions {
            jobs,
            ..CollectOptions::default()
        };
        let (ctx, _) = Self::build(scale, seed, &options)
            .expect("collection without a journal or fault injection cannot fail");
        ctx
    }

    /// The full-featured constructor behind `--resume` and `--chaos`:
    /// collection checkpoints to (and replays from) the journal in
    /// `options`, and the chaos plan injects faults at deterministic
    /// sites (see [`dataset::collect_resumable`]). The resulting store —
    /// and therefore every downstream artifact — is byte-identical to an
    /// uninterrupted fault-free run for any worker count and any
    /// replayed/collected split.
    pub fn build(
        scale: Scale,
        seed: u64,
        options: &CollectOptions<'_>,
    ) -> Result<(Self, CollectReport), CampaignError> {
        let _span = telemetry::span("context.build");
        let campaign = scale.campaign(seed);
        let cluster = Cluster::provision(
            catalog(),
            campaign.scale,
            Timeline::cloudlab_default(),
            campaign.seed,
        );
        let collected = dataset::collect_resumable(&cluster, &campaign, options)?;
        Ok((
            Self {
                scale,
                seed,
                campaign,
                cluster,
                store: collected.store,
                confirm: ConfirmConfig::default().with_seed(seed),
            },
            collected.report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds() {
        let ctx = Context::new(Scale::Quick, 1);
        assert!(!ctx.store.is_empty());
        assert_eq!(ctx.scale, Scale::Quick);
        assert!(ctx.cluster.machines().len() >= 10);
    }

    #[test]
    fn jobs_never_change_the_context_dataset() {
        let a = Context::with_jobs(Scale::Quick, 9, Some(1));
        let b = Context::with_jobs(Scale::Quick, 9, Some(4));
        assert_eq!(a.store, b.store);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn resumable_build_matches_the_plain_one() {
        let dir = std::env::temp_dir().join(format!(
            "context-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let plain = Context::with_jobs(Scale::Quick, 13, Some(2));
        let journal = dataset::ShardJournal::open(&dir, &Scale::Quick.campaign(13)).unwrap();
        let options = CollectOptions {
            jobs: Some(2),
            journal: Some(&journal),
            ..CollectOptions::default()
        };
        let (first, report) = Context::build(Scale::Quick, 13, &options).unwrap();
        assert_eq!(first.store, plain.store);
        assert_eq!(report.replayed, 0);
        let (resumed, report) = Context::build(Scale::Quick, 13, &options).unwrap();
        assert_eq!(resumed.store, plain.store, "replay is byte-identical");
        assert_eq!(report.collected, 0, "completed journal resumes as a no-op");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scales_differ_in_size() {
        assert!(Scale::Paper.machines_per_type() > Scale::Quick.machines_per_type());
        assert!(Scale::Paper.pool_size() > Scale::Quick.pool_size());
        let q = Scale::Quick.campaign(1);
        let p = Scale::Paper.campaign(1);
        assert!(p.scale > q.scale);
    }
}
