//! Shared experiment context.
//!
//! All experiments slice the same campaign dataset, so the registry
//! builds one [`Context`] (cluster + data source + defaults) and hands
//! it to every pipeline. `Scale::Quick` keeps everything CI-sized;
//! `Scale::Paper` provisions the full fleet and a dense session schedule.
//!
//! The context's measurements live behind a [`DataSource`]: either the
//! classic fully materialized [`Store`], or a streaming replay of the
//! shard journal that keeps at most one machine shard resident at a
//! time (DESIGN.md §11). Experiments that walk the dataset do so
//! through [`Context::for_each_shard`], which visits machines in the
//! canonical ascending-id order in *both* modes — the per-machine value
//! vectors are identical, so every downstream artifact is byte-for-byte
//! the same whichever source backs the context.

use confirm::ConfirmConfig;
use dataset::{
    CampaignConfig, CampaignError, CollectOptions, CollectReport, Record, ShardReader, Store,
    StreamStats,
};
use testbed::{catalog, Cluster, MachineId, Timeline};
use workloads::BenchmarkId;

use crate::registry::ExperimentError;

/// How big the campaign backing the experiments is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Small fleet, seconds of compute. The default.
    #[default]
    Quick,
    /// Full fleet and dense schedule — the scale of the published
    /// dataset. Minutes of compute.
    Paper,
}

impl Scale {
    /// Parses `quick` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Lowercase label (`quick` / `paper`) for CLI output and cache keys.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }

    /// The campaign configuration this scale implies.
    pub fn campaign(&self, seed: u64) -> CampaignConfig {
        match self {
            Scale::Quick => CampaignConfig::quick(seed),
            Scale::Paper => CampaignConfig::paper(seed),
        }
    }

    /// How many machines per type the machine-level experiments (CONFIRM
    /// CDFs, normality census) consider.
    pub fn machines_per_type(&self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Paper => 12,
        }
    }

    /// Size of the per-machine measurement pools the repetition
    /// experiments draw.
    pub fn pool_size(&self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Paper => 150,
        }
    }
}

/// Where a context's measurements live.
#[derive(Debug, Clone)]
pub enum DataSource {
    /// The whole campaign materialized in memory — O(fleet) resident.
    Materialized(Store),
    /// A shard-journal replay — one machine shard resident at a time,
    /// O(largest shard) resident (DESIGN.md §11).
    Streaming(StreamSource),
}

/// The streaming side of [`DataSource`]: a [`ShardReader`] over a
/// completed journal, plus the total record count (read once from the
/// shard envelopes, so sizing the manifest never replays data).
#[derive(Debug, Clone)]
pub struct StreamSource {
    reader: ShardReader,
    records: usize,
}

impl StreamSource {
    /// The reader backing this source.
    pub fn reader(&self) -> &ShardReader {
        &self.reader
    }
}

/// One machine's complete sample set, as visited by
/// [`Context::for_each_shard`]. Borrowed from the store in materialized
/// mode and from the one resident shard in streaming mode.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    /// The machine.
    pub machine: MachineId,
    /// The machine's hardware type.
    pub type_name: &'a str,
    records: &'a [Record],
}

impl ShardView<'_> {
    /// Every record of this machine, in collection order.
    pub fn records(&self) -> &[Record] {
        self.records
    }

    /// This machine's values for one benchmark, in collection order —
    /// exactly the vector `store.filter().benchmark(b).group_by_machine()`
    /// yields for this machine.
    pub fn values(&self, benchmark: BenchmarkId) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.benchmark == benchmark)
            .map(|r| r.value)
            .collect()
    }
}

/// Everything an experiment pipeline needs.
#[derive(Debug, Clone)]
pub struct Context {
    /// The scale this context was built at.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// The campaign configuration used.
    pub campaign: CampaignConfig,
    /// The provisioned cluster.
    pub cluster: Cluster,
    /// The collected dataset (materialized or streaming).
    pub data: DataSource,
    /// CONFIRM defaults (95%, ±1%, c = 200, s >= 10).
    pub confirm: ConfirmConfig,
}

impl Context {
    /// Runs the campaign and assembles the context. Collection is sharded
    /// across one worker per core; the dataset is byte-identical to a
    /// single-threaded run (see [`dataset::collect_jobs`]).
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self::with_jobs(scale, seed, None)
    }

    /// Like [`Context::new`] with an explicit campaign worker count
    /// (`None` = one per core). The worker count never changes the data,
    /// only the wall-clock time to collect it.
    pub fn with_jobs(scale: Scale, seed: u64, jobs: Option<usize>) -> Self {
        let options = CollectOptions {
            jobs,
            ..CollectOptions::default()
        };
        let (ctx, _) = Self::build(scale, seed, &options)
            .expect("collection without a journal or fault injection cannot fail");
        ctx
    }

    /// The full-featured constructor behind `--resume` and `--chaos`:
    /// collection checkpoints to (and replays from) the journal in
    /// `options`, and the chaos plan injects faults at deterministic
    /// sites (see [`dataset::collect_resumable`]). The resulting store —
    /// and therefore every downstream artifact — is byte-identical to an
    /// uninterrupted fault-free run for any worker count and any
    /// replayed/collected split.
    pub fn build(
        scale: Scale,
        seed: u64,
        options: &CollectOptions<'_>,
    ) -> Result<(Self, CollectReport), CampaignError> {
        let _span = telemetry::span("context.build");
        let campaign = scale.campaign(seed);
        let cluster = Self::provision(&campaign);
        let collected = dataset::collect_resumable(&cluster, &campaign, options)?;
        Ok((
            Self {
                scale,
                seed,
                campaign,
                cluster,
                data: DataSource::Materialized(collected.store),
                confirm: ConfirmConfig::default().with_seed(seed),
            },
            collected.report,
        ))
    }

    /// The `--stream` constructor: collection goes straight to the
    /// journal in `options` (which must carry one) without ever holding
    /// the fleet's records in memory, and the context reads the data
    /// back one shard at a time. Artifacts are byte-identical to the
    /// materialized path's for any worker count.
    pub fn build_streaming(
        scale: Scale,
        seed: u64,
        options: &CollectOptions<'_>,
    ) -> Result<(Self, CollectReport), CampaignError> {
        let _span = telemetry::span("context.build_streaming");
        let campaign = scale.campaign(seed);
        let cluster = Self::provision(&campaign);
        let report = dataset::collect_to_journal(&cluster, &campaign, options)?;
        let journal = options
            .journal
            .expect("collect_to_journal already required a journal");
        let reader = ShardReader::open(journal.dir(), &campaign).map_err(|e| {
            CampaignError::Journal(dataset::JournalError::Io(std::io::Error::other(
                e.to_string(),
            )))
        })?;
        let records = reader.record_count().map_err(|e| {
            CampaignError::Journal(dataset::JournalError::Io(std::io::Error::other(
                e.to_string(),
            )))
        })? as usize;
        Ok((
            Self {
                scale,
                seed,
                campaign,
                cluster,
                data: DataSource::Streaming(StreamSource { reader, records }),
                confirm: ConfirmConfig::default().with_seed(seed),
            },
            report,
        ))
    }

    /// Provisions the simulated cluster a campaign collects from — the
    /// one canonical provisioning path, shared by the in-process
    /// constructors above and by external collectors (the distributed
    /// supervisor and its worker processes) that must agree on the
    /// machine universe exactly.
    pub fn provision(campaign: &CampaignConfig) -> Cluster {
        Cluster::provision(
            catalog(),
            campaign.scale,
            Timeline::cloudlab_default(),
            campaign.seed,
        )
    }

    /// Whether the context streams from the journal.
    pub fn is_streaming(&self) -> bool {
        matches!(self.data, DataSource::Streaming(_))
    }

    /// The materialized store.
    ///
    /// # Panics
    ///
    /// Panics in streaming mode — callers that genuinely need the whole
    /// store at once cannot run under `--stream`. Every registry
    /// experiment goes through [`Context::for_each_shard`] instead.
    pub fn store(&self) -> &Store {
        match &self.data {
            DataSource::Materialized(store) => store,
            DataSource::Streaming(_) => {
                panic!("the materialized store is not available under --stream")
            }
        }
    }

    /// Total number of measurement records, in either mode. Streaming
    /// contexts answer from the shard envelopes without replaying data.
    pub fn records_len(&self) -> usize {
        match &self.data {
            DataSource::Materialized(store) => store.len(),
            DataSource::Streaming(src) => src.records,
        }
    }

    /// Live streaming gauges (peak live samples, shards resident), or
    /// `None` for a materialized context.
    pub fn stream_stats(&self) -> Option<std::sync::Arc<StreamStats>> {
        match &self.data {
            DataSource::Materialized(_) => None,
            DataSource::Streaming(src) => Some(src.reader.stats()),
        }
    }

    /// Visits every machine's complete sample set in ascending
    /// machine-id order — the one dataset walk experiments use.
    ///
    /// Materialized mode slices the store's contiguous per-machine runs
    /// in place; streaming mode reads one shard at a time from the
    /// journal and drops it before the next (the [`StreamStats`] gauges
    /// record the resulting memory bound). Both visit identical records
    /// in identical order, which is what makes `--stream` artifacts
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// Fails if a journal shard is missing or unreadable mid-stream
    /// (streaming mode only).
    pub fn for_each_shard(&self, mut f: impl FnMut(ShardView<'_>)) -> Result<(), ExperimentError> {
        match &self.data {
            DataSource::Materialized(store) => {
                // Store order is ascending machine id with contiguous
                // per-machine runs, so chunking is the shard structure.
                for run in store.records().chunk_by(|a, b| a.machine == b.machine) {
                    f(ShardView {
                        machine: run[0].machine,
                        type_name: run[0].machine_type.as_str(),
                        records: run,
                    });
                }
                Ok(())
            }
            DataSource::Streaming(src) => {
                for result in src.reader.stream() {
                    let shard = result.map_err(|e| ExperimentError::new(e.to_string()))?;
                    let type_name = self
                        .cluster
                        .machine(shard.machine)
                        .map(|m| m.type_name.as_str())
                        .ok_or_else(|| {
                            ExperimentError::new(format!(
                                "journal shard m{} has no machine in the cluster",
                                shard.machine.0
                            ))
                        })?;
                    f(ShardView {
                        machine: shard.machine,
                        type_name,
                        records: shard.records(),
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::ShardJournal;

    #[test]
    fn quick_context_builds() {
        let ctx = Context::new(Scale::Quick, 1);
        assert!(!ctx.store().is_empty());
        assert!(!ctx.is_streaming());
        assert_eq!(ctx.records_len(), ctx.store().len());
        assert_eq!(ctx.scale, Scale::Quick);
        assert!(ctx.cluster.machines().len() >= 10);
    }

    #[test]
    fn jobs_never_change_the_context_dataset() {
        let a = Context::with_jobs(Scale::Quick, 9, Some(1));
        let b = Context::with_jobs(Scale::Quick, 9, Some(4));
        assert_eq!(a.store(), b.store());
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn resumable_build_matches_the_plain_one() {
        let dir = std::env::temp_dir().join(format!(
            "context-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let plain = Context::with_jobs(Scale::Quick, 13, Some(2));
        let journal = ShardJournal::open(&dir, &Scale::Quick.campaign(13)).unwrap();
        let options = CollectOptions {
            jobs: Some(2),
            journal: Some(&journal),
            ..CollectOptions::default()
        };
        let (first, report) = Context::build(Scale::Quick, 13, &options).unwrap();
        assert_eq!(first.store(), plain.store());
        assert_eq!(report.replayed, 0);
        let (resumed, report) = Context::build(Scale::Quick, 13, &options).unwrap();
        assert_eq!(resumed.store(), plain.store(), "replay is byte-identical");
        assert_eq!(report.collected, 0, "completed journal resumes as a no-op");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_build_visits_the_materialized_shards_exactly() {
        let dir = std::env::temp_dir().join(format!(
            "context-stream-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let plain = Context::with_jobs(Scale::Quick, 17, Some(2));
        let journal = ShardJournal::open(&dir, &Scale::Quick.campaign(17)).unwrap();
        let options = CollectOptions {
            jobs: Some(2),
            journal: Some(&journal),
            ..CollectOptions::default()
        };
        let (streaming, _) = Context::build_streaming(Scale::Quick, 17, &options).unwrap();
        assert!(streaming.is_streaming());
        assert_eq!(streaming.records_len(), plain.records_len());

        // Both walks must yield identical shards in identical order.
        let mut materialized_shards = Vec::new();
        plain
            .for_each_shard(|s| {
                materialized_shards.push((s.machine, s.type_name.to_string(), s.records().to_vec()))
            })
            .unwrap();
        let mut streamed_shards = Vec::new();
        streaming
            .for_each_shard(|s| {
                streamed_shards.push((s.machine, s.type_name.to_string(), s.records().to_vec()))
            })
            .unwrap();
        assert_eq!(streamed_shards, materialized_shards);

        let stats = streaming.stream_stats().unwrap();
        assert_eq!(stats.peak_shards_resident(), 1, "one shard at a time");
        assert!(stats.shards_streamed() >= 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "not available under --stream")]
    fn streaming_context_has_no_store() {
        let dir = std::env::temp_dir().join(format!(
            "context-nostore-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = ShardJournal::open(&dir, &Scale::Quick.campaign(19)).unwrap();
        let options = CollectOptions {
            jobs: Some(1),
            journal: Some(&journal),
            ..CollectOptions::default()
        };
        let (ctx, _) = Context::build_streaming(Scale::Quick, 19, &options).unwrap();
        let cleanup = std::fs::remove_dir_all(&dir);
        drop(cleanup);
        let _ = ctx.store();
    }

    #[test]
    fn scales_differ_in_size() {
        assert!(Scale::Paper.machines_per_type() > Scale::Quick.machines_per_type());
        assert!(Scale::Paper.pool_size() > Scale::Quick.pool_size());
        let q = Scale::Quick.campaign(1);
        let p = Scale::Paper.campaign(1);
        assert!(p.scale > q.scale);
    }
}
