//! The experiment registry: every reproduced table and figure, by id.
//!
//! Each entry implements the [`Experiment`] trait — id, kind, title,
//! [`Cost`] class, and a fallible [`Experiment::run`] — and the whole
//! registry is a static table, so [`all`] and [`find`] hand out
//! `&'static dyn Experiment` references that can be shared freely across
//! the scheduler's worker threads (see [`crate::engine`]).

use std::fmt;

use crate::artifact::Artifact;
use crate::context::Context;
use crate::experiments;

/// Whether an experiment reproduces a table or a figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A paper table.
    Table,
    /// A paper figure.
    Figure,
}

impl Kind {
    /// Lowercase label (`table` / `figure`) for CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            Kind::Table => "table",
            Kind::Figure => "figure",
        }
    }
}

/// Rough wall-time class of an experiment, used by the scheduler to start
/// the longest pipelines first so the parallel run is bound by the single
/// slowest experiment rather than an unlucky tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cost {
    /// Renders catalog data or a single small slice; microseconds.
    Light,
    /// Full-store scans and per-machine statistics; milliseconds.
    Medium,
    /// CONFIRM resampling sweeps; the long pole of `repro all`.
    Heavy,
}

impl Cost {
    /// Lowercase label (`light` / `medium` / `heavy`) for CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            Cost::Light => "light",
            Cost::Medium => "medium",
            Cost::Heavy => "heavy",
        }
    }
}

/// How an experiment failure should be treated by the engine's retry
/// loop (see DESIGN.md §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorClass {
    /// Sporadic — a dropped machine, a chaos injection, a racy resource.
    /// Worth retrying under the run's fault policy.
    Transient,
    /// Deterministic — the context cannot support the pipeline (empty
    /// slice, degenerate statistics) or the code is wrong. Retrying
    /// cannot help; the experiment is quarantined per-id. The default.
    #[default]
    Persistent,
}

/// Why an experiment pipeline could not produce its artifacts.
///
/// Experiments are pure functions of the shared [`Context`]; a
/// [`ErrorClass::Persistent`] failure means the context cannot support
/// the pipeline, a [`ErrorClass::Transient`] one that a retry may
/// succeed. The engine retries transient failures under its fault
/// policy, then reports whatever remains per id and keeps running the
/// rest of the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentError {
    message: String,
    class: ErrorClass,
}

impl ExperimentError {
    /// Creates a persistent error with a human-readable cause.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            class: ErrorClass::Persistent,
        }
    }

    /// Creates a transient (retryable) error.
    pub fn transient(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            class: ErrorClass::Transient,
        }
    }

    /// The human-readable cause.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The failure class driving the engine's retry decision.
    pub fn class(&self) -> ErrorClass {
        self.class
    }

    /// Whether the engine should retry this failure.
    pub fn is_transient(&self) -> bool {
        self.class == ErrorClass::Transient
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ExperimentError {}

/// One runnable experiment: metadata plus a fallible pipeline.
///
/// Implementations must be [`Sync`] so the engine can fan a registry
/// slice out across worker threads against one shared immutable context.
pub trait Experiment: Sync {
    /// Experiment id (`T1`, `F9`, ...).
    fn id(&self) -> &str;
    /// The kind of artifact it reproduces.
    fn kind(&self) -> Kind;
    /// What paper finding it reproduces.
    fn title(&self) -> &str;
    /// Rough wall-time class, for scheduling.
    fn cost(&self) -> Cost;
    /// Version tag of the pipeline's logic, part of the artifact-cache
    /// key (see [`crate::cache`]). Bump the experiment's version constant
    /// whenever an edit could change its output, so stale cached
    /// artifacts self-invalidate. Registry entries wire this to a
    /// per-experiment `*_VERSION` constant next to the pipeline code.
    fn code_version(&self) -> u32 {
        1
    }
    /// Whether artifacts may be served from and stored to the cache.
    /// `false` forces a recompute every run (used by test shims whose
    /// behavior is not a pure function of the context, e.g. injected
    /// failures).
    fn cacheable(&self) -> bool {
        true
    }
    /// Runs the pipeline against the shared campaign context.
    fn run(&self, ctx: &Context) -> Result<Vec<Artifact>, ExperimentError>;
}

/// A registry entry: static metadata around a plain function pointer.
struct Entry {
    id: &'static str,
    kind: Kind,
    title: &'static str,
    cost: Cost,
    version: u32,
    run: fn(&Context) -> Result<Vec<Artifact>, ExperimentError>,
}

impl Experiment for Entry {
    fn id(&self) -> &str {
        self.id
    }

    fn kind(&self) -> Kind {
        self.kind
    }

    fn title(&self) -> &str {
        self.title
    }

    fn cost(&self) -> Cost {
        self.cost
    }

    fn code_version(&self) -> u32 {
        self.version
    }

    fn run(&self, ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
        (self.run)(ctx)
    }
}

/// All experiments, in DESIGN.md order.
static REGISTRY: [Entry; 24] = [
    Entry {
        id: "T1",
        kind: Kind::Table,
        title: "Hardware catalog: machine types, counts, specs",
        cost: Cost::Light,
        version: experiments::hardware_tables::T1_HARDWARE_VERSION,
        run: experiments::hardware_tables::t1_hardware,
    },
    Entry {
        id: "T2",
        kind: Kind::Table,
        title: "Benchmark suite and parameters",
        cost: Cost::Light,
        version: experiments::hardware_tables::T2_BENCHMARKS_VERSION,
        run: experiments::hardware_tables::t2_benchmarks,
    },
    Entry {
        id: "F1",
        kind: Kind::Figure,
        title: "Motivating example: skewed repeated disk runs on one machine",
        cost: Cost::Light,
        version: experiments::motivating::F1_MOTIVATING_VERSION,
        run: experiments::motivating::f1_motivating,
    },
    Entry {
        id: "F2",
        kind: Kind::Figure,
        title: "Memory bandwidth across one type's machines is multimodal",
        cost: Cost::Light,
        version: experiments::motivating::F2_MEMORY_MULTIMODAL_VERSION,
        run: experiments::motivating::f2_memory_multimodal,
    },
    Entry {
        id: "F3",
        kind: Kind::Figure,
        title: "CoV by machine type: memory benchmarks",
        cost: Cost::Medium,
        version: experiments::cov::F3_COV_MEMORY_VERSION,
        run: experiments::cov::f3_cov_memory,
    },
    Entry {
        id: "F4",
        kind: Kind::Figure,
        title: "CoV by machine type: disk benchmarks (HDD >> SSD)",
        cost: Cost::Medium,
        version: experiments::cov::F4_COV_DISK_VERSION,
        run: experiments::cov::f4_cov_disk,
    },
    Entry {
        id: "F5",
        kind: Kind::Figure,
        title: "CoV by machine type: network benchmarks",
        cost: Cost::Medium,
        version: experiments::cov::F5_COV_NETWORK_VERSION,
        run: experiments::cov::f5_cov_network,
    },
    Entry {
        id: "F6",
        kind: Kind::Figure,
        title: "Shapiro-Wilk normality census: most sample sets are not normal",
        cost: Cost::Medium,
        version: experiments::normality::F6_NORMALITY_VERSION,
        run: experiments::normality::f6_normality,
    },
    Entry {
        id: "F7",
        kind: Kind::Figure,
        title: "Mean fragile vs median robust under contamination",
        cost: Cost::Medium,
        version: experiments::mean_median::F7_MEAN_VS_MEDIAN_VERSION,
        run: experiments::mean_median::f7_mean_vs_median,
    },
    Entry {
        id: "F8",
        kind: Kind::Figure,
        title: "Median-CI half-width vs repetitions (convergence curves)",
        cost: Cost::Medium,
        version: experiments::convergence::F8_CI_CONVERGENCE_VERSION,
        run: experiments::convergence::f8_ci_convergence,
    },
    Entry {
        id: "F9",
        kind: Kind::Figure,
        title: "CONFIRM: CDF of required repetitions across machines",
        cost: Cost::Heavy,
        version: experiments::confirm_study::F9_CONFIRM_CDF_VERSION,
        run: experiments::confirm_study::f9_confirm_cdf,
    },
    Entry {
        id: "F10",
        kind: Kind::Figure,
        title: "CONFIRM on tail quantiles: p95/p99 cost far more than the median",
        cost: Cost::Heavy,
        version: experiments::confirm_study::F10_CONFIRM_TAILS_VERSION,
        run: experiments::confirm_study::f10_confirm_tails,
    },
    Entry {
        id: "T3",
        kind: Kind::Table,
        title: "Parametric (Jain) vs CONFIRM estimates with normality verdicts",
        cost: Cost::Heavy,
        version: experiments::parametric_vs_confirm::T3_PARAMETRIC_VS_CONFIRM_VERSION,
        run: experiments::parametric_vs_confirm::t3_parametric_vs_confirm,
    },
    Entry {
        id: "F11",
        kind: Kind::Figure,
        title: "Temporal variability: maintenance changepoints detected",
        cost: Cost::Medium,
        version: experiments::temporal::F11_TEMPORAL_VERSION,
        run: experiments::temporal::f11_temporal,
    },
    Entry {
        id: "F12",
        kind: Kind::Figure,
        title: "Inter- vs intra-machine variability decomposition",
        cost: Cost::Medium,
        version: experiments::inter_intra::F12_INTER_INTRA_VERSION,
        run: experiments::inter_intra::f12_inter_intra,
    },
    Entry {
        id: "T4",
        kind: Kind::Table,
        title: "Summary of required repetitions per benchmark and target",
        cost: Cost::Heavy,
        version: experiments::confirm_study::T4_REPETITION_SUMMARY_VERSION,
        run: experiments::confirm_study::t4_repetition_summary,
    },
    Entry {
        id: "F13",
        kind: Kind::Figure,
        title: "Normal QQ study: the visual non-normality argument, quantified",
        cost: Cost::Medium,
        version: experiments::qq_study::F13_QQ_VERSION,
        run: experiments::qq_study::f13_qq,
    },
    Entry {
        id: "F14",
        kind: Kind::Figure,
        title: "Allocation-policy bias: randomize machine selection",
        cost: Cost::Heavy,
        version: experiments::allocation_bias::F14_ALLOCATION_BIAS_VERSION,
        run: experiments::allocation_bias::f14_allocation_bias,
    },
    Entry {
        id: "F15",
        kind: Kind::Figure,
        title: "Noisy-neighbor interference inflates variability and repetitions",
        cost: Cost::Heavy,
        version: experiments::interference_study::F15_INTERFERENCE_VERSION,
        run: experiments::interference_study::f15_interference,
    },
    Entry {
        id: "T5",
        kind: Kind::Table,
        title: "CONFIRM configuration ablation (criterion, CI method, growth)",
        cost: Cost::Heavy,
        version: experiments::ablation::T5_CONFIRM_ABLATION_VERSION,
        run: experiments::ablation::t5_confirm_ablation,
    },
    Entry {
        id: "T6",
        kind: Kind::Table,
        title: "Campaign dataset overview and outlier health sweep",
        cost: Cost::Medium,
        version: experiments::dataset_overview::T6_DATASET_OVERVIEW_VERSION,
        run: experiments::dataset_overview::t6_dataset_overview,
    },
    Entry {
        id: "F16",
        kind: Kind::Figure,
        title: "CONFIRM answer stability across subsampling seeds",
        cost: Cost::Heavy,
        version: experiments::confirm_stability::F16_CONFIRM_STABILITY_VERSION,
        run: experiments::confirm_stability::f16_confirm_stability,
    },
    Entry {
        id: "T7",
        kind: Kind::Table,
        title: "Variance homogeneity across same-type machines (Brown-Forsythe)",
        cost: Cost::Medium,
        version: experiments::variance_homogeneity::T7_VARIANCE_HOMOGENEITY_VERSION,
        run: experiments::variance_homogeneity::t7_variance_homogeneity,
    },
    Entry {
        id: "F17",
        kind: Kind::Figure,
        title: "CONFIRM requirement vs CoV: the quadratic scaling law vs theory",
        cost: Cost::Heavy,
        version: experiments::scaling_law::F17_SCALING_LAW_VERSION,
        run: experiments::scaling_law::f17_scaling_law,
    },
];

/// All experiments, in DESIGN.md order.
pub fn all() -> Vec<&'static dyn Experiment> {
    REGISTRY.iter().map(|e| e as &dyn Experiment).collect()
}

/// Looks up an experiment by id (case-insensitive).
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    REGISTRY
        .iter()
        .find(|e| e.id.eq_ignore_ascii_case(id))
        .map(|e| e as &dyn Experiment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_twenty_four_unique_experiments() {
        let exps = all();
        assert_eq!(exps.len(), 24);
        let mut ids: Vec<&str> = exps.iter().map(|e| e.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 24);
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("f9").is_some());
        assert!(find("T1").is_some());
        assert!(find("F99").is_none());
    }

    #[test]
    fn tables_and_figures_both_present() {
        let exps = all();
        assert_eq!(exps.iter().filter(|e| e.kind() == Kind::Table).count(), 7);
        assert_eq!(exps.iter().filter(|e| e.kind() == Kind::Figure).count(), 17);
    }

    #[test]
    fn every_cost_class_is_represented() {
        let exps = all();
        for cost in [Cost::Light, Cost::Medium, Cost::Heavy] {
            assert!(
                exps.iter().any(|e| e.cost() == cost),
                "no {} experiment registered",
                cost.label()
            );
        }
        // The CONFIRM resampling pipelines are the known long poles.
        assert_eq!(find("F9").unwrap().cost(), Cost::Heavy);
        assert_eq!(find("T1").unwrap().cost(), Cost::Light);
    }

    #[test]
    fn costs_order_light_to_heavy() {
        assert!(Cost::Light < Cost::Medium);
        assert!(Cost::Medium < Cost::Heavy);
    }

    #[test]
    fn experiment_error_displays_its_message() {
        let err = ExperimentError::new("empty slice");
        assert_eq!(err.message(), "empty slice");
        assert_eq!(err.to_string(), "empty slice");
    }
}
