//! The experiment registry: every reproduced table and figure, by id.

use crate::artifact::Artifact;
use crate::context::Context;
use crate::experiments;

/// Whether an experiment reproduces a table or a figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A paper table.
    Table,
    /// A paper figure.
    Figure,
}

/// One registered experiment.
pub struct Experiment {
    /// Experiment id (`T1`, `F9`, ...).
    pub id: &'static str,
    /// The kind of artifact it reproduces.
    pub kind: Kind,
    /// What paper finding it reproduces.
    pub title: &'static str,
    /// The pipeline.
    pub run: fn(&Context) -> Vec<Artifact>,
}

/// All experiments, in DESIGN.md order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "T1",
            kind: Kind::Table,
            title: "Hardware catalog: machine types, counts, specs",
            run: experiments::hardware_tables::t1_hardware,
        },
        Experiment {
            id: "T2",
            kind: Kind::Table,
            title: "Benchmark suite and parameters",
            run: experiments::hardware_tables::t2_benchmarks,
        },
        Experiment {
            id: "F1",
            kind: Kind::Figure,
            title: "Motivating example: skewed repeated disk runs on one machine",
            run: experiments::motivating::f1_motivating,
        },
        Experiment {
            id: "F2",
            kind: Kind::Figure,
            title: "Memory bandwidth across one type's machines is multimodal",
            run: experiments::motivating::f2_memory_multimodal,
        },
        Experiment {
            id: "F3",
            kind: Kind::Figure,
            title: "CoV by machine type: memory benchmarks",
            run: experiments::cov::f3_cov_memory,
        },
        Experiment {
            id: "F4",
            kind: Kind::Figure,
            title: "CoV by machine type: disk benchmarks (HDD >> SSD)",
            run: experiments::cov::f4_cov_disk,
        },
        Experiment {
            id: "F5",
            kind: Kind::Figure,
            title: "CoV by machine type: network benchmarks",
            run: experiments::cov::f5_cov_network,
        },
        Experiment {
            id: "F6",
            kind: Kind::Figure,
            title: "Shapiro-Wilk normality census: most sample sets are not normal",
            run: experiments::normality::f6_normality,
        },
        Experiment {
            id: "F7",
            kind: Kind::Figure,
            title: "Mean fragile vs median robust under contamination",
            run: experiments::mean_median::f7_mean_vs_median,
        },
        Experiment {
            id: "F8",
            kind: Kind::Figure,
            title: "Median-CI half-width vs repetitions (convergence curves)",
            run: experiments::convergence::f8_ci_convergence,
        },
        Experiment {
            id: "F9",
            kind: Kind::Figure,
            title: "CONFIRM: CDF of required repetitions across machines",
            run: experiments::confirm_study::f9_confirm_cdf,
        },
        Experiment {
            id: "F10",
            kind: Kind::Figure,
            title: "CONFIRM on tail quantiles: p95/p99 cost far more than the median",
            run: experiments::confirm_study::f10_confirm_tails,
        },
        Experiment {
            id: "T3",
            kind: Kind::Table,
            title: "Parametric (Jain) vs CONFIRM estimates with normality verdicts",
            run: experiments::parametric_vs_confirm::t3_parametric_vs_confirm,
        },
        Experiment {
            id: "F11",
            kind: Kind::Figure,
            title: "Temporal variability: maintenance changepoints detected",
            run: experiments::temporal::f11_temporal,
        },
        Experiment {
            id: "F12",
            kind: Kind::Figure,
            title: "Inter- vs intra-machine variability decomposition",
            run: experiments::inter_intra::f12_inter_intra,
        },
        Experiment {
            id: "T4",
            kind: Kind::Table,
            title: "Summary of required repetitions per benchmark and target",
            run: experiments::confirm_study::t4_repetition_summary,
        },
        Experiment {
            id: "F13",
            kind: Kind::Figure,
            title: "Normal QQ study: the visual non-normality argument, quantified",
            run: experiments::qq_study::f13_qq,
        },
        Experiment {
            id: "F14",
            kind: Kind::Figure,
            title: "Allocation-policy bias: randomize machine selection",
            run: experiments::allocation_bias::f14_allocation_bias,
        },
        Experiment {
            id: "F15",
            kind: Kind::Figure,
            title: "Noisy-neighbor interference inflates variability and repetitions",
            run: experiments::interference_study::f15_interference,
        },
        Experiment {
            id: "T5",
            kind: Kind::Table,
            title: "CONFIRM configuration ablation (criterion, CI method, growth)",
            run: experiments::ablation::t5_confirm_ablation,
        },
        Experiment {
            id: "T6",
            kind: Kind::Table,
            title: "Campaign dataset overview and outlier health sweep",
            run: experiments::dataset_overview::t6_dataset_overview,
        },
        Experiment {
            id: "F16",
            kind: Kind::Figure,
            title: "CONFIRM answer stability across subsampling seeds",
            run: experiments::confirm_stability::f16_confirm_stability,
        },
        Experiment {
            id: "T7",
            kind: Kind::Table,
            title: "Variance homogeneity across same-type machines (Brown-Forsythe)",
            run: experiments::variance_homogeneity::t7_variance_homogeneity,
        },
        Experiment {
            id: "F17",
            kind: Kind::Figure,
            title: "CONFIRM requirement vs CoV: the quadratic scaling law vs theory",
            run: experiments::scaling_law::f17_scaling_law,
        },
    ]
}

/// Looks up an experiment by id (case-insensitive).
pub fn find(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_twenty_four_unique_experiments() {
        let exps = all();
        assert_eq!(exps.len(), 24);
        let mut ids: Vec<&str> = exps.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 24);
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("f9").is_some());
        assert!(find("T1").is_some());
        assert!(find("F99").is_none());
    }

    #[test]
    fn tables_and_figures_both_present() {
        let exps = all();
        assert_eq!(exps.iter().filter(|e| e.kind == Kind::Table).count(), 7);
        assert_eq!(exps.iter().filter(|e| e.kind == Kind::Figure).count(), 17);
    }
}
