//! The experiment engine: a deterministic parallel scheduler for the
//! registry.
//!
//! [`run_experiments`] fans a slice of experiments out across
//! `min(jobs, experiments)` scoped worker threads that all share one
//! immutable [`Arc<Context>`]. The contract mirrors the sharded campaign
//! (see `dataset::collect_jobs`): **the report — and therefore every
//! artifact, rendered table, and CSV downstream — is byte-identical for
//! any worker count and thread schedule.** It holds because experiments
//! are pure functions of the context, each one's artifacts are collected
//! into a slot keyed by its input position, and the report is assembled
//! in input order after all workers join. Only wall-clock timings differ
//! between runs.
//!
//! Scheduling is dynamic: workers claim experiments from a shared queue
//! ordered by descending [`Cost`](crate::registry::Cost) class, so the CONFIRM-heavy pipelines
//! start first and the run's wall time is bound by the single slowest
//! experiment instead of an unlucky static partition.
//!
//! A failing experiment does not abort the run: its error is captured in
//! its [`ExperimentRun::outcome`] slot and every sibling still runs.
//!
//! [`run_experiments_cached`] additionally consults a content-addressed
//! [`ArtifactCache`] before fan-out: hits
//! are served without running the pipeline and merge back in input
//! order, misses are scheduled as usual and written back on success, so
//! a cache-hot run is byte-identical to a cache-cold one.
//!
//! [`run_experiments_opts`] is the full-featured entry point: an
//! [`EngineOptions`] adds a [`FaultPolicy`] — transient failures
//! ([`ExperimentError::is_transient`]) are retried with bounded
//! exponential backoff, persistent ones are quarantined per-id — and an
//! optional chaos [`FaultPlan`] that injects transient experiment
//! failures and cache-write I/O errors at deterministic sites.
//! Injected faults stop firing before the default retry budget runs out
//! (see `testbed::faults`), so a chaos run under the default policy
//! produces artifacts byte-identical to a fault-free run; only genuinely
//! persistent failures reach the report. Fault activity lands in the
//! returned [`FaultStats`] and the `fault.injected` / `fault.retried` /
//! `fault.quarantined` telemetry counters.
//!
//! Telemetry: the engine opens an `experiments.run` span; each worker
//! opens `experiment.worker.N` under it (threads named
//! `experiment-worker-N`) via [`telemetry::span_in`], and every
//! experiment runs inside an `experiment.<id>` span. Per-experiment wall
//! times land in the `experiment.secs` histogram and a per-id
//! `experiment.secs.<id>` histogram; failures bump the
//! `experiments.failed` counter.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use testbed::{FaultPlan, FaultPolicy};

use crate::artifact::Artifact;
use crate::cache::{ArtifactCache, CacheKey};
use crate::context::Context;
use crate::registry::{Experiment, ExperimentError};

/// Everything [`run_experiments_opts`] needs beyond the experiments:
/// worker count, cache, and the fault model.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineOptions<'a> {
    /// Worker threads (`None` = one per core, clamped to the number of
    /// cache misses).
    pub jobs: Option<usize>,
    /// Artifact cache consulted before fan-out.
    pub cache: Option<&'a ArtifactCache>,
    /// Chaos plan; `None` injects nothing.
    pub faults: Option<FaultPlan>,
    /// Retry budget and backoff for transient failures.
    pub policy: FaultPolicy,
}

/// Fault activity of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Chaos faults injected (transient experiment failures and
    /// cache-write I/O errors).
    pub injected: u64,
    /// Retries performed after transient failures.
    pub retried: u64,
    /// Experiments whose final outcome was still a failure; their error
    /// stays in their report slot and siblings are unaffected.
    pub quarantined: u64,
}

/// Shared atomic tallies behind [`FaultStats`].
#[derive(Default)]
struct FaultCounters {
    injected: AtomicU64,
    retried: AtomicU64,
    quarantined: AtomicU64,
}

impl FaultCounters {
    fn injected(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        telemetry::metrics::counter("fault.injected").inc();
    }

    fn retried(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
        telemetry::metrics::counter("fault.retried").inc();
    }

    fn quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        telemetry::metrics::counter("fault.quarantined").inc();
    }

    fn stats(&self) -> FaultStats {
        FaultStats {
            injected: self.injected.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

/// The outcome of one experiment under the engine.
#[derive(Debug)]
pub struct ExperimentRun {
    /// Experiment id (`T1`, `F9`, ...).
    pub id: String,
    /// Wall time of the pipeline, in seconds (0.0 for a cache hit).
    pub wall_secs: f64,
    /// Whether the artifacts were served from the cache instead of
    /// running the pipeline.
    pub cached: bool,
    /// The artifacts, or why the pipeline could not produce them.
    pub outcome: Result<Vec<Artifact>, ExperimentError>,
}

impl ExperimentRun {
    /// Number of artifacts produced (0 for a failed run).
    pub fn artifact_count(&self) -> usize {
        self.outcome.as_ref().map_or(0, Vec::len)
    }
}

/// Runs `experiments` against the shared context on `jobs` workers
/// (`None` = one per core, clamped to the experiment count) and returns
/// one [`ExperimentRun`] per experiment **in input order**, regardless of
/// worker count or completion order.
pub fn run_experiments(
    ctx: &Arc<Context>,
    experiments: &[&dyn Experiment],
    jobs: Option<usize>,
) -> Vec<ExperimentRun> {
    run_experiments_with(ctx, experiments, jobs, &|_| {})
}

/// Like [`run_experiments`], invoking `on_done` from the running worker
/// as each experiment finishes (in completion order — use it for progress
/// reporting, not for anything the determinism contract covers).
pub fn run_experiments_with(
    ctx: &Arc<Context>,
    experiments: &[&dyn Experiment],
    jobs: Option<usize>,
    on_done: &(dyn Fn(&ExperimentRun) + Sync),
) -> Vec<ExperimentRun> {
    run_experiments_cached(ctx, experiments, jobs, None, on_done)
}

/// Like [`run_experiments_with`], consulting `cache` before fan-out.
///
/// For every cacheable experiment the engine computes its
/// [`CacheKey`] and looks the artifacts up first; hits skip the pipeline
/// entirely (their [`ExperimentRun::cached`] is set and `wall_secs` is
/// 0.0) and only the misses are scheduled across workers. Successful
/// recomputes are written back to the cache from the worker that ran
/// them. Hits merge back into the report in input order exactly like
/// computed results, so the byte-identity contract is unchanged: a
/// cache-hot run renders the same report as a cache-cold one for any
/// `--jobs N`.
pub fn run_experiments_cached(
    ctx: &Arc<Context>,
    experiments: &[&dyn Experiment],
    jobs: Option<usize>,
    cache: Option<&ArtifactCache>,
    on_done: &(dyn Fn(&ExperimentRun) + Sync),
) -> Vec<ExperimentRun> {
    let options = EngineOptions {
        jobs,
        cache,
        ..EngineOptions::default()
    };
    run_experiments_opts(ctx, experiments, &options, on_done).0
}

/// Like [`run_experiments_cached`], with the full fault model: transient
/// failures retry under `options.policy` with bounded exponential
/// backoff, persistent ones are quarantined per-id, and an optional
/// chaos [`FaultPlan`] injects failures at deterministic sites. Returns
/// the report plus the run's [`FaultStats`].
pub fn run_experiments_opts(
    ctx: &Arc<Context>,
    experiments: &[&dyn Experiment],
    options: &EngineOptions<'_>,
    on_done: &(dyn Fn(&ExperimentRun) + Sync),
) -> (Vec<ExperimentRun>, FaultStats) {
    let _span = telemetry::span("experiments.run");
    let mut slots: Vec<Option<ExperimentRun>> = Vec::new();
    slots.resize_with(experiments.len(), || None);
    let counters = FaultCounters::default();

    // Phase 1: serve cache hits before fan-out. Keys depend only on the
    // experiment identity and the context parameters, never on the
    // worker count, so the hit set is jobs-invariant too.
    let mut pending: Vec<usize> = Vec::new();
    for (i, e) in experiments.iter().enumerate() {
        let hit = options.cache.and_then(|cache| {
            if !e.cacheable() {
                return None;
            }
            cache.lookup(&CacheKey::for_context(*e, ctx))
        });
        match hit {
            Some(artifacts) => {
                let run = ExperimentRun {
                    id: e.id().to_string(),
                    wall_secs: 0.0,
                    cached: true,
                    outcome: Ok(artifacts),
                };
                on_done(&run);
                slots[i] = Some(run);
            }
            None => pending.push(i),
        }
    }

    let workers = options
        .jobs
        .unwrap_or_else(dataset::default_jobs)
        .clamp(1, pending.len().max(1));
    telemetry::metrics::gauge("experiments.workers").set(workers as f64);
    let run_and_store = |i: usize, ctx: &Context| {
        let run = run_one(experiments[i], ctx, options, &counters);
        if let (Some(cache), true, Ok(artifacts)) =
            (options.cache, experiments[i].cacheable(), &run.outcome)
        {
            store_retrying(cache, experiments[i], ctx, artifacts, options, &counters);
        }
        run
    };
    if workers <= 1 {
        for i in pending {
            let run = run_and_store(i, ctx);
            on_done(&run);
            slots[i] = Some(run);
        }
    } else {
        // Claim order: heaviest cost class first, registry order within a
        // class. The claim index is the only shared mutable state.
        let mut order: Vec<usize> = pending;
        order.sort_by_key(|&i| (std::cmp::Reverse(experiments[i].cost()), i));
        let next = AtomicUsize::new(0);
        let parent = telemetry::trace::current_context();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let ctx = Arc::clone(ctx);
                    let (next, order, run_and_store) = (&next, &order, &run_and_store);
                    std::thread::Builder::new()
                        .name(format!("experiment-worker-{w}"))
                        .spawn_scoped(scope, move || {
                            let _span =
                                telemetry::span_in(format!("experiment.worker.{w}"), parent);
                            let mut done: Vec<(usize, ExperimentRun)> = Vec::new();
                            loop {
                                let claimed = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&i) = order.get(claimed) else { break };
                                let run = run_and_store(i, &ctx);
                                on_done(&run);
                                done.push((i, run));
                            }
                            done
                        })
                        .expect("spawning an experiment worker succeeds")
                })
                .collect();
            for handle in handles {
                for (i, run) in handle.join().expect("experiment workers do not panic") {
                    slots[i] = Some(run);
                }
            }
        });
    }
    let report = slots
        .into_iter()
        .map(|slot| slot.expect("every claimed experiment reports"))
        .collect();
    (report, counters.stats())
}

/// Runs one experiment with transient-failure retries. The site string
/// `experiment.<id>` keys the chaos decision, so injection is identical
/// for any worker count or thread schedule. Wall time spans all
/// attempts including backoff.
fn run_one(
    e: &dyn Experiment,
    ctx: &Context,
    options: &EngineOptions<'_>,
    counters: &FaultCounters,
) -> ExperimentRun {
    let _span = telemetry::span(format!("experiment.{}", e.id()));
    let site = format!("experiment.{}", e.id());
    let started = Instant::now();
    let mut attempt = 0;
    let outcome = loop {
        let outcome = if options.faults.is_some_and(|f| f.transient(&site, attempt)) {
            counters.injected();
            Err(ExperimentError::transient(
                "injected transient fault (chaos)",
            ))
        } else {
            e.run(ctx)
        };
        match outcome {
            Err(err) if err.is_transient() && attempt < options.policy.max_retries => {
                counters.retried();
                std::thread::sleep(options.policy.backoff_for(attempt));
                attempt += 1;
            }
            outcome => break outcome,
        }
    };
    let wall_secs = started.elapsed().as_secs_f64();
    telemetry::metrics::histogram("experiment.secs").record(wall_secs);
    telemetry::metrics::histogram(&format!("experiment.secs.{}", e.id())).record(wall_secs);
    if outcome.is_err() {
        telemetry::metrics::counter("experiments.failed").inc();
        counters.quarantined();
    }
    ExperimentRun {
        id: e.id().to_string(),
        wall_secs,
        cached: false,
        outcome,
    }
}

/// Stores freshly computed artifacts, injecting and retrying cache-write
/// I/O faults under the policy. Cache writes are best-effort: a failure
/// past the retry budget is reported to stderr, never escalated — a
/// broken cache disk must not fail the run that computed the artifacts.
fn store_retrying(
    cache: &ArtifactCache,
    e: &dyn Experiment,
    ctx: &Context,
    artifacts: &[Artifact],
    options: &EngineOptions<'_>,
    counters: &FaultCounters,
) {
    let key = CacheKey::for_context(e, ctx);
    let site = format!("cache.store.{}", e.id());
    let mut attempt = 0;
    loop {
        let result = if options.faults.is_some_and(|f| f.io_error(&site, attempt)) {
            counters.injected();
            Err(std::io::Error::other("injected I/O fault (chaos)"))
        } else {
            cache.store(&key, artifacts)
        };
        match result {
            Ok(()) => return,
            Err(_) if attempt < options.policy.max_retries => {
                counters.retried();
                std::thread::sleep(options.policy.backoff_for(attempt));
                attempt += 1;
            }
            Err(err) => {
                eprintln!("cache: cannot store {}: {err}", e.id());
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;
    use crate::registry::{self, Cost, Kind};

    struct Failing;

    impl Experiment for Failing {
        fn id(&self) -> &str {
            "FAIL"
        }
        fn kind(&self) -> Kind {
            Kind::Table
        }
        fn title(&self) -> &str {
            "always fails"
        }
        fn cost(&self) -> Cost {
            Cost::Light
        }
        fn run(&self, _ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
            Err(ExperimentError::new("injected failure"))
        }
    }

    fn quick_ctx() -> Arc<Context> {
        Arc::new(Context::with_jobs(Scale::Quick, 5, Some(2)))
    }

    #[test]
    fn report_preserves_input_order_for_any_worker_count() {
        let ctx = quick_ctx();
        let subset: Vec<&dyn Experiment> = ["F3", "T1", "F6", "T2", "F4"]
            .iter()
            .map(|id| registry::find(id).expect("registered"))
            .collect();
        let sequential = run_experiments(&ctx, &subset, Some(1));
        for jobs in [2, 3, 8] {
            let parallel = run_experiments(&ctx, &subset, Some(jobs));
            let ids: Vec<&str> = parallel.iter().map(|r| r.id.as_str()).collect();
            assert_eq!(ids, ["F3", "T1", "F6", "T2", "F4"], "jobs={jobs}");
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(
                    s.outcome.as_ref().unwrap(),
                    p.outcome.as_ref().unwrap(),
                    "jobs={jobs} changed {} artifacts",
                    s.id
                );
            }
        }
    }

    #[test]
    fn failures_are_isolated_to_their_slot() {
        let ctx = quick_ctx();
        let failing = Failing;
        let experiments: Vec<&dyn Experiment> = vec![
            registry::find("T1").unwrap(),
            &failing,
            registry::find("T2").unwrap(),
        ];
        let report = run_experiments(&ctx, &experiments, Some(3));
        assert_eq!(report.len(), 3);
        assert!(report[0].outcome.is_ok());
        let err = report[1].outcome.as_ref().unwrap_err();
        assert_eq!(report[1].id, "FAIL");
        assert_eq!(err.message(), "injected failure");
        assert_eq!(report[1].artifact_count(), 0);
        assert!(report[2].outcome.is_ok());
        assert!(report[2].artifact_count() > 0);
    }

    #[test]
    fn on_done_sees_every_experiment_exactly_once() {
        let ctx = quick_ctx();
        let subset: Vec<&dyn Experiment> = ["T1", "T2", "F1"]
            .iter()
            .map(|id| registry::find(id).expect("registered"))
            .collect();
        let seen = std::sync::Mutex::new(Vec::new());
        let report = run_experiments_with(&ctx, &subset, Some(2), &|run| {
            seen.lock().unwrap().push(run.id.clone());
        });
        assert_eq!(report.len(), 3);
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        assert_eq!(seen, ["F1", "T1", "T2"]);
    }

    #[test]
    fn cache_hits_skip_pipelines_and_preserve_artifacts() {
        let ctx = quick_ctx();
        let dir = std::env::temp_dir().join(format!("engine-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(&dir);
        let subset: Vec<&dyn Experiment> = ["T1", "F3", "T2"]
            .iter()
            .map(|id| registry::find(id).expect("registered"))
            .collect();
        let cold = run_experiments_cached(&ctx, &subset, Some(2), Some(&cache), &|_| {});
        assert!(cold.iter().all(|r| !r.cached), "cold run computes");
        assert_eq!(cache.stored(), 3);
        assert_eq!(cache.misses(), 3);
        let hot = run_experiments_cached(&ctx, &subset, Some(2), Some(&cache), &|_| {});
        assert!(hot.iter().all(|r| r.cached), "hot run serves from cache");
        assert!(hot.iter().all(|r| r.wall_secs == 0.0));
        assert_eq!(cache.hits(), 3);
        for (c, h) in cold.iter().zip(&hot) {
            assert_eq!(c.id, h.id, "hits merge back in input order");
            assert_eq!(
                c.outcome.as_ref().unwrap(),
                h.outcome.as_ref().unwrap(),
                "cached artifacts are indistinguishable from computed ones"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_and_uncacheable_experiments_never_enter_the_cache() {
        struct Uncacheable;
        impl Experiment for Uncacheable {
            fn id(&self) -> &str {
                "NOCACHE"
            }
            fn kind(&self) -> Kind {
                Kind::Table
            }
            fn title(&self) -> &str {
                "never cached"
            }
            fn cost(&self) -> Cost {
                Cost::Light
            }
            fn cacheable(&self) -> bool {
                false
            }
            fn run(&self, _ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
                Ok(vec![Artifact::Table(crate::artifact::Table::new(
                    "NOCACHE",
                    "demo",
                    &["h"],
                ))])
            }
        }
        let ctx = quick_ctx();
        let dir = std::env::temp_dir().join(format!("engine-nocache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(&dir);
        let failing = Failing;
        let uncacheable = Uncacheable;
        let experiments: Vec<&dyn Experiment> = vec![&failing, &uncacheable];
        for round in 0..2 {
            let report = run_experiments_cached(&ctx, &experiments, Some(2), Some(&cache), &|_| {});
            assert!(report[0].outcome.is_err(), "round {round}");
            assert!(!report[1].cached, "uncacheable experiments always run");
        }
        assert_eq!(cache.stored(), 0, "neither failure nor opt-out is stored");
        assert_eq!(cache.hits(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_worker_count_is_clamped() {
        let ctx = quick_ctx();
        let subset: Vec<&dyn Experiment> = vec![registry::find("T2").unwrap()];
        let report = run_experiments(&ctx, &subset, Some(64));
        assert_eq!(report.len(), 1);
        assert!(report[0].outcome.is_ok());
    }

    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    /// Fails with a transient error the first `failures` times it runs,
    /// then succeeds — a stand-in for a flaky resource.
    struct Flaky {
        failures: u32,
        calls: AtomicU32,
    }

    impl Flaky {
        fn new(failures: u32) -> Self {
            Flaky {
                failures,
                calls: AtomicU32::new(0),
            }
        }
    }

    impl Experiment for Flaky {
        fn id(&self) -> &str {
            "FLAKY"
        }
        fn kind(&self) -> Kind {
            Kind::Table
        }
        fn title(&self) -> &str {
            "fails transiently, then succeeds"
        }
        fn cost(&self) -> Cost {
            Cost::Light
        }
        fn cacheable(&self) -> bool {
            false
        }
        fn run(&self, _ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.failures {
                return Err(ExperimentError::transient("flaky resource"));
            }
            Ok(vec![Artifact::Table(crate::artifact::Table::new(
                "FLAKY",
                "demo",
                &["h"],
            ))])
        }
    }

    fn fast_policy(max_retries: u32) -> testbed::FaultPolicy {
        testbed::FaultPolicy::new(max_retries, Duration::from_micros(10))
    }

    #[test]
    fn transient_failures_retry_until_success() {
        let ctx = quick_ctx();
        let flaky = Flaky::new(2);
        let experiments: Vec<&dyn Experiment> = vec![&flaky];
        let options = EngineOptions {
            jobs: Some(1),
            policy: fast_policy(2),
            ..EngineOptions::default()
        };
        let (report, stats) = run_experiments_opts(&ctx, &experiments, &options, &|_| {});
        assert!(report[0].outcome.is_ok(), "third attempt succeeds");
        assert_eq!(flaky.calls.load(Ordering::Relaxed), 3);
        assert_eq!(stats.retried, 2);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.injected, 0, "no chaos plan, nothing injected");
    }

    #[test]
    fn exhausted_transient_budget_quarantines() {
        let ctx = quick_ctx();
        let flaky = Flaky::new(100);
        let experiments: Vec<&dyn Experiment> = vec![&flaky];
        let options = EngineOptions {
            jobs: Some(1),
            policy: fast_policy(1),
            ..EngineOptions::default()
        };
        let (report, stats) = run_experiments_opts(&ctx, &experiments, &options, &|_| {});
        let err = report[0].outcome.as_ref().unwrap_err();
        assert!(err.is_transient());
        assert_eq!(flaky.calls.load(Ordering::Relaxed), 2, "initial + 1 retry");
        assert_eq!(stats.retried, 1);
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn persistent_failures_are_never_retried() {
        let ctx = quick_ctx();
        let failing = Failing;
        let experiments: Vec<&dyn Experiment> = vec![&failing];
        let options = EngineOptions {
            jobs: Some(1),
            policy: fast_policy(5),
            ..EngineOptions::default()
        };
        let (report, stats) = run_experiments_opts(&ctx, &experiments, &options, &|_| {});
        assert!(report[0].outcome.is_err());
        assert_eq!(stats.retried, 0, "persistent errors skip the retry loop");
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn chaos_injection_recovers_and_preserves_artifacts() {
        let ctx = quick_ctx();
        let subset: Vec<&dyn Experiment> = ["T1", "F3", "T2", "F6", "F4"]
            .iter()
            .map(|id| registry::find(id).expect("registered"))
            .collect();
        let clean = run_experiments(&ctx, &subset, Some(2));
        // Aggressive injection, but within the default-budget guarantee:
        // every experiment must still succeed and match the clean run.
        let options = EngineOptions {
            jobs: Some(3),
            faults: Some(testbed::FaultPlan::with_rates(99, 900, 900, 0)),
            policy: fast_policy(2),
            ..EngineOptions::default()
        };
        let (chaos, stats) = run_experiments_opts(&ctx, &subset, &options, &|_| {});
        assert!(stats.injected > 0, "this seed is expected to inject");
        assert_eq!(stats.quarantined, 0, "injected transients all recover");
        for (c, f) in clean.iter().zip(&chaos) {
            assert_eq!(c.id, f.id);
            assert_eq!(
                c.outcome.as_ref().unwrap(),
                f.outcome.as_ref().unwrap(),
                "chaos must not change {} artifacts",
                c.id
            );
        }
    }

    #[test]
    fn injected_cache_write_faults_recover_and_still_store() {
        let ctx = quick_ctx();
        let dir = std::env::temp_dir().join(format!("engine-chaos-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(&dir);
        let subset: Vec<&dyn Experiment> = ["T1", "T2"]
            .iter()
            .map(|id| registry::find(id).expect("registered"))
            .collect();
        let options = EngineOptions {
            jobs: Some(2),
            cache: Some(&cache),
            faults: Some(testbed::FaultPlan::with_rates(7, 0, 1000, 0)),
            policy: fast_policy(2),
        };
        let (report, stats) = run_experiments_opts(&ctx, &subset, &options, &|_| {});
        assert!(report.iter().all(|r| r.outcome.is_ok()));
        assert!(stats.injected > 0, "cache writes were injected");
        assert_eq!(
            cache.stored(),
            2,
            "every store lands once the injections pass"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
