//! The experiment engine: a deterministic parallel scheduler for the
//! registry.
//!
//! [`run_experiments`] fans a slice of experiments out across
//! `min(jobs, experiments)` scoped worker threads that all share one
//! immutable [`Arc<Context>`]. The contract mirrors the sharded campaign
//! (see `dataset::collect_jobs`): **the report — and therefore every
//! artifact, rendered table, and CSV downstream — is byte-identical for
//! any worker count and thread schedule.** It holds because experiments
//! are pure functions of the context, each one's artifacts are collected
//! into a slot keyed by its input position, and the report is assembled
//! in input order after all workers join. Only wall-clock timings differ
//! between runs.
//!
//! Scheduling is dynamic: workers claim experiments from a shared queue
//! ordered by descending [`Cost`](crate::registry::Cost) class, so the CONFIRM-heavy pipelines
//! start first and the run's wall time is bound by the single slowest
//! experiment instead of an unlucky static partition.
//!
//! A failing experiment does not abort the run: its error is captured in
//! its [`ExperimentRun::outcome`] slot and every sibling still runs.
//!
//! [`run_experiments_cached`] additionally consults a content-addressed
//! [`ArtifactCache`] before fan-out: hits
//! are served without running the pipeline and merge back in input
//! order, misses are scheduled as usual and written back on success, so
//! a cache-hot run is byte-identical to a cache-cold one.
//!
//! Telemetry: the engine opens an `experiments.run` span; each worker
//! opens `experiment.worker.N` under it (threads named
//! `experiment-worker-N`) via [`telemetry::span_in`], and every
//! experiment runs inside an `experiment.<id>` span. Per-experiment wall
//! times land in the `experiment.secs` histogram and a per-id
//! `experiment.secs.<id>` histogram; failures bump the
//! `experiments.failed` counter.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::artifact::Artifact;
use crate::cache::{ArtifactCache, CacheKey};
use crate::context::Context;
use crate::registry::{Experiment, ExperimentError};

/// The outcome of one experiment under the engine.
#[derive(Debug)]
pub struct ExperimentRun {
    /// Experiment id (`T1`, `F9`, ...).
    pub id: String,
    /// Wall time of the pipeline, in seconds (0.0 for a cache hit).
    pub wall_secs: f64,
    /// Whether the artifacts were served from the cache instead of
    /// running the pipeline.
    pub cached: bool,
    /// The artifacts, or why the pipeline could not produce them.
    pub outcome: Result<Vec<Artifact>, ExperimentError>,
}

impl ExperimentRun {
    /// Number of artifacts produced (0 for a failed run).
    pub fn artifact_count(&self) -> usize {
        self.outcome.as_ref().map_or(0, Vec::len)
    }
}

/// Runs `experiments` against the shared context on `jobs` workers
/// (`None` = one per core, clamped to the experiment count) and returns
/// one [`ExperimentRun`] per experiment **in input order**, regardless of
/// worker count or completion order.
pub fn run_experiments(
    ctx: &Arc<Context>,
    experiments: &[&dyn Experiment],
    jobs: Option<usize>,
) -> Vec<ExperimentRun> {
    run_experiments_with(ctx, experiments, jobs, &|_| {})
}

/// Like [`run_experiments`], invoking `on_done` from the running worker
/// as each experiment finishes (in completion order — use it for progress
/// reporting, not for anything the determinism contract covers).
pub fn run_experiments_with(
    ctx: &Arc<Context>,
    experiments: &[&dyn Experiment],
    jobs: Option<usize>,
    on_done: &(dyn Fn(&ExperimentRun) + Sync),
) -> Vec<ExperimentRun> {
    run_experiments_cached(ctx, experiments, jobs, None, on_done)
}

/// Like [`run_experiments_with`], consulting `cache` before fan-out.
///
/// For every cacheable experiment the engine computes its
/// [`CacheKey`] and looks the artifacts up first; hits skip the pipeline
/// entirely (their [`ExperimentRun::cached`] is set and `wall_secs` is
/// 0.0) and only the misses are scheduled across workers. Successful
/// recomputes are written back to the cache from the worker that ran
/// them. Hits merge back into the report in input order exactly like
/// computed results, so the byte-identity contract is unchanged: a
/// cache-hot run renders the same report as a cache-cold one for any
/// `--jobs N`.
pub fn run_experiments_cached(
    ctx: &Arc<Context>,
    experiments: &[&dyn Experiment],
    jobs: Option<usize>,
    cache: Option<&ArtifactCache>,
    on_done: &(dyn Fn(&ExperimentRun) + Sync),
) -> Vec<ExperimentRun> {
    let _span = telemetry::span("experiments.run");
    let mut slots: Vec<Option<ExperimentRun>> = Vec::new();
    slots.resize_with(experiments.len(), || None);

    // Phase 1: serve cache hits before fan-out. Keys depend only on the
    // experiment identity and the context parameters, never on the
    // worker count, so the hit set is jobs-invariant too.
    let mut pending: Vec<usize> = Vec::new();
    for (i, e) in experiments.iter().enumerate() {
        let hit = cache.and_then(|cache| {
            if !e.cacheable() {
                return None;
            }
            cache.lookup(&CacheKey::for_context(*e, ctx))
        });
        match hit {
            Some(artifacts) => {
                let run = ExperimentRun {
                    id: e.id().to_string(),
                    wall_secs: 0.0,
                    cached: true,
                    outcome: Ok(artifacts),
                };
                on_done(&run);
                slots[i] = Some(run);
            }
            None => pending.push(i),
        }
    }

    let workers = jobs
        .unwrap_or_else(dataset::default_jobs)
        .clamp(1, pending.len().max(1));
    telemetry::metrics::gauge("experiments.workers").set(workers as f64);
    let run_and_store = |i: usize, ctx: &Context| {
        let run = run_one(experiments[i], ctx);
        if let (Some(cache), true, Ok(artifacts)) =
            (cache, experiments[i].cacheable(), &run.outcome)
        {
            if let Err(err) = cache.store(&CacheKey::for_context(experiments[i], ctx), artifacts) {
                eprintln!("cache: cannot store {}: {err}", run.id);
            }
        }
        run
    };
    if workers <= 1 {
        for i in pending {
            let run = run_and_store(i, ctx);
            on_done(&run);
            slots[i] = Some(run);
        }
    } else {
        // Claim order: heaviest cost class first, registry order within a
        // class. The claim index is the only shared mutable state.
        let mut order: Vec<usize> = pending;
        order.sort_by_key(|&i| (std::cmp::Reverse(experiments[i].cost()), i));
        let next = AtomicUsize::new(0);
        let parent = telemetry::trace::current_context();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let ctx = Arc::clone(ctx);
                    let (next, order, run_and_store) = (&next, &order, &run_and_store);
                    std::thread::Builder::new()
                        .name(format!("experiment-worker-{w}"))
                        .spawn_scoped(scope, move || {
                            let _span =
                                telemetry::span_in(format!("experiment.worker.{w}"), parent);
                            let mut done: Vec<(usize, ExperimentRun)> = Vec::new();
                            loop {
                                let claimed = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&i) = order.get(claimed) else { break };
                                let run = run_and_store(i, &ctx);
                                on_done(&run);
                                done.push((i, run));
                            }
                            done
                        })
                        .expect("spawning an experiment worker succeeds")
                })
                .collect();
            for handle in handles {
                for (i, run) in handle.join().expect("experiment workers do not panic") {
                    slots[i] = Some(run);
                }
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every claimed experiment reports"))
        .collect()
}

fn run_one(e: &dyn Experiment, ctx: &Context) -> ExperimentRun {
    let _span = telemetry::span(format!("experiment.{}", e.id()));
    let started = Instant::now();
    let outcome = e.run(ctx);
    let wall_secs = started.elapsed().as_secs_f64();
    telemetry::metrics::histogram("experiment.secs").record(wall_secs);
    telemetry::metrics::histogram(&format!("experiment.secs.{}", e.id())).record(wall_secs);
    if outcome.is_err() {
        telemetry::metrics::counter("experiments.failed").inc();
    }
    ExperimentRun {
        id: e.id().to_string(),
        wall_secs,
        cached: false,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;
    use crate::registry::{self, Cost, Kind};

    struct Failing;

    impl Experiment for Failing {
        fn id(&self) -> &str {
            "FAIL"
        }
        fn kind(&self) -> Kind {
            Kind::Table
        }
        fn title(&self) -> &str {
            "always fails"
        }
        fn cost(&self) -> Cost {
            Cost::Light
        }
        fn run(&self, _ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
            Err(ExperimentError::new("injected failure"))
        }
    }

    fn quick_ctx() -> Arc<Context> {
        Arc::new(Context::with_jobs(Scale::Quick, 5, Some(2)))
    }

    #[test]
    fn report_preserves_input_order_for_any_worker_count() {
        let ctx = quick_ctx();
        let subset: Vec<&dyn Experiment> = ["F3", "T1", "F6", "T2", "F4"]
            .iter()
            .map(|id| registry::find(id).expect("registered"))
            .collect();
        let sequential = run_experiments(&ctx, &subset, Some(1));
        for jobs in [2, 3, 8] {
            let parallel = run_experiments(&ctx, &subset, Some(jobs));
            let ids: Vec<&str> = parallel.iter().map(|r| r.id.as_str()).collect();
            assert_eq!(ids, ["F3", "T1", "F6", "T2", "F4"], "jobs={jobs}");
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(
                    s.outcome.as_ref().unwrap(),
                    p.outcome.as_ref().unwrap(),
                    "jobs={jobs} changed {} artifacts",
                    s.id
                );
            }
        }
    }

    #[test]
    fn failures_are_isolated_to_their_slot() {
        let ctx = quick_ctx();
        let failing = Failing;
        let experiments: Vec<&dyn Experiment> = vec![
            registry::find("T1").unwrap(),
            &failing,
            registry::find("T2").unwrap(),
        ];
        let report = run_experiments(&ctx, &experiments, Some(3));
        assert_eq!(report.len(), 3);
        assert!(report[0].outcome.is_ok());
        let err = report[1].outcome.as_ref().unwrap_err();
        assert_eq!(report[1].id, "FAIL");
        assert_eq!(err.message(), "injected failure");
        assert_eq!(report[1].artifact_count(), 0);
        assert!(report[2].outcome.is_ok());
        assert!(report[2].artifact_count() > 0);
    }

    #[test]
    fn on_done_sees_every_experiment_exactly_once() {
        let ctx = quick_ctx();
        let subset: Vec<&dyn Experiment> = ["T1", "T2", "F1"]
            .iter()
            .map(|id| registry::find(id).expect("registered"))
            .collect();
        let seen = std::sync::Mutex::new(Vec::new());
        let report = run_experiments_with(&ctx, &subset, Some(2), &|run| {
            seen.lock().unwrap().push(run.id.clone());
        });
        assert_eq!(report.len(), 3);
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        assert_eq!(seen, ["F1", "T1", "T2"]);
    }

    #[test]
    fn cache_hits_skip_pipelines_and_preserve_artifacts() {
        let ctx = quick_ctx();
        let dir = std::env::temp_dir().join(format!("engine-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(&dir);
        let subset: Vec<&dyn Experiment> = ["T1", "F3", "T2"]
            .iter()
            .map(|id| registry::find(id).expect("registered"))
            .collect();
        let cold = run_experiments_cached(&ctx, &subset, Some(2), Some(&cache), &|_| {});
        assert!(cold.iter().all(|r| !r.cached), "cold run computes");
        assert_eq!(cache.stored(), 3);
        assert_eq!(cache.misses(), 3);
        let hot = run_experiments_cached(&ctx, &subset, Some(2), Some(&cache), &|_| {});
        assert!(hot.iter().all(|r| r.cached), "hot run serves from cache");
        assert!(hot.iter().all(|r| r.wall_secs == 0.0));
        assert_eq!(cache.hits(), 3);
        for (c, h) in cold.iter().zip(&hot) {
            assert_eq!(c.id, h.id, "hits merge back in input order");
            assert_eq!(
                c.outcome.as_ref().unwrap(),
                h.outcome.as_ref().unwrap(),
                "cached artifacts are indistinguishable from computed ones"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_and_uncacheable_experiments_never_enter_the_cache() {
        struct Uncacheable;
        impl Experiment for Uncacheable {
            fn id(&self) -> &str {
                "NOCACHE"
            }
            fn kind(&self) -> Kind {
                Kind::Table
            }
            fn title(&self) -> &str {
                "never cached"
            }
            fn cost(&self) -> Cost {
                Cost::Light
            }
            fn cacheable(&self) -> bool {
                false
            }
            fn run(&self, _ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
                Ok(vec![Artifact::Table(crate::artifact::Table::new(
                    "NOCACHE",
                    "demo",
                    &["h"],
                ))])
            }
        }
        let ctx = quick_ctx();
        let dir = std::env::temp_dir().join(format!("engine-nocache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(&dir);
        let failing = Failing;
        let uncacheable = Uncacheable;
        let experiments: Vec<&dyn Experiment> = vec![&failing, &uncacheable];
        for round in 0..2 {
            let report = run_experiments_cached(&ctx, &experiments, Some(2), Some(&cache), &|_| {});
            assert!(report[0].outcome.is_err(), "round {round}");
            assert!(!report[1].cached, "uncacheable experiments always run");
        }
        assert_eq!(cache.stored(), 0, "neither failure nor opt-out is stored");
        assert_eq!(cache.hits(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_worker_count_is_clamped() {
        let ctx = quick_ctx();
        let subset: Vec<&dyn Experiment> = vec![registry::find("T2").unwrap()];
        let report = run_experiments(&ctx, &subset, Some(64));
        assert_eq!(report.len(), 1);
        assert!(report[0].outcome.is_ok());
    }
}
