//! Content-addressed incremental artifact cache for the experiment
//! engine.
//!
//! Every experiment is a pure function of the shared [`Context`], so its
//! `Vec<Artifact>` can be cached and replayed instead of recomputed. The
//! cache key is an FNV-1a fingerprint of everything the output depends
//! on — the cache schema version, the experiment id, its
//! [`code_version`](crate::registry::Experiment::code_version) tag, and
//! the context parameters (scale, seed, campaign configuration, CONFIRM
//! defaults). **Deliberately excluded** from the key: the worker count
//! (`--jobs` never changes artifacts — the engine's determinism
//! contract), the host, and wall-clock time. An entry is a single text
//! file named `<id>-<fingerprint>.entry`: a seven-line envelope (format
//! header, schema version, experiment id, code version, key, payload
//! checksum, payload length) followed by the artifacts in the line-based
//! codec of [`crate::artifact::encode_artifacts`]. The format is
//! deliberately free of any serialization backend, so entries are
//! byte-identical across build environments and corruption is always a
//! parse error, never undefined behavior.
//!
//! Invalidation is entirely key- and checksum-driven:
//!
//! - changing the seed, scale, or campaign configuration changes the
//!   fingerprint, so stale entries are simply never addressed again;
//! - editing an experiment's logic requires bumping its per-experiment
//!   code-version constant, which likewise changes the fingerprint;
//! - a corrupt, truncated, checksum-mismatched, or schema-stale entry is
//!   detected at lookup, counted as *invalidated*, and treated as a miss:
//!   the experiment recomputes and the entry is rewritten. A bad entry
//!   can never poison a run — at worst it costs one recompute.
//!
//! Lookups and stores bump both the cache's own atomic counters (always
//! on, surfaced in the run manifest's cache section and the `repro`
//! summary line) and the `cache.hit` / `cache.miss` /
//! `cache.invalidated` / `cache.stored` telemetry counters (live when
//! telemetry is enabled).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

use crate::artifact::{self, Artifact};
use crate::context::{Context, Scale};
use crate::registry::Experiment;

/// Version of the on-disk entry format. Part of every fingerprint, so a
/// format change invalidates the whole cache at once.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// First line of every entry file.
const ENTRY_HEADER: &str = "repro-cache v1";

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms —
/// the same digest the determinism fixtures pin artifacts with.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content address of one experiment's artifacts under one context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    id: String,
    code_version: u32,
    fingerprint: u64,
}

impl CacheKey {
    /// Computes the key from the experiment's identity and the context
    /// parameters its output depends on. `campaign_repr` and
    /// `confirm_repr` are canonical renderings of the campaign and
    /// CONFIRM configurations (see [`CacheKey::for_context`] for the
    /// usual entry point).
    pub fn new(
        experiment: &dyn Experiment,
        scale: Scale,
        seed: u64,
        campaign_repr: &str,
        confirm_repr: &str,
    ) -> Self {
        let id = experiment.id().to_string();
        let code_version = experiment.code_version();
        let canonical = format!(
            "schema={CACHE_SCHEMA_VERSION}\nid={id}\ncode={code_version}\nscale={}\nseed={seed}\ncampaign={campaign_repr}\nconfirm={confirm_repr}\n",
            scale.label(),
        );
        CacheKey {
            id,
            code_version,
            fingerprint: fnv1a64(canonical.as_bytes()),
        }
    }

    /// Computes the key for `experiment` under `ctx`. The campaign and
    /// CONFIRM configurations enter the fingerprint through their full
    /// `Debug` renderings, so any field change — not just seed and
    /// scale — changes the address.
    pub fn for_context(experiment: &dyn Experiment, ctx: &Context) -> Self {
        let campaign = format!("{:?}", ctx.campaign);
        let confirm = format!("{:?}", ctx.confirm);
        CacheKey::new(experiment, ctx.scale, ctx.seed, &campaign, &confirm)
    }

    /// Computes the key for `experiment` at (`scale`, `seed`) without
    /// building a [`Context`]. The campaign and CONFIRM configurations
    /// are pure functions of scale and seed — the same values
    /// [`Context::build`] derives — so this key equals
    /// [`CacheKey::for_context`] for the context those parameters would
    /// build, at none of the collection cost. The serving layer's hot
    /// path and `ETag` computation rely on that equality.
    pub fn for_params(experiment: &dyn Experiment, scale: Scale, seed: u64) -> Self {
        let campaign = format!("{:?}", scale.campaign(seed));
        let confirm = format!("{:?}", confirm::ConfirmConfig::default().with_seed(seed));
        CacheKey::new(experiment, scale, seed, &campaign, &confirm)
    }

    /// The experiment id this key addresses.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The 64-bit content address.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Entry file name: `<id>-<fingerprint>.entry`.
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.entry", self.id, self.fingerprint)
    }
}

/// Splits one `\n`-terminated line off the front of `rest`.
fn split_line(rest: &str) -> Option<(&str, &str)> {
    let idx = rest.find('\n')?;
    Some((&rest[..idx], &rest[idx + 1..]))
}

/// Why a lookup did not return artifacts, for the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MissKind {
    /// No entry at the address.
    Absent,
    /// An entry exists but is corrupt, truncated, checksum-mismatched,
    /// or written by a different schema version.
    Invalidated,
}

/// A directory of cached experiment artifacts with hit/miss accounting.
///
/// Shared by reference across the engine's worker threads; the counters
/// are relaxed atomics and the store path writes a temp file and renames
/// it into place, so concurrent runs over one directory are safe (a
/// racing rename is last-writer-wins over byte-identical content).
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    stored: AtomicU64,
    /// Last full directory scan, keyed by the directory mtime it
    /// observed. See [`ArtifactCache::stats`] for the validity rule.
    stats_memo: Mutex<Option<(SystemTime, CacheStats)>>,
    /// Directory scans actually performed (memo misses), for the
    /// memoization regression test.
    stats_scans: AtomicU64,
}

/// Aggregate size of a cache directory, for `repro cache stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of entry files.
    pub entries: usize,
    /// Total bytes across entry files.
    pub bytes: u64,
}

impl ArtifactCache {
    /// Opens (without creating) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ArtifactCache {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            stats_memo: Mutex::new(None),
            stats_scans: AtomicU64::new(0),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Hits recorded by this handle.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Clean misses (no entry at the address) recorded by this handle.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bad entries (corrupt / truncated / checksum or schema mismatch)
    /// recorded by this handle. Each one also behaves as a miss.
    pub fn invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Entries written by this handle.
    pub fn stored(&self) -> u64 {
        self.stored.load(Ordering::Relaxed)
    }

    /// Returns the cached artifacts for `key`, or `None` on a miss.
    ///
    /// Any defect in the entry — unreadable file, truncated or invalid
    /// JSON, schema or key mismatch, checksum failure, undecodable
    /// payload — is counted as `cache.invalidated` and reported as a
    /// miss, so the caller recomputes and rewrites. Lookup never panics
    /// on disk content.
    pub fn lookup(&self, key: &CacheKey) -> Option<Vec<Artifact>> {
        match self.try_lookup(key) {
            Ok(artifacts) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::counter("cache.hit").inc();
                Some(artifacts)
            }
            Err(MissKind::Absent) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::counter("cache.miss").inc();
                None
            }
            Err(MissKind::Invalidated) => {
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::counter("cache.invalidated").inc();
                None
            }
        }
    }

    fn try_lookup(&self, key: &CacheKey) -> Result<Vec<Artifact>, MissKind> {
        let path = self.dir.join(key.file_name());
        let raw = std::fs::read_to_string(&path).map_err(|_| MissKind::Absent)?;
        let payload = Self::validate_envelope(&raw, key).ok_or(MissKind::Invalidated)?;
        artifact::decode_artifacts(payload).map_err(|_| MissKind::Invalidated)
    }

    /// Checks every envelope line against `key` and the payload
    /// checksum + length; returns the payload slice only if all of them
    /// hold. `None` means the entry is corrupt or stale.
    fn validate_envelope<'a>(raw: &'a str, key: &CacheKey) -> Option<&'a str> {
        let (header, rest) = split_line(raw)?;
        let (schema, rest) = split_line(rest)?;
        let (experiment, rest) = split_line(rest)?;
        let (code, rest) = split_line(rest)?;
        let (fingerprint, rest) = split_line(rest)?;
        let (checksum, rest) = split_line(rest)?;
        let (length, payload) = split_line(rest)?;
        let length: usize = length.strip_prefix("payload ")?.parse().ok()?;
        let valid = header == ENTRY_HEADER
            && schema == format!("schema {CACHE_SCHEMA_VERSION}")
            && experiment == format!("experiment {}", key.id)
            && code == format!("code {}", key.code_version)
            && fingerprint == format!("key {:016x}", key.fingerprint)
            && payload.len() == length
            && checksum == format!("checksum {:016x}", fnv1a64(payload.as_bytes()));
        valid.then_some(payload)
    }

    /// Writes `artifacts` under `key`, creating the directory on first
    /// use. Best-effort: an I/O failure leaves the cache unchanged and is
    /// reported to the caller, never panicked on — a broken cache disk
    /// must not fail the run that computed the artifacts.
    pub fn store(&self, key: &CacheKey, artifacts: &[Artifact]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let payload = artifact::encode_artifacts(artifacts);
        let bytes = format!(
            "{ENTRY_HEADER}\nschema {CACHE_SCHEMA_VERSION}\nexperiment {}\ncode {}\nkey {:016x}\nchecksum {:016x}\npayload {}\n{payload}",
            key.id,
            key.code_version,
            key.fingerprint,
            fnv1a64(payload.as_bytes()),
            payload.len(),
        );
        // Temp-write + rename so readers never observe a half-written
        // entry, even across concurrent processes sharing the directory.
        let tmp = self
            .dir
            .join(format!(".{}.tmp.{}", key.file_name(), std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        let result = std::fs::rename(&tmp, self.dir.join(key.file_name()));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result?;
        self.stored.fetch_add(1, Ordering::Relaxed);
        telemetry::metrics::counter("cache.stored").inc();
        Ok(())
    }

    /// Counts entries and bytes in the cache directory. A missing
    /// directory is an empty cache.
    ///
    /// The scan is memoized on the directory's modification time: a
    /// repeat call against an unchanged directory returns the cached
    /// totals without touching `read_dir` at all. Every mutation the
    /// cache performs — storing (rename into the directory), clearing
    /// (unlinks) — bumps the directory mtime and invalidates the memo.
    /// A result is only memoized when the mtime strictly predates the
    /// scan's start *and* is unchanged after it (the racy-timestamp
    /// discipline git's index uses), so a store landing while the scan
    /// runs can never freeze a stale total into the memo. File-content
    /// edits that bypass the directory (rewriting an entry in place) are
    /// outside the cache's own write discipline and may be served stale
    /// until the directory itself changes.
    pub fn stats(&self) -> std::io::Result<CacheStats> {
        let dir_mtime = std::fs::metadata(&self.dir).and_then(|m| m.modified()).ok();
        if let (Some(mtime), Some((seen, memoized))) = (
            dir_mtime,
            *self
                .stats_memo
                .lock()
                .expect("stats memo lock not poisoned"),
        ) {
            if seen == mtime {
                return Ok(memoized);
            }
        }
        let scan_started = SystemTime::now();
        self.stats_scans.fetch_add(1, Ordering::Relaxed);
        let mut stats = CacheStats {
            entries: 0,
            bytes: 0,
        };
        let read = match std::fs::read_dir(&self.dir) {
            Ok(read) => read,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(stats),
            Err(e) => return Err(e),
        };
        for entry in read {
            let entry = entry?;
            if Self::is_entry_file(&entry.path()) {
                stats.entries += 1;
                stats.bytes += entry.metadata()?.len();
            }
        }
        if let Some(mtime) = dir_mtime {
            let quiescent = mtime < scan_started
                && std::fs::metadata(&self.dir)
                    .and_then(|m| m.modified())
                    .is_ok_and(|after| after == mtime);
            if quiescent {
                *self
                    .stats_memo
                    .lock()
                    .expect("stats memo lock not poisoned") = Some((mtime, stats));
            }
        }
        Ok(stats)
    }

    /// Directory scans [`ArtifactCache::stats`] actually performed —
    /// calls served from the mtime memo do not count.
    pub fn stats_scans(&self) -> u64 {
        self.stats_scans.load(Ordering::Relaxed)
    }

    /// Deletes every cache entry file and returns how many were removed.
    /// Only `*.entry` files are touched; anything else in the
    /// directory (and the directory itself) is left alone.
    pub fn clear(&self) -> std::io::Result<usize> {
        let mut removed = 0;
        let read = match std::fs::read_dir(&self.dir) {
            Ok(read) => read,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        for entry in read {
            let path = entry?.path();
            if Self::is_entry_file(&path) {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    fn is_entry_file(path: &Path) -> bool {
        path.is_file()
            && path.extension().is_some_and(|e| e == "entry")
            && path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| !n.starts_with('.'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Table;
    use crate::registry;

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "artifact-cache-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_artifacts() -> Vec<Artifact> {
        let mut t = Table::new("T0", "demo", &["k", "v"]);
        t.push_row(vec!["a".to_string(), "1.25".to_string()]);
        vec![Artifact::Table(t)]
    }

    fn sample_key() -> CacheKey {
        let e = registry::find("T1").unwrap();
        CacheKey::new(e, Scale::Quick, 42, "{\"c\":1}", "{\"p\":0.95}")
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn round_trip_hits_after_store() {
        let cache = ArtifactCache::new(temp_dir("roundtrip"));
        let key = sample_key();
        assert_eq!(cache.lookup(&key), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.store(&key, &sample_artifacts()).unwrap();
        assert_eq!(cache.lookup(&key), Some(sample_artifacts()));
        assert_eq!((cache.hits(), cache.stored()), (1, 1));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_changes_with_every_input() {
        let e = registry::find("T1").unwrap();
        let base = CacheKey::new(e, Scale::Quick, 42, "{}", "{}");
        let seed = CacheKey::new(e, Scale::Quick, 43, "{}", "{}");
        let scale = CacheKey::new(e, Scale::Paper, 42, "{}", "{}");
        let campaign = CacheKey::new(e, Scale::Quick, 42, "{\"days\":9}", "{}");
        let confirm = CacheKey::new(e, Scale::Quick, 42, "{}", "{\"c\":300}");
        let other = CacheKey::new(registry::find("T2").unwrap(), Scale::Quick, 42, "{}", "{}");
        let prints: Vec<u64> = [&base, &seed, &scale, &campaign, &confirm, &other]
            .iter()
            .map(|k| k.fingerprint())
            .collect();
        let mut unique = prints.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), prints.len(), "all fingerprints differ");
        // Same inputs address the same entry.
        assert_eq!(
            base.fingerprint(),
            CacheKey::new(e, Scale::Quick, 42, "{}", "{}").fingerprint()
        );
    }

    #[test]
    fn file_name_is_content_addressed() {
        let key = sample_key();
        let name = key.file_name();
        assert!(name.starts_with("T1-"));
        assert!(name.ends_with(".entry"));
        assert!(name.contains(&format!("{:016x}", key.fingerprint())));
    }

    #[test]
    fn corrupt_entries_invalidate_instead_of_panicking() {
        let cache = ArtifactCache::new(temp_dir("corrupt"));
        let key = sample_key();
        cache.store(&key, &sample_artifacts()).unwrap();
        let path = cache.dir().join(key.file_name());

        // Truncation: cut the file in half.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.lookup(&key), None);
        assert_eq!(cache.invalidated(), 1);

        // Checksum flip: well-formed envelope, wrong digest.
        let mut lines: Vec<&str> = full.splitn(8, '\n').collect();
        lines[5] = "checksum 0000000000000000";
        std::fs::write(&path, lines.join("\n")).unwrap();
        assert_eq!(cache.lookup(&key), None);
        assert_eq!(cache.invalidated(), 2);

        // Stale schema version.
        let mut lines: Vec<&str> = full.splitn(8, '\n').collect();
        let bumped = format!("schema {}", CACHE_SCHEMA_VERSION + 1);
        lines[1] = &bumped;
        std::fs::write(&path, lines.join("\n")).unwrap();
        assert_eq!(cache.lookup(&key), None);
        assert_eq!(cache.invalidated(), 3);

        // Rewriting repairs the entry.
        cache.store(&key, &sample_artifacts()).unwrap();
        assert_eq!(cache.lookup(&key), Some(sample_artifacts()));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn for_params_addresses_the_same_entry_as_for_context() {
        let ctx = Context::new(Scale::Quick, 7);
        for id in ["T1", "F6"] {
            let e = registry::find(id).unwrap();
            let from_ctx = CacheKey::for_context(e, &ctx);
            let from_params = CacheKey::for_params(e, Scale::Quick, 7);
            assert_eq!(from_ctx, from_params, "{id}: params path must agree");
        }
        // And the params path still separates seeds and scales.
        let e = registry::find("T1").unwrap();
        assert_ne!(
            CacheKey::for_params(e, Scale::Quick, 7).fingerprint(),
            CacheKey::for_params(e, Scale::Quick, 8).fingerprint()
        );
        assert_ne!(
            CacheKey::for_params(e, Scale::Quick, 7).fingerprint(),
            CacheKey::for_params(e, Scale::Paper, 7).fingerprint()
        );
    }

    #[test]
    fn stats_memoizes_scans_by_directory_mtime() {
        let cache = ArtifactCache::new(temp_dir("memo"));
        cache.store(&sample_key(), &sample_artifacts()).unwrap();
        // Let the directory mtime fall strictly behind the scan start so
        // the quiescence rule can engage (Linux filesystems keep
        // nanosecond mtimes; the sleep is belt and braces).
        std::thread::sleep(std::time::Duration::from_millis(50));
        let first = cache.stats().unwrap();
        assert_eq!(cache.stats_scans(), 1);
        // Unchanged directory: served from the memo, no new scan.
        assert_eq!(cache.stats().unwrap(), first);
        assert_eq!(cache.stats_scans(), 1, "second call must not rescan");
        // Proof it really is the memo: growing an entry file *in place*
        // leaves the directory mtime alone, so the stale byte total is
        // returned (the documented trade-off) without a scan.
        let entry = cache.dir().join(sample_key().file_name());
        let mut grown = std::fs::read_to_string(&entry).unwrap();
        grown.push_str("tail");
        std::fs::write(&entry, &grown).unwrap();
        assert_eq!(cache.stats().unwrap(), first);
        assert_eq!(cache.stats_scans(), 1);
        // A store renames a new entry into the directory, bumping its
        // mtime: the memo invalidates and the rescan sees everything.
        let other = CacheKey::new(registry::find("T2").unwrap(), Scale::Quick, 42, "{}", "{}");
        cache.store(&other, &sample_artifacts()).unwrap();
        let after = cache.stats().unwrap();
        assert_eq!(cache.stats_scans(), 2);
        assert_eq!(after.entries, 2);
        assert!(after.bytes > first.bytes);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stats_and_clear_cover_only_entry_files() {
        let cache = ArtifactCache::new(temp_dir("stats"));
        assert_eq!(
            cache.stats().unwrap(),
            CacheStats {
                entries: 0,
                bytes: 0
            }
        );
        cache.store(&sample_key(), &sample_artifacts()).unwrap();
        std::fs::write(cache.dir().join("README"), "not an entry").unwrap();
        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        assert_eq!(cache.clear().unwrap(), 1);
        assert_eq!(cache.stats().unwrap().entries, 0);
        assert!(cache.dir().join("README").exists(), "non-entries survive");
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
