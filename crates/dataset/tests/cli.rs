//! Integration tests driving the `campaign` binary as a subprocess.

use std::process::Command;

fn campaign() -> Command {
    Command::new(env!("CARGO_BIN_EXE_campaign"))
}

#[test]
fn default_run_prints_overview() {
    let out = campaign().output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("16500 measurements"));
    assert!(stdout.contains("mem-triad"));
}

#[test]
fn csv_export_round_trips_through_the_library() {
    let path = std::env::temp_dir().join(format!("campaign-cli-test-{}.csv", std::process::id()));
    let out = campaign()
        .args(["--seed", "9", "--out", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let file = std::fs::File::open(&path).unwrap();
    let store = dataset::read_csv(file).unwrap();
    assert_eq!(store.len(), 16500);
    assert_eq!(store.machines().len(), 30);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bad_arguments_fail_cleanly() {
    for args in [
        vec!["--scale", "giant"],
        vec!["--seed", "x"],
        vec!["--bogus"],
    ] {
        let out = campaign().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "{args:?} should fail");
    }
}
