//! Dataset-level summaries, built as streaming folds.
//!
//! The campaign overview the paper's data section opens with — and the
//! per-(type, benchmark) descriptive statistics everything downstream
//! starts from — are computed by folding **mergeable partial summaries**
//! over the data one machine shard at a time (DESIGN.md §11):
//!
//! * [`OverviewBuilder`] accumulates the dataset overview
//!   (counts, day range, per-benchmark totals) record by record;
//! * [`PartialSummary`] accumulates one (type, benchmark) group as exact
//!   moments (count/mean/M2/M3/M4/min/max via [`varstats::Moments`])
//!   plus a mergeable [`Histogram`] for approximate quantiles.
//!
//! Both are order-insensitive in their exact fields and merge
//! associatively, so the same fold runs over a materialized [`Store`]
//! (see [`overview`] / [`summarize_groups`], which are now thin folds)
//! or over a [`crate::ShardReader`] replay with O(shard) live memory.
//! Approximate quantiles come from histogram merges, which are
//! deterministic for a fixed fold order — the data path always folds in
//! ascending machine-id order ([`crate::store::sorted_machine_ids`]).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use testbed::MachineId;
use varstats::error::Result;
use varstats::histogram::{BinRule, Histogram};
use varstats::Moments;
use workloads::BenchmarkId;

use crate::record::Record;
use crate::store::Store;

/// Bin count for the mergeable per-group histograms. Fixed (rather than
/// data-driven) so shard-level histograms share a resolution and merge
/// losslessly in count, with quantile error bounded by one bin width.
const SUMMARY_BINS: usize = 64;

/// Overview counts of a campaign dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetOverview {
    /// Total measurements.
    pub measurements: usize,
    /// Distinct machines.
    pub machines: usize,
    /// Distinct machine types.
    pub machine_types: usize,
    /// Distinct benchmarks.
    pub benchmarks: usize,
    /// First measurement day.
    pub first_day: f64,
    /// Last measurement day.
    pub last_day: f64,
    /// Measurements per benchmark, in [`Store::benchmarks`] order.
    pub per_benchmark: Vec<(BenchmarkId, usize)>,
}

/// Mergeable accumulator behind [`DatasetOverview`] — the streaming
/// fold's state. Holds one entry per distinct machine/type/benchmark
/// (never per record), so its size is O(fleet metadata), not O(data).
#[derive(Debug, Clone, Default)]
pub struct OverviewBuilder {
    measurements: usize,
    machines: BTreeSet<MachineId>,
    machine_types: BTreeSet<String>,
    per_benchmark: BTreeMap<BenchmarkId, usize>,
    first_day: f64,
    last_day: f64,
}

impl OverviewBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        OverviewBuilder {
            first_day: f64::INFINITY,
            last_day: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Folds one record in.
    pub fn observe(&mut self, r: &Record) {
        self.measurements += 1;
        self.machines.insert(r.machine);
        if !self.machine_types.contains(r.machine_type.as_str()) {
            self.machine_types.insert(r.machine_type.clone());
        }
        *self.per_benchmark.entry(r.benchmark).or_insert(0) += 1;
        self.first_day = self.first_day.min(r.day);
        self.last_day = self.last_day.max(r.day);
    }

    /// Folds a whole shard in.
    pub fn observe_records(&mut self, records: &[Record]) {
        for r in records {
            self.observe(r);
        }
    }

    /// Merges another builder (e.g. from a sibling shard range) into
    /// this one. Exact: every overview field is order-insensitive.
    pub fn merge(&mut self, other: &OverviewBuilder) {
        self.measurements += other.measurements;
        self.machines.extend(other.machines.iter().copied());
        self.machine_types
            .extend(other.machine_types.iter().cloned());
        for (&b, &n) in &other.per_benchmark {
            *self.per_benchmark.entry(b).or_insert(0) += n;
        }
        self.first_day = self.first_day.min(other.first_day);
        self.last_day = self.last_day.max(other.last_day);
    }

    /// Finishes the fold.
    pub fn finish(&self) -> DatasetOverview {
        DatasetOverview {
            measurements: self.measurements,
            machines: self.machines.len(),
            machine_types: self.machine_types.len(),
            benchmarks: self.per_benchmark.len(),
            first_day: if self.measurements == 0 {
                0.0
            } else {
                self.first_day
            },
            last_day: if self.measurements == 0 {
                0.0
            } else {
                self.last_day
            },
            per_benchmark: self.per_benchmark.iter().map(|(&b, &n)| (b, n)).collect(),
        }
    }
}

/// Builds the overview of a materialized store — the same fold the
/// streaming path runs shard by shard.
pub fn overview(store: &Store) -> DatasetOverview {
    let mut b = OverviewBuilder::new();
    b.observe_records(store.records());
    b.finish()
}

/// Mergeable partial summary of one measurement group: exact moments
/// (count, mean, M2/M3/M4, min, max) plus a fixed-resolution histogram
/// for approximate quantiles. One of these per (type, benchmark) group
/// is the entire analysis-side state of the streaming summarizer.
#[derive(Debug, Clone)]
pub struct PartialSummary {
    /// Exact running moments (Welford update, exact parallel merge).
    pub moments: Moments,
    /// Mergeable histogram of everything observed (`None` until the
    /// first non-empty batch).
    pub histogram: Option<Histogram>,
}

impl Default for PartialSummary {
    fn default() -> Self {
        // `Moments::new()`, not the derived zeros: min/max sentinels
        // must start at ±infinity for the first update to take.
        PartialSummary {
            moments: Moments::new(),
            histogram: None,
        }
    }
}

impl PartialSummary {
    /// Starts an empty partial.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one shard's values for this group into the partial: exact
    /// moment updates plus one shard-level histogram merged in.
    ///
    /// # Errors
    ///
    /// Rejects non-finite values (histograms cannot bin them).
    pub fn observe_values(&mut self, values: &[f64]) -> Result<()> {
        if values.is_empty() {
            return Ok(());
        }
        let shard = Histogram::new(values, BinRule::Fixed(SUMMARY_BINS))?;
        for &v in values {
            self.moments.update(v);
        }
        self.histogram = Some(match self.histogram.take() {
            Some(h) => h.merge(&shard),
            None => shard,
        });
        Ok(())
    }

    /// Merges another partial (e.g. the same group from another shard
    /// range). Moments merge exactly; histograms merge with quantile
    /// error bounded by one bin width.
    pub fn merge(&mut self, other: &PartialSummary) {
        self.moments.merge(&other.moments);
        if let Some(theirs) = &other.histogram {
            self.histogram = Some(match self.histogram.take() {
                Some(h) => h.merge(theirs),
                None => theirs.clone(),
            });
        }
    }

    /// Finishes the partial into reportable statistics, or `None` if
    /// nothing was observed.
    pub fn finish(&self) -> Option<GroupStats> {
        let h = self.histogram.as_ref()?;
        Some(GroupStats {
            count: self.moments.count(),
            mean: self.moments.mean(),
            std_dev: self.moments.std_dev(),
            cov: self.moments.cov().unwrap_or(0.0),
            min: self.moments.min(),
            max: self.moments.max(),
            approx_median: h.approx_quantile(0.5).unwrap_or(self.moments.mean()),
            approx_p95: h.approx_quantile(0.95).unwrap_or(self.moments.max()),
            approx_p99: h.approx_quantile(0.99).unwrap_or(self.moments.max()),
        })
    }
}

/// Finished statistics of one (type, benchmark) group. The first six
/// fields are exact regardless of sharding; the quantiles are
/// histogram-approximate with error bounded by one bin width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Number of measurements.
    pub count: u64,
    /// Arithmetic mean (exact).
    pub mean: f64,
    /// Sample standard deviation (exact).
    pub std_dev: f64,
    /// Coefficient of variation (exact; 0 for zero-mean groups).
    pub cov: f64,
    /// Minimum (exact).
    pub min: f64,
    /// Maximum (exact).
    pub max: f64,
    /// Approximate median.
    pub approx_median: f64,
    /// Approximate 95th percentile.
    pub approx_p95: f64,
    /// Approximate 99th percentile.
    pub approx_p99: f64,
}

/// A per-(machine-type, benchmark) summary row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Machine type.
    pub machine_type: String,
    /// Benchmark.
    pub benchmark: BenchmarkId,
    /// Statistics of all measurements in the group.
    pub stats: GroupStats,
}

/// Folds one shard's records into a map of per-(type, benchmark)
/// partials — the inner step of [`summarize_groups`] and of the
/// streaming summarizer. Scratch memory is O(shard).
///
/// # Errors
///
/// Rejects non-finite measurement values.
pub fn observe_shard_groups(
    acc: &mut BTreeMap<(String, BenchmarkId), PartialSummary>,
    records: &[Record],
) -> Result<()> {
    let mut local: BTreeMap<(&str, BenchmarkId), Vec<f64>> = BTreeMap::new();
    for r in records {
        local
            .entry((r.machine_type.as_str(), r.benchmark))
            .or_default()
            .push(r.value);
    }
    for ((machine_type, benchmark), values) in local {
        acc.entry((machine_type.to_string(), benchmark))
            .or_default()
            .observe_values(&values)?;
    }
    Ok(())
}

/// Finishes a partial-summary map into rows (sorted by type, then
/// benchmark), keeping groups with at least `min_samples` measurements.
pub fn finish_groups(
    acc: &BTreeMap<(String, BenchmarkId), PartialSummary>,
    min_samples: usize,
) -> Vec<GroupSummary> {
    acc.iter()
        .filter_map(|((machine_type, benchmark), partial)| {
            let stats = partial.finish()?;
            (stats.count >= min_samples.max(1) as u64).then(|| GroupSummary {
                machine_type: machine_type.clone(),
                benchmark: *benchmark,
                stats,
            })
        })
        .collect()
}

/// Summarizes every (type, benchmark) group with at least `min_samples`
/// measurements — the materialized entry point of the same shard-major
/// fold the streaming path runs: records are visited in per-machine
/// chunks, each chunk contributing one mergeable partial per group.
///
/// # Errors
///
/// Rejects non-finite measurement values.
pub fn summarize_groups(store: &Store, min_samples: usize) -> Result<Vec<GroupSummary>> {
    let mut acc = BTreeMap::new();
    for run in store.records().chunk_by(|a, b| a.machine == b.machine) {
        observe_shard_groups(&mut acc, run)?;
    }
    Ok(finish_groups(&acc, min_samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};

    #[test]
    fn overview_counts_are_consistent() {
        let config = CampaignConfig::quick(9);
        let (_, store) = run_campaign(&config);
        let o = overview(&store);
        assert_eq!(o.measurements, store.len());
        assert_eq!(o.machines, 30);
        assert_eq!(o.machine_types, 10);
        assert_eq!(o.benchmarks, 11);
        assert_eq!(o.first_day, 0.0);
        assert!(o.last_day >= 240.0);
        let sum: usize = o.per_benchmark.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, o.measurements);
    }

    #[test]
    fn overview_merge_equals_one_pass() {
        let (_, store) = run_campaign(&CampaignConfig::quick(21));
        let records = store.records();
        let mut whole = OverviewBuilder::new();
        whole.observe_records(records);
        let (left, right) = records.split_at(records.len() / 3);
        let mut a = OverviewBuilder::new();
        a.observe_records(left);
        let mut b = OverviewBuilder::new();
        b.observe_records(right);
        a.merge(&b);
        assert_eq!(a.finish(), whole.finish());
    }

    #[test]
    fn group_summaries_cover_the_grid() {
        let (_, store) = run_campaign(&CampaignConfig::quick(10));
        let groups = summarize_groups(&store, 10).unwrap();
        assert_eq!(groups.len(), 10 * 11);
        for g in &groups {
            assert!(g.stats.count >= 10);
            assert!(g.stats.min <= g.stats.approx_median);
            assert!(g.stats.approx_median <= g.stats.max);
            assert!(g.stats.approx_p95 <= g.stats.max);
        }
    }

    #[test]
    fn exact_fields_match_the_exact_summary() {
        let (_, store) = run_campaign(&CampaignConfig::quick(12));
        let groups = summarize_groups(&store, 1).unwrap();
        for g in groups.iter().take(5) {
            let values = store
                .filter()
                .machine_type(&g.machine_type)
                .benchmark(g.benchmark)
                .values();
            let exact = varstats::Summary::from_slice(&values).unwrap();
            assert_eq!(g.stats.count as usize, exact.n);
            assert!((g.stats.mean - exact.mean).abs() < 1e-9 * exact.mean.abs());
            assert!((g.stats.std_dev - exact.std_dev).abs() < 1e-6 * exact.std_dev.abs());
            assert_eq!(g.stats.min, exact.min);
            assert_eq!(g.stats.max, exact.max);
            // Approximate quantiles stay within one merged-bin width.
            let span = g.stats.max - g.stats.min;
            assert!((g.stats.approx_median - exact.median).abs() <= span / 8.0);
        }
    }

    #[test]
    fn partial_merge_matches_single_fold_exactly_in_moments() {
        let values: Vec<f64> = (0..500).map(|i| 50.0 + ((i * 13) % 97) as f64).collect();
        let mut whole = PartialSummary::new();
        whole.observe_values(&values).unwrap();
        let mut a = PartialSummary::new();
        a.observe_values(&values[..200]).unwrap();
        let mut b = PartialSummary::new();
        b.observe_values(&values[200..]).unwrap();
        a.merge(&b);
        assert_eq!(a.moments.count(), whole.moments.count());
        assert_eq!(a.moments.min(), whole.moments.min());
        assert_eq!(a.moments.max(), whole.moments.max());
        assert!((a.moments.mean() - whole.moments.mean()).abs() < 1e-9);
        let sa = a.finish().unwrap();
        let sw = whole.finish().unwrap();
        assert!((sa.std_dev - sw.std_dev).abs() < 1e-6);
        assert_eq!(
            a.histogram.unwrap().n,
            500,
            "histogram counts survive the merge"
        );
        let _ = sw;
    }

    #[test]
    fn min_samples_filters_groups() {
        let (_, store) = run_campaign(&CampaignConfig::quick(11));
        let all = summarize_groups(&store, 1).unwrap();
        let none = summarize_groups(&store, usize::MAX).unwrap();
        assert!(!all.is_empty());
        assert!(none.is_empty());
    }

    #[test]
    fn empty_store_overview() {
        let store = Store::new();
        let o = overview(&store);
        assert_eq!(o.measurements, 0);
        assert_eq!(o.first_day, 0.0);
        assert_eq!(o.last_day, 0.0);
    }
}
