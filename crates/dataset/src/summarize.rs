//! Dataset-level summaries.
//!
//! The campaign overview the paper's data section opens with: how many
//! measurements, over how many machines and sessions, and the per-group
//! descriptive statistics everything downstream starts from.

use serde::{Deserialize, Serialize};
use varstats::error::Result;
use varstats::Summary;
use workloads::BenchmarkId;

use crate::store::Store;

/// Overview counts of a campaign dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetOverview {
    /// Total measurements.
    pub measurements: usize,
    /// Distinct machines.
    pub machines: usize,
    /// Distinct machine types.
    pub machine_types: usize,
    /// Distinct benchmarks.
    pub benchmarks: usize,
    /// First measurement day.
    pub first_day: f64,
    /// Last measurement day.
    pub last_day: f64,
    /// Measurements per benchmark, in [`Store::benchmarks`] order.
    pub per_benchmark: Vec<(BenchmarkId, usize)>,
}

/// Builds the overview.
pub fn overview(store: &Store) -> DatasetOverview {
    let mut first_day = f64::INFINITY;
    let mut last_day = f64::NEG_INFINITY;
    for r in store.records() {
        first_day = first_day.min(r.day);
        last_day = last_day.max(r.day);
    }
    if store.is_empty() {
        first_day = 0.0;
        last_day = 0.0;
    }
    let per_benchmark = store
        .benchmarks()
        .into_iter()
        .map(|b| (b, store.filter().benchmark(b).count()))
        .collect();
    DatasetOverview {
        measurements: store.len(),
        machines: store.machines().len(),
        machine_types: store.machine_types().len(),
        benchmarks: store.benchmarks().len(),
        first_day,
        last_day,
        per_benchmark,
    }
}

/// A per-(machine-type, benchmark) descriptive summary row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Machine type.
    pub machine_type: String,
    /// Benchmark.
    pub benchmark: BenchmarkId,
    /// Descriptive summary of all measurements in the group.
    pub summary: Summary,
}

/// Summarizes every (type, benchmark) group with at least `min_samples`
/// measurements.
///
/// # Errors
///
/// Propagates summary errors (cannot occur for non-empty groups).
pub fn summarize_groups(store: &Store, min_samples: usize) -> Result<Vec<GroupSummary>> {
    let mut out = Vec::new();
    for machine_type in store.machine_types() {
        for benchmark in store.benchmarks() {
            let values = store
                .filter()
                .machine_type(&machine_type)
                .benchmark(benchmark)
                .values();
            if values.len() < min_samples.max(1) {
                continue;
            }
            out.push(GroupSummary {
                machine_type: machine_type.clone(),
                benchmark,
                summary: Summary::from_slice(&values)?,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};

    #[test]
    fn overview_counts_are_consistent() {
        let config = CampaignConfig::quick(9);
        let (_, store) = run_campaign(&config);
        let o = overview(&store);
        assert_eq!(o.measurements, store.len());
        assert_eq!(o.machines, 30);
        assert_eq!(o.machine_types, 10);
        assert_eq!(o.benchmarks, 11);
        assert_eq!(o.first_day, 0.0);
        assert!(o.last_day >= 240.0);
        let sum: usize = o.per_benchmark.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, o.measurements);
    }

    #[test]
    fn group_summaries_cover_the_grid() {
        let (_, store) = run_campaign(&CampaignConfig::quick(10));
        let groups = summarize_groups(&store, 10).unwrap();
        assert_eq!(groups.len(), 10 * 11);
        for g in &groups {
            assert!(g.summary.n >= 10);
            assert!(g.summary.min <= g.summary.median);
            assert!(g.summary.median <= g.summary.max);
        }
    }

    #[test]
    fn min_samples_filters_groups() {
        let (_, store) = run_campaign(&CampaignConfig::quick(11));
        let all = summarize_groups(&store, 1).unwrap();
        let none = summarize_groups(&store, usize::MAX).unwrap();
        assert!(!all.is_empty());
        assert!(none.is_empty());
    }

    #[test]
    fn empty_store_overview() {
        let store = Store::new();
        let o = overview(&store);
        assert_eq!(o.measurements, 0);
        assert_eq!(o.first_day, 0.0);
        assert_eq!(o.last_day, 0.0);
    }
}
