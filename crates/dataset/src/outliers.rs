//! Outlier flagging for measurement datasets.
//!
//! The paper's campaign had to cope with pathological runs (dying disks,
//! mid-benchmark maintenance). Two standard robust fences are provided —
//! Tukey's IQR fence and the MAD z-score — plus a dataset-level sweep
//! that reports per-(machine, benchmark) outlier fractions, which is
//! itself a health signal for a fleet.

use serde::{Deserialize, Serialize};
use varstats::descriptive::mad;
use varstats::error::{check_finite, invalid, Result};
use varstats::quantile::{median, quantile, QuantileMethod};
use workloads::BenchmarkId;

use crate::store::Store;

/// Which fence to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fence {
    /// Tukey: outside `[q1 - k * IQR, q3 + k * IQR]` (classic `k = 1.5`).
    Tukey {
        /// IQR multiplier.
        k: f64,
    },
    /// Robust z-score: `|x - median| / MAD > threshold` (typical 3.5).
    MadZ {
        /// Threshold on the robust z-score.
        threshold: f64,
    },
}

/// Returns the indices of outliers in `data` under `fence`.
///
/// A zero-spread dataset (IQR or MAD of 0) has no detectable outliers by
/// these fences and returns an empty vector.
///
/// # Errors
///
/// Returns an error on invalid input or non-positive fence parameters.
///
/// # Examples
///
/// ```
/// use dataset::{outlier_indices, Fence};
///
/// let mut runs: Vec<f64> = (0..20).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
/// runs.push(100.0);
/// let out = outlier_indices(&runs, Fence::MadZ { threshold: 3.5 }).unwrap();
/// assert_eq!(out, vec![20]);
/// ```
pub fn outlier_indices(data: &[f64], fence: Fence) -> Result<Vec<usize>> {
    check_finite(data)?;
    match fence {
        Fence::Tukey { k } => {
            if k <= 0.0 || !k.is_finite() {
                return Err(invalid("k", format!("must be > 0, got {k}")));
            }
            let q1 = quantile(data, 0.25, QuantileMethod::Linear)?;
            let q3 = quantile(data, 0.75, QuantileMethod::Linear)?;
            let iqr = q3 - q1;
            if iqr <= 0.0 {
                return Ok(Vec::new());
            }
            let lo = q1 - k * iqr;
            let hi = q3 + k * iqr;
            Ok(data
                .iter()
                .enumerate()
                .filter(|(_, &x)| x < lo || x > hi)
                .map(|(i, _)| i)
                .collect())
        }
        Fence::MadZ { threshold } => {
            if threshold <= 0.0 || !threshold.is_finite() {
                return Err(invalid(
                    "threshold",
                    format!("must be > 0, got {threshold}"),
                ));
            }
            let med = median(data)?;
            let m = mad(data)?;
            if m <= 0.0 {
                return Ok(Vec::new());
            }
            Ok(data
                .iter()
                .enumerate()
                .filter(|(_, &x)| ((x - med) / m).abs() > threshold)
                .map(|(i, _)| i)
                .collect())
        }
    }
}

/// Per-(machine, benchmark) outlier fraction across a store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutlierReport {
    /// Benchmark.
    pub benchmark: BenchmarkId,
    /// Number of sample sets inspected.
    pub sets: usize,
    /// Total measurements inspected.
    pub measurements: usize,
    /// Total outliers flagged.
    pub outliers: usize,
    /// The single worst set's outlier fraction.
    pub worst_set_fraction: f64,
}

impl OutlierReport {
    /// Overall outlier fraction.
    pub fn fraction(&self) -> f64 {
        if self.measurements == 0 {
            0.0
        } else {
            self.outliers as f64 / self.measurements as f64
        }
    }
}

/// Streaming accumulator behind [`outlier_sweep`].
///
/// Outlier fences need a *complete* per-(machine, benchmark) sample set,
/// and the shard journal keeps each machine's data whole — so the sweep
/// streams one shard at a time, feeding each machine's per-benchmark
/// sets through [`SweepBuilder::observe_set`]. Every accumulated field
/// is a sum or a max, so the result is exactly the materialized sweep's
/// regardless of shard order; state is O(benchmarks), not O(data).
#[derive(Debug, Clone)]
pub struct SweepBuilder {
    fence: Fence,
    acc: std::collections::BTreeMap<BenchmarkId, OutlierReport>,
}

impl SweepBuilder {
    /// Starts an empty sweep under `fence`.
    pub fn new(fence: Fence) -> Self {
        SweepBuilder {
            fence,
            acc: std::collections::BTreeMap::new(),
        }
    }

    /// Folds in one complete (machine, benchmark) sample set. Sets with
    /// fewer than 8 samples are recorded as seen but not fenced, same
    /// as the materialized sweep.
    ///
    /// # Errors
    ///
    /// Propagates fence errors.
    pub fn observe_set(&mut self, benchmark: BenchmarkId, values: &[f64]) -> Result<()> {
        let report = self.acc.entry(benchmark).or_insert(OutlierReport {
            benchmark,
            sets: 0,
            measurements: 0,
            outliers: 0,
            worst_set_fraction: 0.0,
        });
        if values.len() < 8 {
            return Ok(());
        }
        let flagged = outlier_indices(values, self.fence)?.len();
        report.sets += 1;
        report.measurements += values.len();
        report.outliers += flagged;
        report.worst_set_fraction = report
            .worst_set_fraction
            .max(flagged as f64 / values.len() as f64);
        Ok(())
    }

    /// Folds in one machine shard, splitting its records into
    /// per-benchmark sets in record order.
    ///
    /// # Errors
    ///
    /// Propagates fence errors.
    pub fn observe_shard(&mut self, records: &[crate::record::Record]) -> Result<()> {
        let mut sets: std::collections::BTreeMap<BenchmarkId, Vec<f64>> =
            std::collections::BTreeMap::new();
        for r in records {
            sets.entry(r.benchmark).or_default().push(r.value);
        }
        for (benchmark, values) in sets {
            self.observe_set(benchmark, &values)?;
        }
        Ok(())
    }

    /// Finishes the sweep: one report per benchmark seen, in
    /// [`BenchmarkId`] order.
    pub fn finish(self) -> Vec<OutlierReport> {
        self.acc.into_values().collect()
    }
}

/// Sweeps the store and reports outlier fractions per benchmark — the
/// materialized entry point of the same per-shard fold the streaming
/// path runs through [`SweepBuilder`].
///
/// # Errors
///
/// Propagates fence errors.
pub fn outlier_sweep(store: &Store, fence: Fence) -> Result<Vec<OutlierReport>> {
    let mut sweep = SweepBuilder::new(fence);
    for run in store.records().chunk_by(|a, b| a.machine == b.machine) {
        sweep.observe_shard(run)?;
    }
    Ok(sweep.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};

    #[test]
    fn tukey_flags_a_planted_outlier() {
        let mut data: Vec<f64> = (0..40).map(|i| 100.0 + (i % 7) as f64).collect();
        data.push(500.0);
        let out = outlier_indices(&data, Fence::Tukey { k: 1.5 }).unwrap();
        assert_eq!(out, vec![40]);
    }

    #[test]
    fn clean_uniform_data_has_no_tukey_outliers() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(outlier_indices(&data, Fence::Tukey { k: 1.5 })
            .unwrap()
            .is_empty());
    }

    #[test]
    fn madz_is_robust_to_many_outliers() {
        // 20% contamination: the MAD fence still sees the planted points.
        let mut data = vec![10.0, 10.1, 10.2, 9.9, 9.8, 10.0, 10.1, 9.95];
        data.extend([50.0, 55.0]);
        let out = outlier_indices(&data, Fence::MadZ { threshold: 3.5 }).unwrap();
        assert_eq!(out, vec![8, 9]);
    }

    #[test]
    fn zero_spread_has_no_outliers() {
        let data = vec![5.0; 30];
        assert!(outlier_indices(&data, Fence::Tukey { k: 1.5 })
            .unwrap()
            .is_empty());
        assert!(outlier_indices(&data, Fence::MadZ { threshold: 3.5 })
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sweep_orders_disk_above_network_bandwidth() {
        let (_, store) = run_campaign(&CampaignConfig::quick(7));
        let reports = outlier_sweep(&store, Fence::MadZ { threshold: 3.5 }).unwrap();
        let frac = |b: BenchmarkId| {
            reports
                .iter()
                .find(|r| r.benchmark == b)
                .unwrap()
                .fraction()
        };
        assert!(
            frac(BenchmarkId::NetLatency) > frac(BenchmarkId::NetBandwidth),
            "latency tail should out-flag throughput"
        );
        for r in &reports {
            assert!(r.sets > 0);
            assert!(r.worst_set_fraction <= 0.5);
        }
    }

    #[test]
    fn validation() {
        assert!(outlier_indices(&[], Fence::Tukey { k: 1.5 }).is_err());
        assert!(outlier_indices(&[1.0, 2.0], Fence::Tukey { k: 0.0 }).is_err());
        assert!(outlier_indices(&[1.0, 2.0], Fence::MadZ { threshold: -1.0 }).is_err());
    }
}
