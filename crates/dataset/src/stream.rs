//! Bounded-memory shard replay — the consumer half of the streaming
//! data path (DESIGN.md §11).
//!
//! A [`ShardReader`] sits over a completed [`ShardJournal`] and replays
//! one machine's records at a time, in the canonical ascending
//! machine-id order ([`crate::store::sorted_machine_ids`]) — the same
//! order campaign collection lays records into a materialized
//! [`crate::Store`]. Because each machine's records are a pure function
//! of the campaign configuration, folding over the stream visits exactly
//! the value sequences a materialized store would yield, which is what
//! makes streaming analysis byte-identical to materialized analysis.
//!
//! Memory is bounded by construction: a [`Shard`] is a guard that
//! registers its records with the reader's [`StreamStats`] on load and
//! releases them on drop, so the peak-residency accounting (and the
//! `stream.peak_live_samples` / `stream.shards_resident` telemetry
//! gauges) *prove* the bound — O(largest shard × concurrent consumers),
//! never O(fleet) — rather than assert it.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use testbed::MachineId;

use crate::campaign::CampaignConfig;
use crate::journal::{JournalError, ShardJournal};
use crate::record::Record;

/// Why a shard could not be streamed. Unlike collection-time replay —
/// where an invalid shard simply means "re-collect that machine" — the
/// streaming consumer runs over a journal that is supposed to be
/// complete, so a missing or corrupt shard is data loss, not a retry.
#[derive(Debug)]
pub enum StreamError {
    /// The journal could not be opened or listed.
    Journal(JournalError),
    /// A shard file is missing or failed validation (truncation, bad
    /// checksum, foreign config). Re-run collection (`--resume`) to heal
    /// the journal.
    ShardUnreadable {
        /// The machine whose shard could not be replayed.
        machine: MachineId,
        /// The journal directory.
        dir: PathBuf,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Journal(e) => write!(f, "stream: {e}"),
            StreamError::ShardUnreadable { machine, dir } => write!(
                f,
                "stream: shard for machine {} in {} is missing or corrupt; \
                 re-run collection with --resume to heal the journal",
                machine.0,
                dir.display()
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<JournalError> for StreamError {
    fn from(e: JournalError) -> Self {
        StreamError::Journal(e)
    }
}

/// Live residency accounting for one reader — the proof of the memory
/// bound. Shared by every [`Shard`] guard the reader hands out, updated
/// on load/drop, and mirrored to the `stream.peak_live_samples` and
/// `stream.shards_resident` telemetry gauges (plus peaks kept here, so
/// the run manifest can report them even when telemetry is disabled).
#[derive(Debug, Default)]
pub struct StreamStats {
    live_samples: AtomicU64,
    peak_live_samples: AtomicU64,
    shards_resident: AtomicU64,
    peak_shards_resident: AtomicU64,
    shards_streamed: AtomicU64,
}

impl StreamStats {
    fn acquire(&self, samples: u64) {
        let live = self.live_samples.fetch_add(samples, Ordering::Relaxed) + samples;
        self.peak_live_samples.fetch_max(live, Ordering::Relaxed);
        let resident = self.shards_resident.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_shards_resident
            .fetch_max(resident, Ordering::Relaxed);
        self.shards_streamed.fetch_add(1, Ordering::Relaxed);
        telemetry::metrics::gauge("stream.peak_live_samples")
            .set_max(self.peak_live_samples.load(Ordering::Relaxed) as f64);
        telemetry::metrics::gauge("stream.shards_resident").set(resident as f64);
    }

    fn release(&self, samples: u64) {
        self.live_samples.fetch_sub(samples, Ordering::Relaxed);
        let resident = self.shards_resident.fetch_sub(1, Ordering::Relaxed) - 1;
        telemetry::metrics::gauge("stream.shards_resident").set(resident as f64);
    }

    /// Records currently resident in guards.
    pub fn live_samples(&self) -> u64 {
        self.live_samples.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously resident records.
    pub fn peak_live_samples(&self) -> u64 {
        self.peak_live_samples.load(Ordering::Relaxed)
    }

    /// Shards currently held by live guards.
    pub fn shards_resident(&self) -> u64 {
        self.shards_resident.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously held shards.
    pub fn peak_shards_resident(&self) -> u64 {
        self.peak_shards_resident.load(Ordering::Relaxed)
    }

    /// Total shard replays performed (every `read`, across all passes).
    pub fn shards_streamed(&self) -> u64 {
        self.shards_streamed.load(Ordering::Relaxed)
    }
}

/// One machine's replayed records, alive only while analysis needs them.
///
/// Dropping the guard releases its residency from the reader's
/// [`StreamStats`]; holding several guards at once (e.g. all machines of
/// one type for a variance decomposition) is visible in the peaks.
#[derive(Debug)]
pub struct Shard {
    /// The machine this shard belongs to.
    pub machine: MachineId,
    records: Vec<Record>,
    stats: Arc<StreamStats>,
}

impl Shard {
    /// The replayed records, in collection order (benchmark-major, then
    /// session, then run — exactly the order a materialized store holds
    /// them).
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The values of one benchmark, in record order — identical to the
    /// per-machine vector `Store::group_by_machine` would yield.
    pub fn values(&self, benchmark: workloads::BenchmarkId) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.benchmark == benchmark)
            .map(|r| r.value)
            .collect()
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.stats.release(self.records.len() as u64);
    }
}

/// Replays a completed shard journal one machine at a time, in ascending
/// machine-id order, without ever materializing the full store.
#[derive(Debug, Clone)]
pub struct ShardReader {
    journal: ShardJournal,
    machines: Vec<MachineId>,
    stats: Arc<StreamStats>,
}

impl ShardReader {
    /// Opens a reader over the journal at `dir`, streaming every shard
    /// present (discovered by directory listing, replayed in ascending
    /// machine-id order).
    ///
    /// # Errors
    ///
    /// Fails if the journal cannot be opened (I/O, config mismatch) or
    /// listed.
    pub fn open(dir: impl Into<PathBuf>, config: &CampaignConfig) -> Result<Self, StreamError> {
        let journal = ShardJournal::open(dir, config)?;
        let machines = journal.machines()?;
        Ok(ShardReader {
            journal,
            machines,
            stats: Arc::new(StreamStats::default()),
        })
    }

    /// Opens a reader restricted to `machines` (normalized to the
    /// canonical sorted order). Use when the selection is known — e.g.
    /// right after [`crate::collect_to_journal`] — so a stray shard file
    /// can never widen the dataset.
    ///
    /// # Errors
    ///
    /// Fails if the journal cannot be opened (I/O, config mismatch).
    pub fn with_machines(
        dir: impl Into<PathBuf>,
        config: &CampaignConfig,
        machines: impl IntoIterator<Item = MachineId>,
    ) -> Result<Self, StreamError> {
        let journal = ShardJournal::open(dir, config)?;
        Ok(ShardReader {
            journal,
            machines: crate::store::sorted_machine_ids(machines),
            stats: Arc::new(StreamStats::default()),
        })
    }

    /// The machines this reader replays, ascending.
    pub fn machines(&self) -> &[MachineId] {
        &self.machines
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        self.journal.dir()
    }

    /// The residency accounting shared by all guards of this reader.
    pub fn stats(&self) -> Arc<StreamStats> {
        Arc::clone(&self.stats)
    }

    /// Total records across all shards, by envelope reads only — no
    /// payload is parsed or held.
    ///
    /// # Errors
    ///
    /// A missing or envelope-corrupt shard is [`StreamError::ShardUnreadable`].
    pub fn record_count(&self) -> Result<u64, StreamError> {
        let mut total = 0u64;
        for &m in &self.machines {
            let n = self
                .journal
                .record_count(m)
                .ok_or_else(|| self.unreadable(m))?;
            total += n as u64;
        }
        Ok(total)
    }

    /// Replays one machine's shard into a residency-tracked guard.
    ///
    /// # Errors
    ///
    /// A missing or invalid shard is [`StreamError::ShardUnreadable`] —
    /// the streaming consumer never silently narrows the dataset.
    pub fn read(&self, machine: MachineId) -> Result<Shard, StreamError> {
        let records = self
            .journal
            .load(machine)
            .ok_or_else(|| self.unreadable(machine))?;
        self.stats.acquire(records.len() as u64);
        Ok(Shard {
            machine,
            records,
            stats: Arc::clone(&self.stats),
        })
    }

    /// Iterates every shard in ascending machine-id order.
    pub fn stream(&self) -> MeasurementStream<'_> {
        MeasurementStream {
            reader: self,
            next: 0,
        }
    }

    fn unreadable(&self, machine: MachineId) -> StreamError {
        StreamError::ShardUnreadable {
            machine,
            dir: self.journal.dir().to_path_buf(),
        }
    }
}

/// Iterator over a [`ShardReader`]'s shards in ascending machine-id
/// order. Each item is independently loaded and dropped by the consumer,
/// so a plain `for` loop holds one shard at a time.
#[derive(Debug)]
pub struct MeasurementStream<'a> {
    reader: &'a ShardReader,
    next: usize,
}

impl Iterator for MeasurementStream<'_> {
    type Item = Result<Shard, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        let machine = *self.reader.machines.get(self.next)?;
        self.next += 1;
        Some(self.reader.read(machine))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.reader.machines.len() - self.next;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{collect_to_journal, CollectOptions};
    use crate::store::Store;
    use testbed::{catalog, Cluster, Timeline};

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stream-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_cluster(config: &CampaignConfig) -> Cluster {
        Cluster::provision(
            catalog(),
            config.scale,
            Timeline::cloudlab_default(),
            config.seed,
        )
    }

    #[test]
    fn stream_replays_the_materialized_store_in_order() {
        let dir = temp_dir("order");
        let config = CampaignConfig::quick(42);
        let cluster = quick_cluster(&config);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let options = CollectOptions {
            jobs: Some(2),
            journal: Some(&journal),
            faults: None,
            policy: Default::default(),
        };
        let report = collect_to_journal(&cluster, &config, &options).unwrap();
        assert_eq!(report.replayed, 0);
        assert!(report.collected > 0);

        // The same campaign, materialized the classic way.
        let golden = crate::campaign::collect_resumable(&cluster, &config, &options)
            .unwrap()
            .store;

        let reader = ShardReader::open(&dir, &config).unwrap();
        assert_eq!(reader.record_count().unwrap() as usize, golden.len());
        let mut replayed = Store::new();
        let mut last = None;
        for shard in reader.stream() {
            let shard = shard.unwrap();
            assert!(
                last.is_none_or(|prev| prev < shard.machine),
                "ascending ids"
            );
            last = Some(shard.machine);
            replayed.extend(shard.records().iter().cloned());
        }
        assert_eq!(replayed, golden, "stream order is store order");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn residency_is_bounded_by_one_shard_at_a_time() {
        let dir = temp_dir("bound");
        let config = CampaignConfig::quick(7);
        let cluster = quick_cluster(&config);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let options = CollectOptions {
            jobs: Some(1),
            journal: Some(&journal),
            faults: None,
            policy: Default::default(),
        };
        collect_to_journal(&cluster, &config, &options).unwrap();

        let reader = ShardReader::open(&dir, &config).unwrap();
        let stats = reader.stats();
        let mut largest = 0u64;
        for shard in reader.stream() {
            let shard = shard.unwrap();
            largest = largest.max(shard.records().len() as u64);
            assert_eq!(stats.shards_resident(), 1, "one guard live inside the loop");
        }
        assert_eq!(stats.live_samples(), 0, "everything released");
        assert_eq!(stats.shards_resident(), 0);
        assert_eq!(stats.peak_shards_resident(), 1, "never more than one shard");
        assert_eq!(
            stats.peak_live_samples(),
            largest,
            "peak is the largest shard, not the fleet"
        );
        assert_eq!(stats.shards_streamed(), reader.machines().len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_corrupt_shards_are_errors_not_silence() {
        let dir = temp_dir("corrupt");
        let config = CampaignConfig::quick(3);
        let cluster = quick_cluster(&config);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let options = CollectOptions {
            jobs: Some(1),
            journal: Some(&journal),
            faults: None,
            policy: Default::default(),
        };
        collect_to_journal(&cluster, &config, &options).unwrap();

        let reader = ShardReader::open(&dir, &config).unwrap();
        let victim = reader.machines()[0];
        let path = dir.join(format!("m{}.shard", victim.0));
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 3]).unwrap();
        let err = reader.read(victim).unwrap_err();
        assert!(matches!(err, StreamError::ShardUnreadable { machine, .. } if machine == victim));
        assert!(err.to_string().contains("--resume"));

        std::fs::remove_file(&path).unwrap();
        assert!(
            reader.read(victim).is_err(),
            "missing shard is an error too"
        );
        assert!(reader.record_count().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn with_machines_pins_the_selection() {
        let dir = temp_dir("pin");
        let config = CampaignConfig::quick(5);
        let cluster = quick_cluster(&config);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let options = CollectOptions {
            jobs: Some(1),
            journal: Some(&journal),
            faults: None,
            policy: Default::default(),
        };
        collect_to_journal(&cluster, &config, &options).unwrap();
        let all = ShardJournal::open(&dir, &config)
            .unwrap()
            .machines()
            .unwrap();
        let subset = vec![all[2], all[0], all[0]]; // unsorted, with a dup
        let reader = ShardReader::with_machines(&dir, &config, subset).unwrap();
        assert_eq!(reader.machines(), &[all[0], all[2]], "sorted + deduped");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
