//! Fault-tolerant multi-process distributed collection — supervisor,
//! worker leases, heartbeats, and shard reassignment over a journal
//! exchange directory (DESIGN.md §12).
//!
//! The paper's campaign ran ~900 machines for ten months; at that scale
//! worker death is routine, not exceptional. This module generalizes the
//! threaded collector to a *fleet of processes* coordinating through a
//! shared **exchange directory** with no channels, locks, or sockets —
//! only atomic filesystem primitives the journal already relies on:
//!
//! ```text
//! exchange/
//!   exchange.meta        collect-exchange v1 + config fingerprint + unit
//!                        count — guards against mixing campaigns.
//!   units/u<k>.unit      the work partition: contiguous slices of the
//!                        sorted machine-id space, written once by the
//!                        supervisor before any worker starts.
//!   leases/u<k>.lease    advisory claim (O_CREAT|O_EXCL, same pattern as
//!                        serve's .flights/); the file's mtime is the
//!                        claimant's heartbeat.
//!   done/u<k>.done       temp+rename marker: every machine of the unit
//!                        has a valid shard somewhere in the exchange.
//!   quarantine/u<k>.bad  the unit exhausted its reassignment budget.
//!   attempts/u<k>        reassignment round counter, bumped by the
//!                        supervisor each time it reclaims the lease.
//!   workers/w<i>/        one private ShardJournal per worker process.
//! ```
//!
//! **Why this converges byte-identically.** Every machine's records are
//! a pure function of the campaign configuration (per-machine RNG
//! streams), so any *valid* shard for machine `m` is byte-identical no
//! matter which worker collected it, how many times `m` was re-collected,
//! or in which order workers died. Duplicated work is therefore harmless,
//! and the final merge — first valid shard per machine, scanning worker
//! journals in ascending worker order — is deterministic even though the
//! kill schedule is not. Progress is monotone: chaos kill sites fire only
//! *after* a shard is durably journaled, workers skip machines that
//! already have a valid shard anywhere in the exchange (the "journal
//! exchange" — survivors inherit a dead worker's completed shards), and
//! process-level faults are gated on the unit's reassignment round
//! exactly like transient faults are gated on the retry attempt
//! ([`testbed::faults::MAX_FAULTS_PER_SITE`]), so a bounded reassignment
//! budget always converges.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use testbed::{Cluster, FaultPlan, FaultPolicy, MachineId};

use crate::campaign::{collect_one_machine, CampaignConfig, CampaignError, CollectOptions};
use crate::journal::{write_atomically, JournalError, ShardJournal};

/// First line of the exchange meta file.
const EXCHANGE_HEADER: &str = "collect-exchange v1";

/// Why distributed collection could not proceed.
#[derive(Debug)]
pub enum DistributedError {
    /// The exchange directory is malformed or belongs to a different
    /// campaign or partition.
    Exchange(String),
    /// A journal in the exchange could not be opened or written.
    Journal(JournalError),
    /// A worker's collection failed terminally (e.g. a machine past its
    /// retry budget).
    Campaign(CampaignError),
    /// An underlying filesystem failure in the exchange protocol.
    Io(io::Error),
    /// The supervisor spawned more workers than the budget allows — a
    /// backstop against respawn loops that should be unreachable while
    /// the per-unit reassignment budget holds.
    SpawnBudget {
        /// Workers spawned before giving up.
        spawned: u64,
    },
}

impl fmt::Display for DistributedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributedError::Exchange(msg) => write!(f, "exchange error: {msg}"),
            DistributedError::Journal(e) => write!(f, "{e}"),
            DistributedError::Campaign(e) => write!(f, "{e}"),
            DistributedError::Io(e) => write!(f, "exchange I/O error: {e}"),
            DistributedError::SpawnBudget { spawned } => write!(
                f,
                "supervisor spawn budget exhausted after {spawned} workers; \
                 the fleet is not converging"
            ),
        }
    }
}

impl std::error::Error for DistributedError {}

impl From<JournalError> for DistributedError {
    fn from(e: JournalError) -> Self {
        DistributedError::Journal(e)
    }
}

impl From<CampaignError> for DistributedError {
    fn from(e: CampaignError) -> Self {
        DistributedError::Campaign(e)
    }
}

impl From<io::Error> for DistributedError {
    fn from(e: io::Error) -> Self {
        DistributedError::Io(e)
    }
}

/// One assignable slice of the campaign: a contiguous run of the sorted
/// machine-id space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkUnit {
    /// Position in the partition (names the unit's files).
    pub index: usize,
    /// The machines this unit collects, in ascending id order.
    pub machines: Vec<MachineId>,
}

/// Splits the sorted machine ids into at most `unit_count` contiguous
/// units (the same `div_ceil` chunking the threaded collector uses), so
/// supervisor and workers derive the identical partition from the
/// configuration alone.
pub fn partition_units(machines: &[MachineId], unit_count: usize) -> Vec<WorkUnit> {
    if machines.is_empty() {
        return Vec::new();
    }
    let unit_count = unit_count.clamp(1, machines.len());
    let chunk = machines.len().div_ceil(unit_count);
    machines
        .chunks(chunk)
        .enumerate()
        .map(|(index, machines)| WorkUnit {
            index,
            machines: machines.to_vec(),
        })
        .collect()
}

/// The shared exchange directory: work partition, leases, completion
/// markers, and per-worker journals.
#[derive(Debug, Clone)]
pub struct ExchangeDir {
    root: PathBuf,
    fingerprint: u64,
    units: Vec<WorkUnit>,
}

impl ExchangeDir {
    /// Creates (or resumes) an exchange at `root` for `config` with the
    /// given partition. An existing exchange is validated against the
    /// configuration fingerprint and unit count and refused on mismatch;
    /// matching state is reused, so a crashed distributed run resumes
    /// where it left off.
    pub fn create(
        root: impl Into<PathBuf>,
        config: &CampaignConfig,
        units: Vec<WorkUnit>,
    ) -> Result<Self, DistributedError> {
        let root = root.into();
        let fingerprint = ShardJournal::config_fingerprint(config);
        for sub in [
            "units",
            "leases",
            "done",
            "quarantine",
            "attempts",
            "workers",
        ] {
            std::fs::create_dir_all(root.join(sub))?;
        }
        let meta = root.join("exchange.meta");
        let expected = format!(
            "{EXCHANGE_HEADER}\nconfig {fingerprint:016x}\nunits {}\n",
            units.len()
        );
        match std::fs::read_to_string(&meta) {
            Ok(found) if found == expected => {}
            Ok(_) => {
                return Err(DistributedError::Exchange(format!(
                    "{} holds an exchange for a different campaign or partition; \
                     use a fresh directory",
                    root.display()
                )))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => write_atomically(&meta, &expected)?,
            Err(e) => return Err(e.into()),
        }
        let exchange = ExchangeDir {
            root,
            fingerprint,
            units,
        };
        for unit in &exchange.units {
            let ids: Vec<String> = unit.machines.iter().map(|m| m.0.to_string()).collect();
            write_atomically(
                &exchange.unit_path(unit.index),
                &format!("unit {}\nmachines {}\n", unit.index, ids.join(" ")),
            )?;
        }
        Ok(exchange)
    }

    /// Opens an existing exchange, validating its fingerprint against
    /// `config` and loading the partition from the unit files. This is
    /// the worker-side entry: workers never invent the partition, they
    /// read the one the supervisor pinned.
    pub fn open(
        root: impl Into<PathBuf>,
        config: &CampaignConfig,
    ) -> Result<Self, DistributedError> {
        let root = root.into();
        let fingerprint = ShardJournal::config_fingerprint(config);
        let meta = root.join("exchange.meta");
        let raw = std::fs::read_to_string(&meta)?;
        let mut lines = raw.lines();
        let header_ok = lines.next() == Some(EXCHANGE_HEADER);
        let config_ok = lines.next() == Some(format!("config {fingerprint:016x}").as_str());
        let unit_count: Option<usize> = lines
            .next()
            .and_then(|l| l.strip_prefix("units "))
            .and_then(|n| n.parse().ok());
        let (true, true, Some(unit_count)) = (header_ok, config_ok, unit_count) else {
            return Err(DistributedError::Exchange(format!(
                "{} is not an exchange for this campaign configuration",
                root.display()
            )));
        };
        let mut exchange = ExchangeDir {
            root,
            fingerprint,
            units: Vec::with_capacity(unit_count),
        };
        for index in 0..unit_count {
            let path = exchange.unit_path(index);
            let raw = std::fs::read_to_string(&path)?;
            let mut lines = raw.lines();
            let index_ok = lines.next() == Some(format!("unit {index}").as_str());
            let machines: Option<Vec<MachineId>> = lines
                .next()
                .and_then(|l| l.strip_prefix("machines "))
                .map(|ids| {
                    ids.split(' ')
                        .map(|id| id.parse().map(MachineId))
                        .collect::<Result<Vec<_>, _>>()
                        .ok()
                })
                .unwrap_or(None);
            match machines {
                Some(machines) if index_ok && !machines.is_empty() => {
                    exchange.units.push(WorkUnit { index, machines })
                }
                _ => {
                    return Err(DistributedError::Exchange(format!(
                        "{} is malformed",
                        path.display()
                    )))
                }
            }
        }
        Ok(exchange)
    }

    /// The exchange root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The pinned configuration fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The work partition, in unit-index order.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// One worker's private journal directory.
    pub fn worker_dir(&self, worker: usize) -> PathBuf {
        self.root.join("workers").join(format!("w{worker}"))
    }

    fn unit_path(&self, unit: usize) -> PathBuf {
        self.root.join("units").join(format!("u{unit}.unit"))
    }

    fn lease_path(&self, unit: usize) -> PathBuf {
        self.root.join("leases").join(format!("u{unit}.lease"))
    }

    fn done_path(&self, unit: usize) -> PathBuf {
        self.root.join("done").join(format!("u{unit}.done"))
    }

    fn quarantine_path(&self, unit: usize) -> PathBuf {
        self.root.join("quarantine").join(format!("u{unit}.bad"))
    }

    fn attempts_path(&self, unit: usize) -> PathBuf {
        self.root.join("attempts").join(format!("u{unit}"))
    }

    /// Whether the unit's done marker exists.
    pub fn is_done(&self, unit: usize) -> bool {
        self.done_path(unit).exists()
    }

    /// Durably marks the unit complete (temp + rename).
    pub fn mark_done(&self, unit: usize) -> io::Result<()> {
        write_atomically(&self.done_path(unit), &format!("unit {unit} done\n"))
    }

    /// Whether the unit has been quarantined.
    pub fn is_quarantined(&self, unit: usize) -> bool {
        self.quarantine_path(unit).exists()
    }

    /// Quarantines the unit after `attempts` failed rounds.
    pub fn quarantine(&self, unit: usize, attempts: u32) -> io::Result<()> {
        write_atomically(
            &self.quarantine_path(unit),
            &format!("unit {unit} attempts {attempts}\n"),
        )
    }

    /// Units that are neither done nor quarantined.
    pub fn open_units(&self) -> Vec<&WorkUnit> {
        self.units
            .iter()
            .filter(|u| !self.is_done(u.index) && !self.is_quarantined(u.index))
            .collect()
    }

    /// The unit's reassignment round: how many times the supervisor has
    /// reclaimed its lease. Workers feed this into the process-level
    /// fault sites, which is what makes chaos attempt-limited per unit.
    pub fn attempts(&self, unit: usize) -> u32 {
        std::fs::read_to_string(self.attempts_path(unit))
            .ok()
            .and_then(|raw| raw.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Bumps the unit's reassignment round (supervisor-side, called
    /// *before* the lease is released so the next claimant observes it).
    pub fn bump_attempts(&self, unit: usize) -> io::Result<u32> {
        let next = self.attempts(unit) + 1;
        write_atomically(&self.attempts_path(unit), &format!("{next}\n"))?;
        Ok(next)
    }

    /// Tries to claim a unit with an O_CREAT|O_EXCL lease file (the
    /// `.flights/` pattern). `None` means another worker holds it.
    pub fn claim(&self, unit: usize, worker: usize) -> io::Result<Option<UnitLease>> {
        use std::io::Write;
        let path = self.lease_path(unit);
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                file.write_all(format!("worker {worker}\n").as_bytes())?;
                Ok(Some(UnitLease {
                    path,
                    defused: false,
                }))
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Which worker's lease file currently claims the unit, if any.
    pub fn lease_owner(&self, unit: usize) -> Option<usize> {
        let raw = std::fs::read_to_string(self.lease_path(unit)).ok()?;
        raw.strip_prefix("worker ")?.trim().parse().ok()
    }

    /// Age of the unit's lease heartbeat (`None` if unleased). A future
    /// mtime reads as zero.
    pub fn lease_age(&self, unit: usize) -> Option<Duration> {
        let modified = std::fs::metadata(self.lease_path(unit))
            .and_then(|m| m.modified())
            .ok()?;
        Some(
            SystemTime::now()
                .duration_since(modified)
                .unwrap_or(Duration::ZERO),
        )
    }

    /// Removes the unit's lease file (supervisor-side reclaim). Missing
    /// is fine: the holder may have released it concurrently.
    pub fn release_lease(&self, unit: usize) -> io::Result<()> {
        match std::fs::remove_file(self.lease_path(unit)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Whether any *other* worker's journal already holds a valid shard
    /// for `machine` — the journal-exchange read path: survivors inherit
    /// a dead worker's durable shards instead of re-collecting them, so
    /// every kill strictly grows the set of finished machines.
    pub fn peer_has_shard(&self, machine: MachineId, worker: usize) -> bool {
        for journal in self.worker_journals() {
            if journal.dir() == self.worker_dir(worker) {
                continue;
            }
            if journal.load_quiet(machine).is_some() {
                return true;
            }
        }
        false
    }

    /// Every openable worker journal in the exchange, sorted by worker
    /// index ascending — the deterministic scan order the merge uses.
    pub fn worker_journals(&self) -> Vec<ShardJournal> {
        let mut indexed: Vec<(usize, ShardJournal)> = Vec::new();
        let Ok(entries) = std::fs::read_dir(self.root.join("workers")) else {
            return Vec::new();
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(index) = name
                .to_str()
                .and_then(|n| n.strip_prefix('w'))
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            if let Ok(journal) = ShardJournal::open_existing(entry.path()) {
                if journal.fingerprint() == self.fingerprint {
                    indexed.push((index, journal));
                }
            }
        }
        indexed.sort_by_key(|(index, _)| *index);
        indexed.into_iter().map(|(_, journal)| journal).collect()
    }
}

/// A claimed unit: the lease file whose mtime is the heartbeat.
///
/// Dropping the lease removes the file (clean hand-back); chaos kill
/// paths call [`UnitLease::defuse`] first so the file survives the
/// "crash" exactly as it would a real SIGKILL, leaving the supervisor to
/// reclaim it.
#[derive(Debug)]
pub struct UnitLease {
    path: PathBuf,
    defused: bool,
}

impl UnitLease {
    /// Touches the lease mtime — the heartbeat. Fails with `NotFound`
    /// if the supervisor reclaimed the lease out from under us.
    pub fn heartbeat(&self) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)?
            .set_modified(SystemTime::now())
    }

    /// Releases the unit cleanly (removes the lease file now).
    pub fn release(mut self) {
        self.defused = true;
        let _ = std::fs::remove_file(&self.path);
    }

    /// Forgets the lease *without* removing the file — simulates dying
    /// while holding it, and is also the right move once the supervisor
    /// has reclaimed the lease (the file now belongs to someone else).
    pub fn defuse(mut self) {
        self.defused = true;
    }
}

impl Drop for UnitLease {
    fn drop(&mut self) {
        if !self.defused {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// How a worker process collects and how it simulates process faults.
#[derive(Debug, Clone, Copy)]
pub struct WorkerOptions {
    /// Chaos plan; `None` injects nothing. Process-level sites consult
    /// [`FaultPlan::worker_kill`], [`FaultPlan::heartbeat_stall`], and
    /// [`FaultPlan::torn_handoff`] keyed by `u<unit>.m<machine>` and the
    /// unit's reassignment round.
    pub faults: Option<FaultPlan>,
    /// Retry budget for in-machine transient/I/O faults.
    pub policy: FaultPolicy,
    /// The supervisor's staleness horizon; an injected stall sleeps 1.5x
    /// this long so the supervisor reliably declares the worker dead.
    pub stale_after: Duration,
    /// Sleep between claim rounds when every open unit is leased
    /// elsewhere.
    pub poll: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            faults: None,
            policy: FaultPolicy::default(),
            stale_after: Duration::from_millis(1000),
            poll: Duration::from_millis(20),
        }
    }
}

/// What one worker accomplished before exiting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Units this worker marked done.
    pub completed_units: usize,
    /// Machines this worker collected fresh.
    pub collected: usize,
    /// Machines skipped because a valid shard already existed in the
    /// exchange (own resume or a peer's durable work).
    pub imported: usize,
    /// Chaos faults injected (in-machine and process-level).
    pub injected: u64,
    /// In-machine retries performed.
    pub retried: u64,
    /// A chaos kill or torn handoff fired: the caller must exit nonzero
    /// *without* cleanup, as a real crash would.
    pub killed: bool,
}

enum UnitResult {
    /// Every machine of the unit has a valid shard; marker written.
    Done,
    /// The lease was reclaimed out from under us (stall or race); the
    /// unit now belongs to someone else.
    Lost,
    /// A chaos kill/torn-handoff site fired while holding the lease.
    Killed,
}

/// The worker-process main loop: claim open units, collect their
/// machines (skipping any machine with a valid shard anywhere in the
/// exchange), heartbeat between machines, and exit once every unit is
/// done or quarantined.
///
/// Returns `Ok` with [`WorkerOutcome::killed`] set when a chaos process
/// fault fired — the binary entry point turns that into a nonzero exit
/// so the supervisor observes a real death.
pub fn run_worker(
    root: &Path,
    cluster: &Cluster,
    config: &CampaignConfig,
    worker: usize,
    options: &WorkerOptions,
) -> Result<WorkerOutcome, DistributedError> {
    let exchange = ExchangeDir::open(root, config)?;
    let journal = ShardJournal::open(exchange.worker_dir(worker), config)?;
    let mut outcome = WorkerOutcome::default();
    loop {
        let mut open = 0usize;
        let mut progressed = false;
        for unit in exchange.units() {
            if exchange.is_done(unit.index) || exchange.is_quarantined(unit.index) {
                continue;
            }
            open += 1;
            let Some(lease) = exchange.claim(unit.index, worker)? else {
                continue;
            };
            progressed = true;
            let attempt = exchange.attempts(unit.index);
            let result = collect_unit(
                &exchange,
                &journal,
                cluster,
                config,
                worker,
                unit,
                attempt,
                &lease,
                options,
                &mut outcome,
            );
            match result {
                Ok(UnitResult::Done) => {
                    exchange.mark_done(unit.index)?;
                    lease.release();
                    outcome.completed_units += 1;
                }
                Ok(UnitResult::Lost) => lease.defuse(),
                Ok(UnitResult::Killed) => {
                    outcome.killed = true;
                    lease.defuse();
                    return Ok(outcome);
                }
                Err(e) => {
                    // Leave the lease in place: the supervisor will see
                    // this worker die, reclaim the unit by owner, and
                    // bump its reassignment round — exactly as for a
                    // kill. Releasing here would retry at the same round
                    // forever.
                    lease.defuse();
                    return Err(e);
                }
            }
        }
        if open == 0 {
            return Ok(outcome);
        }
        if !progressed {
            // Everything open is leased elsewhere; wait for the holders
            // to finish or for the supervisor to break a stale lease.
            std::thread::sleep(options.poll);
        }
    }
}

/// Collects every machine of one claimed unit. Chaos order per machine:
/// stall (before collecting), then collect + journal (with in-machine
/// fault retries), then torn handoff (destroy the commit and die), then
/// kill (die post-commit). Heartbeats and ownership checks sit between
/// machines.
#[allow(clippy::too_many_arguments)]
fn collect_unit(
    exchange: &ExchangeDir,
    journal: &ShardJournal,
    cluster: &Cluster,
    config: &CampaignConfig,
    worker: usize,
    unit: &WorkUnit,
    attempt: u32,
    lease: &UnitLease,
    options: &WorkerOptions,
    outcome: &mut WorkerOutcome,
) -> Result<UnitResult, DistributedError> {
    let collect_options = CollectOptions {
        jobs: Some(1),
        journal: None,
        faults: options.faults,
        policy: options.policy,
    };
    for &machine in &unit.machines {
        if journal.load_quiet(machine).is_some() || exchange.peer_has_shard(machine, worker) {
            outcome.imported += 1;
        } else {
            let site = format!("u{}.m{}", unit.index, machine.0);
            if options
                .faults
                .is_some_and(|f| f.heartbeat_stall(&site, attempt))
            {
                outcome.injected += 1;
                telemetry::metrics::counter("fault.injected").inc();
                // Go silent past the staleness horizon: no heartbeat, no
                // progress. The supervisor reclaims the lease mid-sleep.
                std::thread::sleep(options.stale_after + options.stale_after / 2);
                if exchange.lease_owner(unit.index) != Some(worker) {
                    return Ok(UnitResult::Lost);
                }
            }
            let report = collect_one_machine(cluster, config, machine, journal, &collect_options)?;
            outcome.collected += 1;
            outcome.injected += report.injected;
            outcome.retried += report.retried;
            if options
                .faults
                .is_some_and(|f| f.torn_handoff(&site, attempt))
            {
                outcome.injected += 1;
                telemetry::metrics::counter("fault.injected").inc();
                tear_shard(&journal.shard_path(machine))?;
                return Ok(UnitResult::Killed);
            }
            if options
                .faults
                .is_some_and(|f| f.worker_kill(&site, attempt))
            {
                outcome.injected += 1;
                telemetry::metrics::counter("fault.injected").inc();
                return Ok(UnitResult::Killed);
            }
        }
        if exchange.lease_owner(unit.index) != Some(worker) {
            return Ok(UnitResult::Lost);
        }
        if lease.heartbeat().is_err() {
            return Ok(UnitResult::Lost);
        }
    }
    Ok(UnitResult::Done)
}

/// Truncates a freshly committed shard mid-file — the torn-handoff
/// injection. The checksum guarantees the next claimant detects it.
fn tear_shard(path: &Path) -> io::Result<()> {
    let len = std::fs::metadata(path)?.len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(path)?
        .set_len(len / 2)
}

/// How a worker process ended, from the supervisor's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// Exit status zero: the worker drained the exchange and left.
    Clean,
    /// Nonzero exit, SIGKILL, or a chaos kill: the worker died holding
    /// whatever leases it held.
    Died,
}

/// A spawned worker the supervisor can poll — a subprocess in the CLI,
/// a thread in the in-process tests.
pub trait WorkerHandle {
    /// The worker index this handle was spawned with.
    fn worker(&self) -> usize;
    /// Non-blocking reap: `Some(exit)` once the worker has ended.
    fn try_finish(&mut self) -> io::Result<Option<WorkerExit>>;
}

/// Supervisor policy: fleet size, staleness horizon, poll cadence, and
/// the per-unit reassignment budget.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Target number of live workers while open units remain.
    pub workers: usize,
    /// A lease older than this is considered orphaned and reclaimed
    /// (its holder is dead or stalled). Must comfortably exceed the
    /// worst-case per-machine collect time, since workers heartbeat
    /// between machines.
    pub stale_after: Duration,
    /// Monitor loop tick.
    pub poll: Duration,
    /// Reassignment rounds before a unit is quarantined. Must exceed
    /// [`testbed::faults::MAX_FAULTS_PER_SITE`] so chaos alone can never
    /// quarantine a unit.
    pub max_unit_attempts: u32,
}

impl SupervisorConfig {
    /// Defaults for `workers` workers: 1 s staleness horizon, 25 ms
    /// poll, 4 reassignment rounds.
    pub fn new(workers: usize) -> Self {
        SupervisorConfig {
            workers: workers.max(1),
            stale_after: Duration::from_millis(1000),
            poll: Duration::from_millis(25),
            max_unit_attempts: 4,
        }
    }
}

/// What the supervisor observed: the `collect.worker.*` counters plus
/// the partition size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributedReport {
    /// Worker processes spawned (initial fleet + respawns).
    pub spawned: u64,
    /// Worker deaths observed (nonzero exits, kills).
    pub died: u64,
    /// Lease reclaims that put a unit back up for grabs.
    pub reassigned: u64,
    /// Units that exhausted the reassignment budget.
    pub quarantined: u64,
    /// Units in the partition.
    pub units: u64,
}

/// The supervisor loop: keep the fleet alive, reap the dead, reclaim
/// their leases, break stale heartbeats, and return once every unit is
/// done or quarantined and every worker has exited.
///
/// `spawn` is called with a fresh worker index for the initial fleet and
/// for every respawn; respawns never reuse an index, so a dead worker's
/// journal is inherited through the exchange scan, not through identity.
pub fn supervise(
    exchange: &ExchangeDir,
    spawn: &mut dyn FnMut(usize) -> io::Result<Box<dyn WorkerHandle>>,
    config: &SupervisorConfig,
) -> Result<DistributedReport, DistributedError> {
    let mut report = DistributedReport {
        units: exchange.units().len() as u64,
        ..DistributedReport::default()
    };
    // Backstop: with attempt-gated chaos this is unreachable, but a
    // genuinely diverging fleet must not respawn forever.
    let spawn_cap = config.workers as u64 + report.units * (config.max_unit_attempts as u64 + 2);
    let mut next_worker = 0usize;
    let mut handles: Vec<Box<dyn WorkerHandle>> = Vec::new();
    let mut spawn_one = |handles: &mut Vec<Box<dyn WorkerHandle>>,
                         report: &mut DistributedReport,
                         next_worker: &mut usize|
     -> Result<(), DistributedError> {
        if report.spawned >= spawn_cap {
            return Err(DistributedError::SpawnBudget {
                spawned: report.spawned,
            });
        }
        handles.push(spawn(*next_worker)?);
        *next_worker += 1;
        report.spawned += 1;
        telemetry::metrics::counter("collect.worker.spawned").inc();
        Ok(())
    };
    for _ in 0..config.workers {
        spawn_one(&mut handles, &mut report, &mut next_worker)?;
    }
    loop {
        // Reap finished workers; a death orphans its leases, which are
        // reclaimed immediately by owner.
        let mut i = 0;
        while i < handles.len() {
            match handles[i].try_finish()? {
                None => i += 1,
                Some(exit) => {
                    let worker = handles[i].worker();
                    handles.swap_remove(i);
                    if exit == WorkerExit::Died {
                        report.died += 1;
                        telemetry::metrics::counter("collect.worker.died").inc();
                        for unit in exchange.units() {
                            if exchange.lease_owner(unit.index) == Some(worker) {
                                reclaim_unit(exchange, unit.index, config, &mut report)?;
                            }
                        }
                    }
                }
            }
        }
        // Break stale leases: the holder stopped heartbeating (stalled,
        // wedged, or died without the handle noticing yet).
        for unit in exchange.units() {
            if exchange.is_done(unit.index) {
                continue;
            }
            if exchange
                .lease_age(unit.index)
                .is_some_and(|age| age > config.stale_after)
            {
                reclaim_unit(exchange, unit.index, config, &mut report)?;
            }
        }
        let open = exchange.open_units().len();
        if open == 0 && handles.is_empty() {
            return Ok(report);
        }
        // Keep the fleet at strength while there is open work.
        while open > 0 && handles.len() < config.workers {
            spawn_one(&mut handles, &mut report, &mut next_worker)?;
        }
        std::thread::sleep(config.poll);
    }
}

/// Reclaims one unit's lease: bump the reassignment round, quarantine
/// past the budget, and remove the lease file so survivors can claim it.
/// A unit that is already done just sheds its orphaned lease.
fn reclaim_unit(
    exchange: &ExchangeDir,
    unit: usize,
    config: &SupervisorConfig,
    report: &mut DistributedReport,
) -> Result<(), DistributedError> {
    if !exchange.is_done(unit) && !exchange.is_quarantined(unit) {
        let attempts = exchange.bump_attempts(unit)?;
        if attempts > config.max_unit_attempts {
            exchange.quarantine(unit, attempts)?;
            report.quarantined += 1;
            telemetry::metrics::counter("collect.worker.quarantined").inc();
        } else {
            report.reassigned += 1;
            telemetry::metrics::counter("collect.worker.reassigned").inc();
        }
    }
    exchange.release_lease(unit)?;
    Ok(())
}

/// What the merge produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Machines with a valid shard in the canonical journal.
    pub merged: u64,
    /// Extra valid copies of already-merged machines found in other
    /// worker journals (duplicated work from reassignments — benign, the
    /// copies are byte-identical by construction).
    pub duplicates: u64,
    /// Machines with no valid shard anywhere (their units were
    /// quarantined). Empty on a converged run.
    pub missing: Vec<MachineId>,
}

/// Merges the per-worker journals into one canonical journal: for every
/// machine of every unit, the first valid shard in ascending worker
/// order is re-recorded into `canonical`. Because any valid shard for a
/// machine is byte-identical, the result equals a single-process
/// `--jobs 1` collection regardless of worker count or kill schedule.
pub fn merge_exchange(
    exchange: &ExchangeDir,
    canonical: &ShardJournal,
) -> Result<MergeReport, DistributedError> {
    let journals = exchange.worker_journals();
    let mut report = MergeReport::default();
    for unit in exchange.units() {
        for &machine in &unit.machines {
            let mut found = None;
            let mut copies = 0u64;
            for journal in &journals {
                if let Some(records) = journal.load_quiet(machine) {
                    copies += 1;
                    if found.is_none() {
                        found = Some(records);
                    }
                }
            }
            report.duplicates += copies.saturating_sub(1);
            match found {
                Some(records) => {
                    canonical.record(machine, &records)?;
                    report.merged += 1;
                }
                None if canonical.load_quiet(machine).is_some() => report.merged += 1,
                None => report.missing.push(machine),
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{collect_to_journal, selected_machine_ids};
    use testbed::{catalog, Timeline};
    use workloads::BenchmarkId;

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "distributed-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_config(seed: u64) -> CampaignConfig {
        let mut config = CampaignConfig::quick(seed);
        config.machines_per_type = Some(1);
        config.benchmarks = vec![BenchmarkId::MemCopy, BenchmarkId::NetLatency];
        config
    }

    fn provision(config: &CampaignConfig) -> Cluster {
        Cluster::provision(
            catalog(),
            config.scale,
            Timeline::cloudlab_default(),
            config.seed,
        )
    }

    #[test]
    fn partition_is_contiguous_and_covers_every_machine() {
        let machines: Vec<MachineId> = (0..10).map(MachineId).collect();
        let units = partition_units(&machines, 4);
        assert_eq!(units.len(), 4);
        let flattened: Vec<MachineId> = units.iter().flat_map(|u| u.machines.clone()).collect();
        assert_eq!(flattened, machines);
        assert!(partition_units(&machines, 100).len() <= machines.len());
        assert!(partition_units(&[], 4).is_empty());
    }

    #[test]
    fn exchange_round_trips_and_refuses_foreign_configs() {
        let root = temp_dir("roundtrip");
        let config = tiny_config(31);
        let machines: Vec<MachineId> = (0..6).map(MachineId).collect();
        let units = partition_units(&machines, 3);
        let created = ExchangeDir::create(&root, &config, units.clone()).unwrap();
        assert_eq!(created.units(), units.as_slice());
        let opened = ExchangeDir::open(&root, &config).unwrap();
        assert_eq!(opened.units(), units.as_slice());
        // Re-creating with the same state resumes; a different config is
        // refused both ways.
        assert!(ExchangeDir::create(&root, &config, units.clone()).is_ok());
        let other = tiny_config(32);
        assert!(matches!(
            ExchangeDir::open(&root, &other),
            Err(DistributedError::Exchange(_))
        ));
        assert!(matches!(
            ExchangeDir::create(&root, &other, partition_units(&machines, 3)),
            Err(DistributedError::Exchange(_))
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn leases_are_exclusive_and_heartbeat() {
        let root = temp_dir("lease");
        let config = tiny_config(33);
        let units = partition_units(&[MachineId(0), MachineId(1)], 1);
        let exchange = ExchangeDir::create(&root, &config, units).unwrap();
        let lease = exchange.claim(0, 7).unwrap().expect("first claim leads");
        assert!(exchange.claim(0, 8).unwrap().is_none(), "unit is held");
        assert_eq!(exchange.lease_owner(0), Some(7));
        assert!(exchange.lease_age(0).unwrap() < Duration::from_secs(5));
        lease.heartbeat().unwrap();
        lease.release();
        assert_eq!(exchange.lease_owner(0), None);
        // A defused lease leaves the file behind, like a crash.
        let lease = exchange.claim(0, 9).unwrap().unwrap();
        lease.defuse();
        assert_eq!(exchange.lease_owner(0), Some(9));
        exchange.release_lease(0).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn attempts_and_quarantine_round_trip() {
        let root = temp_dir("attempts");
        let config = tiny_config(34);
        let exchange =
            ExchangeDir::create(&root, &config, partition_units(&[MachineId(0)], 1)).unwrap();
        assert_eq!(exchange.attempts(0), 0);
        assert_eq!(exchange.bump_attempts(0).unwrap(), 1);
        assert_eq!(exchange.bump_attempts(0).unwrap(), 2);
        assert_eq!(exchange.attempts(0), 2);
        assert!(!exchange.is_quarantined(0));
        exchange.quarantine(0, 2).unwrap();
        assert!(exchange.is_quarantined(0));
        assert!(exchange.open_units().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn single_worker_drains_the_exchange_and_merge_matches_jobs1() {
        let root = temp_dir("drain");
        let config = tiny_config(35);
        let cluster = provision(&config);
        let machines = selected_machine_ids(&cluster, &config);
        let units = partition_units(&machines, 4);
        let exchange = ExchangeDir::create(&root, &config, units).unwrap();
        let outcome = run_worker(&root, &cluster, &config, 0, &WorkerOptions::default()).unwrap();
        assert!(!outcome.killed);
        assert_eq!(outcome.collected, machines.len());
        assert_eq!(outcome.completed_units, 4);
        assert!(exchange.open_units().is_empty());

        // Merge and byte-compare against a single-process --jobs 1 run.
        let canonical_dir = temp_dir("drain-canonical");
        let canonical = ShardJournal::open(&canonical_dir, &config).unwrap();
        let merge = merge_exchange(&exchange, &canonical).unwrap();
        assert_eq!(merge.merged as usize, machines.len());
        assert!(merge.missing.is_empty());
        let reference_dir = temp_dir("drain-reference");
        let reference = ShardJournal::open(&reference_dir, &config).unwrap();
        collect_to_journal(
            &cluster,
            &config,
            &CollectOptions {
                jobs: Some(1),
                journal: Some(&reference),
                ..CollectOptions::default()
            },
        )
        .unwrap();
        for &m in &machines {
            assert_eq!(
                std::fs::read(canonical.shard_path(m)).unwrap(),
                std::fs::read(reference.shard_path(m)).unwrap(),
                "shard m{} diverged",
                m.0
            );
        }
        for dir in [&root, &canonical_dir, &reference_dir] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn torn_shards_are_detected_and_recollected() {
        let root = temp_dir("torn");
        let config = tiny_config(36);
        let cluster = provision(&config);
        let machines = selected_machine_ids(&cluster, &config);
        let exchange = ExchangeDir::create(&root, &config, partition_units(&machines, 2)).unwrap();
        // Worker 0 collects everything, then we tear one of its shards:
        // the merge must refuse the torn copy, and a fresh worker must
        // re-collect the machine rather than trust it.
        run_worker(&root, &cluster, &config, 0, &WorkerOptions::default()).unwrap();
        let w0 = ShardJournal::open_existing(exchange.worker_dir(0)).unwrap();
        let victim = machines[0];
        tear_shard(&w0.shard_path(victim)).unwrap();
        assert_eq!(w0.load_quiet(victim), None, "torn shard must not load");
        // The unit is already marked done, so clear its marker to force
        // re-collection (this is what reassignment does in real runs).
        std::fs::remove_file(root.join("done").join("u0.done")).unwrap();
        let outcome = run_worker(&root, &cluster, &config, 1, &WorkerOptions::default()).unwrap();
        assert_eq!(outcome.collected, 1, "only the torn machine is redone");
        let canonical_dir = temp_dir("torn-canonical");
        let canonical = ShardJournal::open(&canonical_dir, &config).unwrap();
        let merge = merge_exchange(&exchange, &canonical).unwrap();
        assert!(merge.missing.is_empty());
        assert!(
            canonical.load_quiet(victim).is_some(),
            "the re-collected shard reaches the canonical journal"
        );
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&canonical_dir);
    }
}
