//! Standalone campaign generator: simulate a data-collection campaign
//! and export it as CSV (plus a terminal overview).
//!
//! ```text
//! campaign [--scale quick|paper] [--seed N] [--jobs N] [--out FILE.csv]
//!          [--resume DIR] [--chaos SEED]
//!          [--sentinel-dir DIR] [--no-sentinel]
//! ```
//!
//! `--resume DIR` journals completed per-machine shards into DIR and
//! replays any already there, so a killed run continues where it stopped
//! with a byte-identical store. `--chaos SEED` arms deterministic fault
//! injection (see DESIGN.md §8); transient faults retry with bounded
//! backoff and a chaos-killed worker exits non-zero with a resume hint.
//!
//! A successful run appends one `campaign`-kind record (collection wall
//! time as the audited metric) to the regression sentinel history under
//! `artifacts/.sentinel`; `--sentinel-dir` overrides, `--no-sentinel`
//! disables. `repro sentinel audit|report` consumes it (DESIGN.md §9).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::path::PathBuf;
use std::process::ExitCode;

use dataset::{
    overview, run_campaign_resumable, write_csv, CampaignConfig, CampaignError, CollectOptions,
    ShardJournal,
};
use testbed::{FaultPlan, FaultPolicy};

const USAGE: &str = "usage: campaign [--scale quick|paper] [--seed N] [--jobs N] \
[--out FILE.csv] [--resume DIR] [--chaos SEED] [--sentinel-dir DIR] [--no-sentinel]";

struct Args {
    config: CampaignConfig,
    scale: String,
    jobs: Option<usize>,
    out: Option<String>,
    resume: Option<PathBuf>,
    chaos: Option<u64>,
    sentinel_dir: Option<PathBuf>,
    no_sentinel: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut seed = 42u64;
    let mut scale = "quick".to_string();
    let mut jobs = None;
    let mut out = None;
    let mut resume = None;
    let mut chaos = None;
    let mut sentinel_dir = None;
    let mut no_sentinel = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => scale = it.next().ok_or("--scale needs a value")?,
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad seed")?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| "bad job count")?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                jobs = Some(n);
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?),
            "--resume" => {
                resume = Some(PathBuf::from(
                    it.next().ok_or("--resume needs a directory")?,
                ));
            }
            "--chaos" => {
                let v = it.next().ok_or("--chaos needs a seed")?;
                chaos = Some(v.parse().map_err(|_| format!("bad chaos seed `{v}`"))?);
            }
            "--sentinel-dir" => {
                sentinel_dir = Some(PathBuf::from(
                    it.next().ok_or("--sentinel-dir needs a value")?,
                ));
            }
            "--no-sentinel" => no_sentinel = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if chaos.is_none() {
        if let Ok(v) = std::env::var("REPRO_CHAOS") {
            chaos = Some(
                v.parse()
                    .map_err(|_| format!("bad REPRO_CHAOS seed `{v}`"))?,
            );
        }
    }
    let config = match scale.as_str() {
        "quick" => CampaignConfig::quick(seed),
        "paper" => CampaignConfig::paper(seed),
        other => return Err(format!("unknown scale `{other}`")),
    };
    Ok(Args {
        config,
        scale,
        jobs,
        out,
        resume,
        chaos,
        sentinel_dir,
        no_sentinel,
    })
}

/// Appends this campaign to the sentinel run history. Best-effort
/// observability: failures warn, they never fail a run that collected a
/// perfectly good store.
fn sentinel_record_run(args: &Args, collect_wall_secs: f64, measurements: u64, machines: u64) {
    let dir = args
        .sentinel_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("artifacts/.sentinel"));
    let mut rec = sentinel::RunRecord::new(
        "campaign",
        "campaign",
        env!("CARGO_PKG_VERSION"),
        args.config.seed,
        &args.scale,
    );
    rec.push_note("measurements", &measurements.to_string());
    rec.push_note("machines", &machines.to_string());
    match rec
        .push_metric("collect_wall_secs", collect_wall_secs)
        .and_then(|()| sentinel::HistoryStore::new(&dir).append(&rec))
    {
        Ok(seq) => eprintln!("sentinel: recorded run #{seq} in {}", dir.display()),
        Err(err) => eprintln!("sentinel: could not record run: {err}"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let faults = args.chaos.map(FaultPlan::new);
    if let Some(plan) = &faults {
        eprintln!("chaos armed (seed {})", plan.seed());
    }
    let journal = match &args.resume {
        Some(dir) => match ShardJournal::open(dir, &args.config) {
            Ok(j) => Some(j),
            Err(err) => {
                eprintln!("cannot open journal {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    eprintln!("running campaign (seed {}) ...", args.config.seed);
    let options = CollectOptions {
        jobs: args.jobs,
        journal: journal.as_ref(),
        faults,
        policy: FaultPolicy::default(),
    };
    let collect_started = std::time::Instant::now();
    let (_cluster, collected) = match run_campaign_resumable(&args.config, &options) {
        Ok(run) => run,
        Err(err) => {
            eprintln!("campaign collection failed: {err}");
            if let (CampaignError::WorkerKilled { .. }, Some(dir)) = (&err, &args.resume) {
                eprintln!(
                    "completed shards are journaled; rerun with --resume {} to continue",
                    dir.display()
                );
            }
            return ExitCode::FAILURE;
        }
    };
    let collect_wall_secs = collect_started.elapsed().as_secs_f64();
    let store = collected.store;
    if journal.is_some() {
        eprintln!(
            "journal: {} shards replayed, {} machines collected",
            collected.report.replayed, collected.report.collected
        );
    }
    if faults.is_some() {
        eprintln!(
            "faults: {} injected, {} retried",
            collected.report.injected, collected.report.retried
        );
    }
    let o = overview(&store);
    println!(
        "campaign: {} measurements, {} machines, {} types, {} benchmarks, days {:.0}-{:.0}",
        o.measurements, o.machines, o.machine_types, o.benchmarks, o.first_day, o.last_day
    );
    for (bench, count) in &o.per_benchmark {
        println!("  {:16} {count}", bench.label());
    }
    if let Some(path) = &args.out {
        // CSV export is atomic like every other artifact: write a temp
        // file beside the target, rename on success.
        let tmp = format!("{path}.tmp.{}", std::process::id());
        let file = match std::fs::File::create(&tmp) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {tmp}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = write_csv(&store, std::io::BufWriter::new(file)) {
            eprintln!("cannot write {path}: {e}");
            let _ = std::fs::remove_file(&tmp);
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            eprintln!("cannot rename {tmp} to {path}: {e}");
            let _ = std::fs::remove_file(&tmp);
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if !args.no_sentinel {
        sentinel_record_run(
            &args,
            collect_wall_secs,
            o.measurements as u64,
            o.machines as u64,
        );
    }
    ExitCode::SUCCESS
}
