//! Standalone campaign generator: simulate a data-collection campaign
//! and export it as CSV (plus a terminal overview).
//!
//! ```text
//! campaign [--scale quick|paper] [--seed N] [--jobs N] [--out FILE.csv]
//! ```

use std::process::ExitCode;

use dataset::{overview, run_campaign_jobs, write_csv, CampaignConfig};

struct Args {
    config: CampaignConfig,
    jobs: Option<usize>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut seed = 42u64;
    let mut scale = "quick".to_string();
    let mut jobs = None;
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => scale = it.next().ok_or("--scale needs a value")?,
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad seed")?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| "bad job count")?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                jobs = Some(n);
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?),
            "--help" | "-h" => {
                return Err(
                    "usage: campaign [--scale quick|paper] [--seed N] [--jobs N] [--out FILE.csv]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let config = match scale.as_str() {
        "quick" => CampaignConfig::quick(seed),
        "paper" => CampaignConfig::paper(seed),
        other => return Err(format!("unknown scale `{other}`")),
    };
    Ok(Args { config, jobs, out })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("running campaign (seed {}) ...", args.config.seed);
    let (_cluster, store) = run_campaign_jobs(&args.config, args.jobs);
    let o = overview(&store);
    println!(
        "campaign: {} measurements, {} machines, {} types, {} benchmarks, days {:.0}-{:.0}",
        o.measurements, o.machines, o.machine_types, o.benchmarks, o.first_day, o.last_day
    );
    for (bench, count) in &o.per_benchmark {
        println!("  {:16} {count}", bench.label());
    }
    if let Some(path) = args.out {
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = write_csv(&store, std::io::BufWriter::new(file)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
