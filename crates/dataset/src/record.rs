//! Measurement records.

use serde::{Deserialize, Serialize};
use testbed::MachineId;
use workloads::BenchmarkId;

/// One measurement taken during a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// The machine measured.
    pub machine: MachineId,
    /// The machine's type name.
    pub machine_type: String,
    /// The benchmark run.
    pub benchmark: BenchmarkId,
    /// Campaign day of the measurement.
    pub day: f64,
    /// Run index within the session.
    pub run: u32,
    /// Measured value (in the benchmark's unit).
    pub value: f64,
}

/// Parses a benchmark id from its label (inverse of
/// [`BenchmarkId::label`]).
pub fn benchmark_from_label(label: &str) -> Option<BenchmarkId> {
    BenchmarkId::ALL.into_iter().find(|b| b.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_round_trips() {
        for b in BenchmarkId::ALL {
            assert_eq!(benchmark_from_label(b.label()), Some(b));
        }
        assert_eq!(benchmark_from_label("nope"), None);
    }

    #[test]
    fn record_serde_round_trip() {
        let r = Record {
            machine: MachineId(3),
            machine_type: "c220g1".to_string(),
            benchmark: BenchmarkId::DiskSeqRead,
            day: 12.5,
            run: 4,
            value: 171.25,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
