//! Write-ahead journal for campaign collection — the crash-safe
//! checkpoint behind `--resume`.
//!
//! A [`ShardJournal`] is a directory holding one checksummed file per
//! *completed* machine shard. Because every measurement derives from its
//! machine's own RNG stream ([`testbed::machine_stream`]), a machine's
//! records are a pure function of the campaign configuration: replaying a
//! journaled shard is byte-identical to re-collecting it. A resumed run
//! therefore loads the finished shards, collects only the rest, and
//! produces exactly the store an uninterrupted run would have.
//!
//! On-disk format (text, serialization-free like the artifact cache):
//!
//! ```text
//! journal.meta         campaign-journal v1 \n config <fnv1a64 of the
//!                      CampaignConfig debug rendering> — guards against
//!                      resuming under a different configuration.
//! m<id>.shard          5-line envelope (format, config fingerprint,
//!                      machine id, record count, payload checksum)
//!                      followed by one tab-separated line per record;
//!                      floats as IEEE-754 bit patterns in hex, text
//!                      fields escaped.
//! ```
//!
//! Every file is written to a temp name and renamed into place, so a
//! kill mid-write never leaves a half shard: a reader sees either the
//! complete file or none. Any defect found at load — truncation, bad
//! checksum, foreign config, unparseable record — makes the shard count
//! as *not collected*; the campaign simply re-collects that machine. A
//! corrupt journal can never poison a resumed run.

use std::fmt;
use std::path::{Path, PathBuf};

use testbed::faults::fnv1a64;
use testbed::MachineId;

use crate::campaign::CampaignConfig;
use crate::record::{benchmark_from_label, Record};

/// First line of the meta file and of every shard file.
const JOURNAL_HEADER: &str = "campaign-journal v1";

/// Why the journal could not be opened or written.
#[derive(Debug)]
pub enum JournalError {
    /// The directory holds a journal for a different campaign
    /// configuration; resuming would mix incompatible data.
    ConfigMismatch {
        /// The journal directory.
        dir: PathBuf,
    },
    /// An underlying filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::ConfigMismatch { dir } => write!(
                f,
                "journal {} was written by a different campaign configuration \
                 (scale/seed mismatch?); use a fresh directory",
                dir.display()
            ),
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Outcome of a full-validation shard load ([`ShardJournal::load_status`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ShardStatus {
    /// The shard exists and every check passed; here are its records.
    Valid(Vec<Record>),
    /// No shard file exists for the machine.
    Missing,
    /// A shard file exists but failed validation (truncated, bad
    /// checksum, foreign config, or unparseable payload).
    Corrupt,
}

/// A directory of per-machine shard checkpoints for one campaign.
#[derive(Debug, Clone)]
pub struct ShardJournal {
    dir: PathBuf,
    fingerprint: u64,
}

impl ShardJournal {
    /// Fingerprint of a campaign configuration, as pinned in the meta
    /// file and every shard envelope. The full `Debug` rendering enters
    /// the hash, so any field change — not just seed and scale —
    /// invalidates the journal.
    pub fn config_fingerprint(config: &CampaignConfig) -> u64 {
        fnv1a64(format!("{config:?}").as_bytes())
    }

    /// Opens (creating if needed) the journal at `dir` for `config`.
    ///
    /// A fresh directory gains a meta file pinning the configuration; an
    /// existing journal is validated against it and refused on mismatch,
    /// so `--resume` can never silently mix shards from two campaigns.
    pub fn open(dir: impl Into<PathBuf>, config: &CampaignConfig) -> Result<Self, JournalError> {
        let dir = dir.into();
        let fingerprint = Self::config_fingerprint(config);
        std::fs::create_dir_all(&dir)?;
        let meta = dir.join("journal.meta");
        let expected = format!("{JOURNAL_HEADER}\nconfig {fingerprint:016x}\n");
        match std::fs::read_to_string(&meta) {
            Ok(found) => {
                if found != expected {
                    return Err(JournalError::ConfigMismatch { dir });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                write_atomically(&meta, &expected)?;
            }
            Err(e) => return Err(e.into()),
        }
        Ok(ShardJournal { dir, fingerprint })
    }

    /// Opens an *existing* journal, taking the configuration fingerprint
    /// from the meta file instead of a [`CampaignConfig`]. This is the
    /// config-free path `repro journal fsck` and the distributed merge
    /// scanner use: the journal's own pinned fingerprint is the ground
    /// truth every shard envelope is validated against.
    pub fn open_existing(dir: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let dir = dir.into();
        let meta = dir.join("journal.meta");
        let raw = std::fs::read_to_string(&meta)?;
        let mut lines = raw.lines();
        let header = lines.next().unwrap_or("");
        let fingerprint = lines
            .next()
            .and_then(|l| l.strip_prefix("config "))
            .and_then(|hex| u64::from_str_radix(hex, 16).ok());
        match fingerprint {
            Some(fingerprint) if header == JOURNAL_HEADER && lines.next().is_none() => {
                Ok(ShardJournal { dir, fingerprint })
            }
            _ => Err(JournalError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{} is not a valid journal meta file", meta.display()),
            ))),
        }
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The campaign-configuration fingerprint pinned in the meta file.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Path of one machine's shard file (whether or not it exists).
    pub fn shard_path(&self, machine: MachineId) -> PathBuf {
        self.dir.join(format!("m{}.shard", machine.0))
    }

    /// Durably records one machine's completed shard (temp + rename; the
    /// file appears atomically or not at all).
    pub fn record(&self, machine: MachineId, records: &[Record]) -> Result<(), JournalError> {
        let mut payload = String::new();
        for r in records {
            payload.push_str(&format!(
                "{}\t{}\t{:016x}\t{}\t{:016x}\n",
                escape(&r.machine_type),
                escape(r.benchmark.label()),
                r.day.to_bits(),
                r.run,
                r.value.to_bits(),
            ));
        }
        let bytes = format!(
            "{JOURNAL_HEADER}\nconfig {:016x}\nmachine {}\nrecords {}\nchecksum {:016x}\n{payload}",
            self.fingerprint,
            machine.0,
            records.len(),
            fnv1a64(payload.as_bytes()),
        );
        write_atomically(&self.shard_path(machine), &bytes)?;
        Ok(())
    }

    /// Loads one machine's journaled shard, or `None` if it was never
    /// recorded — or if the file is corrupt, truncated, checksummed
    /// wrong, or pinned to a different configuration, in which case the
    /// machine simply counts as uncollected.
    ///
    /// A shard that exists but fails validation bumps the
    /// `journal.shard.skipped` telemetry counter (a missing file does
    /// not), so chaos tests can assert that corruption was detected
    /// rather than trusted.
    pub fn load(&self, machine: MachineId) -> Option<Vec<Record>> {
        match self.load_status(machine) {
            ShardStatus::Valid(records) => Some(records),
            ShardStatus::Missing => None,
            ShardStatus::Corrupt => {
                telemetry::metrics::counter("journal.shard.skipped").inc();
                None
            }
        }
    }

    /// [`Self::load`] without the `journal.shard.skipped` side effect —
    /// the read-only path for fsck and for distributed peers scanning
    /// each other's journals, where a missing or torn shard is an
    /// expected observation rather than detected corruption.
    pub fn load_quiet(&self, machine: MachineId) -> Option<Vec<Record>> {
        match self.load_status(machine) {
            ShardStatus::Valid(records) => Some(records),
            ShardStatus::Missing | ShardStatus::Corrupt => None,
        }
    }

    /// Full-validation load distinguishing "never recorded" from
    /// "present but corrupt" (truncation, bad checksum, foreign config,
    /// unparseable payload). No telemetry side effects.
    pub fn load_status(&self, machine: MachineId) -> ShardStatus {
        let raw = match std::fs::read_to_string(self.shard_path(machine)) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return ShardStatus::Missing,
            Err(_) => return ShardStatus::Corrupt,
        };
        match self.parse_shard(&raw, machine) {
            Some(records) => ShardStatus::Valid(records),
            None => ShardStatus::Corrupt,
        }
    }

    fn parse_shard(&self, raw: &str, machine: MachineId) -> Option<Vec<Record>> {
        let mut lines = raw.splitn(6, '\n');
        let header = lines.next()?;
        let config = lines.next()?;
        let machine_line = lines.next()?;
        let count_line = lines.next()?;
        let checksum = lines.next()?;
        let payload = lines.next()?;
        let count: usize = count_line.strip_prefix("records ")?.parse().ok()?;
        let valid = header == JOURNAL_HEADER
            && config == format!("config {:016x}", self.fingerprint)
            && machine_line == format!("machine {}", machine.0)
            && checksum == format!("checksum {:016x}", fnv1a64(payload.as_bytes()));
        if !valid {
            return None;
        }
        let mut records = Vec::with_capacity(count);
        for line in payload.lines() {
            let mut fields = line.split('\t');
            let machine_type = unescape(fields.next()?)?;
            let benchmark = benchmark_from_label(&unescape(fields.next()?)?)?;
            let day = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
            let run: u32 = fields.next()?.parse().ok()?;
            let value = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
            if fields.next().is_some() {
                return None;
            }
            records.push(Record {
                machine,
                machine_type,
                benchmark,
                day,
                run,
                value,
            });
        }
        (records.len() == count).then_some(records)
    }

    /// Number of shard files currently in the journal (valid or not).
    pub fn shard_count(&self) -> Result<usize, JournalError> {
        Ok(self.machines()?.len())
    }

    /// Sorted unique machine ids that currently have a shard file in the
    /// journal directory — the canonical replay order
    /// ([`crate::store::sorted_machine_ids`]). Presence only: validation
    /// (checksum, config, payload) still happens at [`Self::load`] time.
    pub fn machines(&self) -> Result<Vec<MachineId>, JournalError> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(id) = name
                .strip_prefix('m')
                .and_then(|n| n.strip_suffix(".shard"))
                .and_then(|n| n.parse::<u32>().ok())
            {
                ids.push(MachineId(id));
            }
        }
        Ok(crate::store::sorted_machine_ids(ids))
    }

    /// Reads just the envelope of one machine's shard and returns its
    /// record count, without parsing (or holding) the payload. `None` if
    /// the shard is missing or its envelope is malformed or pinned to a
    /// different configuration.
    ///
    /// This is the cheap accounting path the streaming layer uses to
    /// report dataset totals without materializing a single record;
    /// payload integrity is still enforced by the checksum at
    /// [`Self::load`] time.
    pub fn record_count(&self, machine: MachineId) -> Option<usize> {
        use std::io::BufRead;
        let file = std::fs::File::open(self.shard_path(machine)).ok()?;
        let mut lines = std::io::BufReader::new(file).lines();
        let header = lines.next()?.ok()?;
        let config = lines.next()?.ok()?;
        let machine_line = lines.next()?.ok()?;
        let count_line = lines.next()?.ok()?;
        let valid = header == JOURNAL_HEADER
            && config == format!("config {:016x}", self.fingerprint)
            && machine_line == format!("machine {}", machine.0);
        if !valid {
            return None;
        }
        count_line.strip_prefix("records ")?.parse().ok()
    }
}

/// Temp-write + rename, same contract as the artifact cache: a reader
/// (or a resumed run) never observes a half-written file. Shared with
/// the distributed exchange protocol.
pub(crate) fn write_atomically(path: &Path, bytes: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    let result = std::fs::rename(&tmp, path);
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::BenchmarkId;

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "shard-journal-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Serializes the tests that load corrupt shards: they share the
    /// process-global `journal.shard.skipped` counter with the test that
    /// asserts on its exact delta.
    static SKIP_COUNTER: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn sample_records(machine: MachineId) -> Vec<Record> {
        vec![
            Record {
                machine,
                machine_type: "c220g1".to_string(),
                benchmark: BenchmarkId::DiskSeqRead,
                day: 12.5,
                run: 0,
                value: 171.25,
            },
            Record {
                machine,
                machine_type: "c220g1".to_string(),
                benchmark: BenchmarkId::MemTriad,
                day: 12.5,
                run: 1,
                value: 0.1 + 0.2, // a value with no short decimal form
            },
        ]
    }

    #[test]
    fn shard_round_trips_byte_exactly() {
        let dir = temp_dir("roundtrip");
        let config = CampaignConfig::quick(42);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let m = MachineId(7);
        assert_eq!(journal.load(m), None, "nothing journaled yet");
        let records = sample_records(m);
        journal.record(m, &records).unwrap();
        assert_eq!(journal.load(m), Some(records));
        assert_eq!(journal.shard_count().unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_with_the_same_config_resumes() {
        let dir = temp_dir("reopen");
        let config = CampaignConfig::quick(1);
        let m = MachineId(3);
        {
            let journal = ShardJournal::open(&dir, &config).unwrap();
            journal.record(m, &sample_records(m)).unwrap();
        }
        let journal = ShardJournal::open(&dir, &config).unwrap();
        assert_eq!(journal.load(m), Some(sample_records(m)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_config_is_refused() {
        let dir = temp_dir("mismatch");
        ShardJournal::open(&dir, &CampaignConfig::quick(1)).unwrap();
        let err = ShardJournal::open(&dir, &CampaignConfig::quick(2)).unwrap_err();
        assert!(matches!(err, JournalError::ConfigMismatch { .. }));
        assert!(err.to_string().contains("different campaign configuration"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shards_count_as_uncollected() {
        let _guard = SKIP_COUNTER.lock().unwrap_or_else(|e| e.into_inner());
        let dir = temp_dir("corrupt");
        let config = CampaignConfig::quick(5);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let m = MachineId(9);
        journal.record(m, &sample_records(m)).unwrap();
        let path = dir.join("m9.shard");
        let full = std::fs::read_to_string(&path).unwrap();

        // Truncation.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(journal.load(m), None);

        // Checksum flip.
        let flipped = full.replace("checksum", "checksum "); // malformed line
        std::fs::write(&path, flipped).unwrap();
        assert_eq!(journal.load(m), None);

        // A record line with garbage.
        let garbled = format!("{}garbage line\n", full);
        std::fs::write(&path, garbled).unwrap();
        assert_eq!(journal.load(m), None);

        // Re-recording repairs it.
        journal.record(m, &sample_records(m)).unwrap();
        assert_eq!(journal.load(m), Some(sample_records(m)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn machines_lists_shards_in_ascending_id_order() {
        let dir = temp_dir("listing");
        let config = CampaignConfig::quick(11);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        for id in [30, 2, 117] {
            let m = MachineId(id);
            journal.record(m, &sample_records(m)).unwrap();
        }
        assert_eq!(
            journal.machines().unwrap(),
            vec![MachineId(2), MachineId(30), MachineId(117)]
        );
        assert_eq!(journal.shard_count().unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_count_reads_the_envelope_only() {
        let dir = temp_dir("count");
        let config = CampaignConfig::quick(13);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let m = MachineId(4);
        assert_eq!(journal.record_count(m), None, "missing shard");
        journal.record(m, &sample_records(m)).unwrap();
        assert_eq!(journal.record_count(m), Some(2));
        // A garbled envelope is rejected even though the payload is fine.
        let path = dir.join("m4.shard");
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, raw.replace("machine 4", "machine 5")).unwrap();
        assert_eq!(journal.record_count(m), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_load_bumps_the_skipped_counter() {
        let _guard = SKIP_COUNTER.lock().unwrap_or_else(|e| e.into_inner());
        telemetry::set_enabled(true);
        let skipped = telemetry::metrics::counter("journal.shard.skipped");
        let dir = temp_dir("skipcounter");
        let config = CampaignConfig::quick(17);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let m = MachineId(6);

        // A never-recorded shard is not "skipped" — nothing to distrust.
        let before = skipped.value();
        assert_eq!(journal.load(m), None);
        assert_eq!(skipped.value(), before, "missing file is not a skip");

        journal.record(m, &sample_records(m)).unwrap();
        let path = dir.join("m6.shard");
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        assert_eq!(journal.load(m), None);
        assert_eq!(
            skipped.value(),
            before + 1,
            "corruption counts once per load"
        );
        telemetry::set_enabled(false);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_existing_reads_the_pinned_fingerprint() {
        let dir = temp_dir("existing");
        let config = CampaignConfig::quick(19);
        let m = MachineId(8);
        {
            let journal = ShardJournal::open(&dir, &config).unwrap();
            journal.record(m, &sample_records(m)).unwrap();
        }
        let journal = ShardJournal::open_existing(&dir).unwrap();
        assert_eq!(
            journal.fingerprint(),
            ShardJournal::config_fingerprint(&config)
        );
        assert_eq!(journal.load_quiet(m), Some(sample_records(m)));
        // A directory without a journal is refused, as is a garbled meta.
        let empty = temp_dir("existing-none");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(ShardJournal::open_existing(&empty).is_err());
        std::fs::write(dir.join("journal.meta"), "not a journal\n").unwrap();
        assert!(ShardJournal::open_existing(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&empty);
    }

    #[test]
    fn load_status_distinguishes_missing_from_corrupt() {
        let dir = temp_dir("status");
        let config = CampaignConfig::quick(29);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let m = MachineId(2);
        assert_eq!(journal.load_status(m), ShardStatus::Missing);
        journal.record(m, &sample_records(m)).unwrap();
        assert_eq!(
            journal.load_status(m),
            ShardStatus::Valid(sample_records(m))
        );
        let path = journal.shard_path(m);
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        assert_eq!(journal.load_status(m), ShardStatus::Corrupt);
        // The quiet loader reports the same outcomes without telemetry.
        assert_eq!(journal.load_quiet(m), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_round_trips_hostile_text() {
        for s in ["plain", "tab\there", "line\nbreak", "back\\slash", "cr\r"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert_eq!(unescape("bad\\x"), None, "unknown escape is rejected");
    }

    #[test]
    fn no_temp_files_survive_a_record() {
        let dir = temp_dir("tmpfiles");
        let config = CampaignConfig::quick(3);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let m = MachineId(1);
        journal.record(m, &sample_records(m)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
