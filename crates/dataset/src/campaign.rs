//! The data-collection campaign generator.
//!
//! Recreates the paper's measurement campaign on the simulated testbed:
//! a fleet is provisioned, and every machine runs every benchmark in
//! periodic sessions across a multi-month timeline. The result is one
//! [`Store`] that all experiment pipelines slice.
//!
//! Two presets exist: [`CampaignConfig::quick`] (a small fleet,
//! CI-friendly, finishes in well under a second) and
//! [`CampaignConfig::paper`] (full fleet, ten months, millions of points
//! — the scale of the published dataset).

use serde::{Deserialize, Serialize};
use testbed::{catalog, Cluster, Timeline};
use workloads::{sample, BenchmarkId};

use crate::record::Record;
use crate::store::Store;

/// Parameters of a simulated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Fleet scale (1.0 = the full ~900-machine catalog).
    pub scale: f64,
    /// Campaign length in days.
    pub duration_days: f64,
    /// Days between measurement sessions.
    pub session_every_days: f64,
    /// Repetitions of each benchmark per session.
    pub runs_per_session: usize,
    /// Benchmarks to run (defaults to the full suite).
    pub benchmarks: Vec<BenchmarkId>,
    /// Cap on machines per type (None = whole fleet). Lets quick mode
    /// keep type diversity without the full fleet.
    pub machines_per_type: Option<usize>,
    /// Master seed (drives provisioning and every measurement).
    pub seed: u64,
}

impl CampaignConfig {
    /// CI-friendly preset: ~30 machines, 10 sessions, 5 runs each
    /// (50 samples per machine x benchmark, like the paper's
    /// 50-repetition experiments).
    pub fn quick(seed: u64) -> Self {
        Self {
            scale: 0.1,
            duration_days: 300.0,
            session_every_days: 30.0,
            runs_per_session: 5,
            benchmarks: BenchmarkId::ALL.to_vec(),
            machines_per_type: Some(3),
            seed,
        }
    }

    /// Full-scale preset: the whole fleet over ten months with 100
    /// sessions — millions of data points, the scale of the published
    /// dataset.
    pub fn paper(seed: u64) -> Self {
        Self {
            scale: 1.0,
            duration_days: 300.0,
            session_every_days: 3.0,
            runs_per_session: 5,
            benchmarks: BenchmarkId::ALL.to_vec(),
            machines_per_type: None,
            seed,
        }
    }

    /// Restricts the benchmark list.
    pub fn with_benchmarks(mut self, benchmarks: Vec<BenchmarkId>) -> Self {
        self.benchmarks = benchmarks;
        self
    }

    /// Number of sessions the timeline yields.
    pub fn sessions(&self) -> usize {
        (self.duration_days / self.session_every_days).floor() as usize
    }
}

/// Runs a campaign, returning the provisioned cluster and the collected
/// dataset.
///
/// Total records = machines x benchmarks x sessions x runs_per_session.
pub fn run_campaign(config: &CampaignConfig) -> (Cluster, Store) {
    let _span = telemetry::span("campaign.run");
    let cluster = Cluster::provision(
        catalog(),
        config.scale,
        Timeline::cloudlab_default(),
        config.seed,
    );
    let store = collect(&cluster, config);
    (cluster, store)
}

/// Runs a campaign's measurement phase against an existing cluster.
pub fn collect(cluster: &Cluster, config: &CampaignConfig) -> Store {
    let _span = telemetry::span("campaign.collect");
    let mut store = Store::new();
    // Select machines: up to `machines_per_type` per type, whole fleet
    // otherwise.
    let mut selected = Vec::new();
    for t in cluster.types() {
        let of_type = cluster.machines_of_type(&t.name);
        let cap = config.machines_per_type.unwrap_or(of_type.len());
        selected.extend(of_type.into_iter().take(cap));
    }
    telemetry::metrics::gauge("campaign.machines").set(selected.len() as f64);
    let records = telemetry::metrics::counter("campaign.records");
    let machine_secs = telemetry::metrics::histogram("campaign.machine_secs");
    let sessions = config.sessions();
    for machine in selected {
        let started = telemetry::enabled().then(std::time::Instant::now);
        let before = store.len();
        for &bench in &config.benchmarks {
            for session in 0..sessions {
                let day = session as f64 * config.session_every_days;
                for run in 0..config.runs_per_session {
                    // The nonce folds the session in so every run of the
                    // campaign is a distinct draw.
                    let nonce = (session * config.runs_per_session + run) as u64;
                    let value = sample(cluster, machine.id, bench, day, nonce)
                        .expect("selected machines exist");
                    store.push(Record {
                        machine: machine.id,
                        machine_type: machine.type_name.clone(),
                        benchmark: bench,
                        day,
                        run: nonce as u32,
                        value,
                    });
                }
            }
        }
        records.add((store.len() - before) as u64);
        if let Some(t) = started {
            machine_secs.record(t.elapsed().as_secs_f64());
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_shape() {
        let config = CampaignConfig::quick(1);
        let (cluster, store) = run_campaign(&config);
        let machines = store.machines().len();
        // 10 types x 3 machines.
        assert_eq!(machines, 30);
        let expected = machines * 11 * config.sessions() * config.runs_per_session;
        assert_eq!(store.len(), expected);
        assert_eq!(store.benchmarks().len(), 11);
        assert!(cluster.machines().len() >= machines);
    }

    #[test]
    fn campaign_is_deterministic() {
        let config = CampaignConfig::quick(5);
        let (_, a) = run_campaign(&config);
        let (_, b) = run_campaign(&config);
        assert_eq!(a, b);
        let (_, c) = run_campaign(&CampaignConfig::quick(6));
        assert_ne!(a, c);
    }

    #[test]
    fn per_machine_bench_sample_count_is_sessions_times_runs() {
        let config = CampaignConfig::quick(2);
        let (_, store) = run_campaign(&config);
        let m = store.machines()[0];
        let vals = store
            .filter()
            .machine(m)
            .benchmark(BenchmarkId::MemTriad)
            .values();
        assert_eq!(vals.len(), config.sessions() * config.runs_per_session);
    }

    #[test]
    fn restricted_benchmarks() {
        let config = CampaignConfig::quick(3)
            .with_benchmarks(vec![BenchmarkId::DiskSeqRead, BenchmarkId::NetLatency]);
        let (_, store) = run_campaign(&config);
        assert_eq!(store.benchmarks().len(), 2);
    }

    #[test]
    fn values_are_positive_and_type_scaled() {
        let config = CampaignConfig::quick(4);
        let (cluster, store) = run_campaign(&config);
        assert!(store.records().iter().all(|r| r.value > 0.0));
        // Median disk-seq-read per type should track the type baseline.
        for t in cluster.types().iter().take(3) {
            let vals = store
                .filter()
                .machine_type(&t.name)
                .benchmark(BenchmarkId::DiskSeqRead)
                .values();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let rel = mean / t.disk_seq_mbps;
            assert!((0.7..1.3).contains(&rel), "{} rel {rel}", t.name);
        }
    }

    #[test]
    fn sessions_cover_the_timeline() {
        let config = CampaignConfig::quick(7);
        let (_, store) = run_campaign(&config);
        let ts = store
            .filter()
            .machine(store.machines()[0])
            .benchmark(BenchmarkId::MemLatency)
            .time_series();
        let first_day = ts.first().unwrap().0;
        let last_day = ts.last().unwrap().0;
        assert_eq!(first_day, 0.0);
        assert!(last_day >= 240.0, "last day {last_day}");
    }
}
