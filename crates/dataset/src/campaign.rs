//! The data-collection campaign generator.
//!
//! Recreates the paper's measurement campaign on the simulated testbed:
//! a fleet is provisioned, and every machine runs every benchmark in
//! periodic sessions across a multi-month timeline. The result is one
//! [`Store`] that all experiment pipelines slice.
//!
//! Two presets exist: [`CampaignConfig::quick`] (a small fleet,
//! CI-friendly, finishes in well under a second) and
//! [`CampaignConfig::paper`] (full fleet, ten months, millions of points
//! — the scale of the published dataset).
//!
//! # Parallel collection and the determinism contract
//!
//! The per-machine collect loop is embarrassingly parallel: every
//! measurement derives from an RNG stream owned by its machine
//! ([`testbed::machine_stream`]), so no draw depends on which thread — or
//! in which order — another machine is measured. [`collect`] therefore
//! shards the selected machines across `min(cores, machines)` scoped
//! worker threads by default, and **guarantees the resulting [`Store`] is
//! byte-identical for any worker count** (`tests/parallel_determinism.rs`
//! enforces this): machines are sorted by id, split into contiguous
//! chunks, and the per-worker shards are merged back in chunk order.

use std::num::NonZeroUsize;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use testbed::{catalog, Cluster, Machine, Timeline};
use workloads::{sample, BenchmarkId};

use crate::record::Record;
use crate::store::Store;

/// Parameters of a simulated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Fleet scale (1.0 = the full ~900-machine catalog).
    pub scale: f64,
    /// Campaign length in days.
    pub duration_days: f64,
    /// Days between measurement sessions.
    pub session_every_days: f64,
    /// Repetitions of each benchmark per session.
    pub runs_per_session: usize,
    /// Benchmarks to run (defaults to the full suite).
    pub benchmarks: Vec<BenchmarkId>,
    /// Cap on machines per type (None = whole fleet). Lets quick mode
    /// keep type diversity without the full fleet.
    pub machines_per_type: Option<usize>,
    /// Master seed (drives provisioning and every measurement).
    pub seed: u64,
}

impl CampaignConfig {
    /// CI-friendly preset: ~30 machines, 10 sessions, 5 runs each
    /// (50 samples per machine x benchmark, like the paper's
    /// 50-repetition experiments).
    pub fn quick(seed: u64) -> Self {
        Self {
            scale: 0.1,
            duration_days: 300.0,
            session_every_days: 30.0,
            runs_per_session: 5,
            benchmarks: BenchmarkId::ALL.to_vec(),
            machines_per_type: Some(3),
            seed,
        }
    }

    /// Full-scale preset: the whole fleet over ten months with 100
    /// sessions — millions of data points, the scale of the published
    /// dataset.
    pub fn paper(seed: u64) -> Self {
        Self {
            scale: 1.0,
            duration_days: 300.0,
            session_every_days: 3.0,
            runs_per_session: 5,
            benchmarks: BenchmarkId::ALL.to_vec(),
            machines_per_type: None,
            seed,
        }
    }

    /// Restricts the benchmark list.
    pub fn with_benchmarks(mut self, benchmarks: Vec<BenchmarkId>) -> Self {
        self.benchmarks = benchmarks;
        self
    }

    /// Number of sessions the timeline yields.
    pub fn sessions(&self) -> usize {
        (self.duration_days / self.session_every_days).floor() as usize
    }
}

/// Worker count [`collect`] uses when none is given: one per available
/// core (1 if parallelism cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs a campaign, returning the provisioned cluster and the collected
/// dataset. Collection is sharded across one worker per core; the result
/// is byte-identical to a single-threaded run (see [`run_campaign_jobs`]).
///
/// Total records = machines x benchmarks x sessions x runs_per_session.
pub fn run_campaign(config: &CampaignConfig) -> (Cluster, Store) {
    run_campaign_jobs(config, None)
}

/// Runs a campaign with an explicit worker count (`None` = one per core).
///
/// The returned [`Store`] is guaranteed byte-identical for every value of
/// `jobs`: each machine's measurements derive from its own RNG stream and
/// shards merge back in machine-id order.
pub fn run_campaign_jobs(config: &CampaignConfig, jobs: Option<usize>) -> (Cluster, Store) {
    let _span = telemetry::span("campaign.run");
    let cluster = Cluster::provision(
        catalog(),
        config.scale,
        Timeline::cloudlab_default(),
        config.seed,
    );
    let store = collect_jobs(&cluster, config, jobs);
    (cluster, store)
}

/// Runs a campaign's measurement phase against an existing cluster,
/// sharded across one worker per core (see [`collect_jobs`]).
pub fn collect(cluster: &Cluster, config: &CampaignConfig) -> Store {
    collect_jobs(cluster, config, None)
}

/// Runs a campaign's measurement phase with an explicit worker count
/// (`None` = one per core, clamped to the number of selected machines).
///
/// Machines are selected per type, sorted by id, and split into
/// contiguous chunks — one scoped worker thread per chunk. Workers
/// collect into private [`Store`] shards that merge back in chunk order,
/// so the record sequence (and hence any serialization of it) is
/// identical for every worker count and thread schedule. Worker spans are
/// named `campaign.worker.N`, run on threads named `campaign-worker-N`,
/// and parent under the `campaign.collect` span.
pub fn collect_jobs(cluster: &Cluster, config: &CampaignConfig, jobs: Option<usize>) -> Store {
    let _span = telemetry::span("campaign.collect");
    // Select machines: up to `machines_per_type` per type, whole fleet
    // otherwise.
    let mut selected = Vec::new();
    for t in cluster.types() {
        let of_type = cluster.machines_of_type(&t.name);
        let cap = config.machines_per_type.unwrap_or(of_type.len());
        selected.extend(of_type.into_iter().take(cap));
    }
    // Provisioning assigns ids in type order, so this is usually already
    // sorted; sorting makes the shard partition (and the merged record
    // order) independent of catalog iteration order.
    selected.sort_by_key(|m| m.id);
    let workers = jobs
        .unwrap_or_else(default_jobs)
        .clamp(1, selected.len().max(1));
    telemetry::metrics::gauge("campaign.machines").set(selected.len() as f64);
    telemetry::metrics::gauge("campaign.workers").set(workers as f64);
    let records = telemetry::metrics::counter("campaign.records");
    let store = if workers <= 1 {
        collect_shard(cluster, config, &selected, 0)
    } else {
        let chunk = selected.len().div_ceil(workers);
        let parent = telemetry::trace::current_context();
        let mut shards: Vec<Store> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = selected
                .chunks(chunk)
                .enumerate()
                .map(|(i, machines)| {
                    std::thread::Builder::new()
                        .name(format!("campaign-worker-{i}"))
                        .spawn_scoped(scope, move || {
                            let _span = telemetry::span_in(format!("campaign.worker.{i}"), parent);
                            collect_shard(cluster, config, machines, i)
                        })
                        .expect("spawning a campaign worker succeeds")
                })
                .collect();
            // Joining in spawn order merges shards in machine-id order no
            // matter which worker finishes first.
            shards = handles
                .into_iter()
                .map(|h| h.join().expect("campaign workers do not panic"))
                .collect();
        });
        let mut merged = Store::new();
        for shard in shards {
            merged.merge(shard);
        }
        merged
    };
    records.add(store.len() as u64);
    store
}

/// Collects every (benchmark, session, run) measurement for one worker's
/// slice of the fleet.
fn collect_shard(
    cluster: &Cluster,
    config: &CampaignConfig,
    machines: &[&Machine],
    worker: usize,
) -> Store {
    let machine_secs = telemetry::metrics::histogram("campaign.machine_secs");
    let worker_secs = telemetry::metrics::histogram(&format!("campaign.machine_secs.w{worker}"));
    let sessions = config.sessions();
    let mut store = Store::new();
    for machine in machines {
        let started = telemetry::enabled().then(Instant::now);
        for &bench in &config.benchmarks {
            for session in 0..sessions {
                let day = session as f64 * config.session_every_days;
                for run in 0..config.runs_per_session {
                    // The nonce folds the session in so every run of the
                    // campaign is a distinct draw.
                    let nonce = (session * config.runs_per_session + run) as u64;
                    let value = sample(cluster, machine.id, bench, day, nonce)
                        .expect("selected machines exist");
                    store.push(Record {
                        machine: machine.id,
                        machine_type: machine.type_name.clone(),
                        benchmark: bench,
                        day,
                        run: nonce as u32,
                        value,
                    });
                }
            }
        }
        if let Some(t) = started {
            let secs = t.elapsed().as_secs_f64();
            machine_secs.record(secs);
            worker_secs.record(secs);
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_shape() {
        let config = CampaignConfig::quick(1);
        let (cluster, store) = run_campaign(&config);
        let machines = store.machines().len();
        // 10 types x 3 machines.
        assert_eq!(machines, 30);
        let expected = machines * 11 * config.sessions() * config.runs_per_session;
        assert_eq!(store.len(), expected);
        assert_eq!(store.benchmarks().len(), 11);
        assert!(cluster.machines().len() >= machines);
    }

    #[test]
    fn campaign_is_deterministic() {
        let config = CampaignConfig::quick(5);
        let (_, a) = run_campaign(&config);
        let (_, b) = run_campaign(&config);
        assert_eq!(a, b);
        let (_, c) = run_campaign(&CampaignConfig::quick(6));
        assert_ne!(a, c);
    }

    #[test]
    fn worker_count_never_changes_the_store() {
        let config = CampaignConfig::quick(11)
            .with_benchmarks(vec![BenchmarkId::MemTriad, BenchmarkId::NetLatency]);
        let (cluster, sequential) = run_campaign_jobs(&config, Some(1));
        for jobs in [2, 3, 4, 7, 64] {
            let sharded = collect_jobs(&cluster, &config, Some(jobs));
            assert_eq!(sequential, sharded, "jobs={jobs} diverged");
        }
        // The default (one worker per core) must agree too.
        assert_eq!(sequential, collect(&cluster, &config));
    }

    #[test]
    fn worker_count_is_clamped_to_the_fleet() {
        // 10 types x 1 machine = 10 machines; asking for 1000 workers
        // must still produce the same store without panicking.
        let mut config = CampaignConfig::quick(3);
        config.machines_per_type = Some(1);
        config.benchmarks = vec![BenchmarkId::MemCopy];
        let (cluster, store) = run_campaign_jobs(&config, Some(1000));
        assert_eq!(store, collect_jobs(&cluster, &config, Some(1)));
    }

    #[test]
    fn per_machine_bench_sample_count_is_sessions_times_runs() {
        let config = CampaignConfig::quick(2);
        let (_, store) = run_campaign(&config);
        let m = store.machines()[0];
        let vals = store
            .filter()
            .machine(m)
            .benchmark(BenchmarkId::MemTriad)
            .values();
        assert_eq!(vals.len(), config.sessions() * config.runs_per_session);
    }

    #[test]
    fn restricted_benchmarks() {
        let config = CampaignConfig::quick(3)
            .with_benchmarks(vec![BenchmarkId::DiskSeqRead, BenchmarkId::NetLatency]);
        let (_, store) = run_campaign(&config);
        assert_eq!(store.benchmarks().len(), 2);
    }

    #[test]
    fn values_are_positive_and_type_scaled() {
        let config = CampaignConfig::quick(4);
        let (cluster, store) = run_campaign(&config);
        assert!(store.records().iter().all(|r| r.value > 0.0));
        // Median disk-seq-read per type should track the type baseline.
        for t in cluster.types().iter().take(3) {
            let vals = store
                .filter()
                .machine_type(&t.name)
                .benchmark(BenchmarkId::DiskSeqRead)
                .values();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let rel = mean / t.disk_seq_mbps;
            assert!((0.7..1.3).contains(&rel), "{} rel {rel}", t.name);
        }
    }

    #[test]
    fn sessions_cover_the_timeline() {
        let config = CampaignConfig::quick(7);
        let (_, store) = run_campaign(&config);
        let ts = store
            .filter()
            .machine(store.machines()[0])
            .benchmark(BenchmarkId::MemLatency)
            .time_series();
        let first_day = ts.first().unwrap().0;
        let last_day = ts.last().unwrap().0;
        assert_eq!(first_day, 0.0);
        assert!(last_day >= 240.0, "last day {last_day}");
    }
}
