//! The data-collection campaign generator.
//!
//! Recreates the paper's measurement campaign on the simulated testbed:
//! a fleet is provisioned, and every machine runs every benchmark in
//! periodic sessions across a multi-month timeline. The result is one
//! [`Store`] that all experiment pipelines slice.
//!
//! Two presets exist: [`CampaignConfig::quick`] (a small fleet,
//! CI-friendly, finishes in well under a second) and
//! [`CampaignConfig::paper`] (full fleet, ten months, millions of points
//! — the scale of the published dataset).
//!
//! # Parallel collection and the determinism contract
//!
//! The per-machine collect loop is embarrassingly parallel: every
//! measurement derives from an RNG stream owned by its machine
//! ([`testbed::machine_stream`]), so no draw depends on which thread — or
//! in which order — another machine is measured. [`collect`] therefore
//! shards the selected machines across `min(cores, machines)` scoped
//! worker threads by default, and **guarantees the resulting [`Store`] is
//! byte-identical for any worker count** (`tests/parallel_determinism.rs`
//! enforces this): machines are sorted by id, split into contiguous
//! chunks, and the per-worker shards are merged back in chunk order.

use std::collections::HashMap;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};
use testbed::{catalog, Cluster, FaultPlan, FaultPolicy, Machine, MachineId, Timeline};
use workloads::{sample, BenchmarkId};

use crate::journal::{JournalError, ShardJournal};
use crate::record::Record;
use crate::store::{sorted_machine_ids, Store};

/// Parameters of a simulated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Fleet scale (1.0 = the full ~900-machine catalog).
    pub scale: f64,
    /// Campaign length in days.
    pub duration_days: f64,
    /// Days between measurement sessions.
    pub session_every_days: f64,
    /// Repetitions of each benchmark per session.
    pub runs_per_session: usize,
    /// Benchmarks to run (defaults to the full suite).
    pub benchmarks: Vec<BenchmarkId>,
    /// Cap on machines per type (None = whole fleet). Lets quick mode
    /// keep type diversity without the full fleet.
    pub machines_per_type: Option<usize>,
    /// Master seed (drives provisioning and every measurement).
    pub seed: u64,
}

impl CampaignConfig {
    /// CI-friendly preset: ~30 machines, 10 sessions, 5 runs each
    /// (50 samples per machine x benchmark, like the paper's
    /// 50-repetition experiments).
    pub fn quick(seed: u64) -> Self {
        Self {
            scale: 0.1,
            duration_days: 300.0,
            session_every_days: 30.0,
            runs_per_session: 5,
            benchmarks: BenchmarkId::ALL.to_vec(),
            machines_per_type: Some(3),
            seed,
        }
    }

    /// Full-scale preset: the whole fleet over ten months with 100
    /// sessions — millions of data points, the scale of the published
    /// dataset.
    pub fn paper(seed: u64) -> Self {
        Self {
            scale: 1.0,
            duration_days: 300.0,
            session_every_days: 3.0,
            runs_per_session: 5,
            benchmarks: BenchmarkId::ALL.to_vec(),
            machines_per_type: None,
            seed,
        }
    }

    /// Restricts the benchmark list.
    pub fn with_benchmarks(mut self, benchmarks: Vec<BenchmarkId>) -> Self {
        self.benchmarks = benchmarks;
        self
    }

    /// Number of sessions the timeline yields.
    pub fn sessions(&self) -> usize {
        (self.duration_days / self.session_every_days).floor() as usize
    }
}

/// Worker count [`collect`] uses when none is given: one per available
/// core (1 if parallelism cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs a campaign, returning the provisioned cluster and the collected
/// dataset. Collection is sharded across one worker per core; the result
/// is byte-identical to a single-threaded run (see [`run_campaign_jobs`]).
///
/// Total records = machines x benchmarks x sessions x runs_per_session.
pub fn run_campaign(config: &CampaignConfig) -> (Cluster, Store) {
    run_campaign_jobs(config, None)
}

/// Runs a campaign with an explicit worker count (`None` = one per core).
///
/// The returned [`Store`] is guaranteed byte-identical for every value of
/// `jobs`: each machine's measurements derive from its own RNG stream and
/// shards merge back in machine-id order.
pub fn run_campaign_jobs(config: &CampaignConfig, jobs: Option<usize>) -> (Cluster, Store) {
    let _span = telemetry::span("campaign.run");
    let cluster = Cluster::provision(
        catalog(),
        config.scale,
        Timeline::cloudlab_default(),
        config.seed,
    );
    let store = collect_jobs(&cluster, config, jobs);
    (cluster, store)
}

/// [`run_campaign_jobs`] under the fault model: provisions the cluster
/// and collects through [`collect_resumable`], so the caller can attach
/// a journal and a chaos plan.
pub fn run_campaign_resumable(
    config: &CampaignConfig,
    options: &CollectOptions<'_>,
) -> Result<(Cluster, Collected), CampaignError> {
    let _span = telemetry::span("campaign.run");
    let cluster = Cluster::provision(
        catalog(),
        config.scale,
        Timeline::cloudlab_default(),
        config.seed,
    );
    let collected = collect_resumable(&cluster, config, options)?;
    Ok((cluster, collected))
}

/// Runs a campaign's measurement phase against an existing cluster,
/// sharded across one worker per core (see [`collect_jobs`]).
pub fn collect(cluster: &Cluster, config: &CampaignConfig) -> Store {
    collect_jobs(cluster, config, None)
}

/// Runs a campaign's measurement phase with an explicit worker count
/// (`None` = one per core, clamped to the number of selected machines).
///
/// Machines are selected per type, sorted by id, and split into
/// contiguous chunks — one scoped worker thread per chunk. Workers
/// collect into private per-machine shards that merge back in machine-id
/// order, so the record sequence (and hence any serialization of it) is
/// identical for every worker count and thread schedule. Worker spans are
/// named `campaign.worker.N`, run on threads named `campaign-worker-N`,
/// and parent under the `campaign.collect` span.
///
/// This is the infallible path (no journal, no fault injection); see
/// [`collect_resumable`] for checkpointed and chaos-injected collection.
pub fn collect_jobs(cluster: &Cluster, config: &CampaignConfig, jobs: Option<usize>) -> Store {
    let options = CollectOptions {
        jobs,
        ..CollectOptions::default()
    };
    collect_resumable(cluster, config, &options)
        .expect("collection without a journal or fault injection cannot fail")
        .store
}

/// How [`collect_resumable`] checkpoints, injects, and retries.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectOptions<'a> {
    /// Worker threads (`None` = one per core, clamped to the number of
    /// machines still to collect).
    pub jobs: Option<usize>,
    /// Write-ahead journal: completed machine shards already present are
    /// replayed instead of re-collected, and every freshly collected
    /// shard is durably recorded before the worker moves on.
    pub journal: Option<&'a ShardJournal>,
    /// Chaos plan; `None` injects nothing.
    pub faults: Option<FaultPlan>,
    /// Retry budget and backoff for transient machine faults and
    /// journal-write I/O errors.
    pub policy: FaultPolicy,
}

/// Why a resumable collection could not complete.
#[derive(Debug)]
pub enum CampaignError {
    /// The journal could not be opened or written (after retries).
    Journal(JournalError),
    /// A chaos-injected worker death. The machine named here *was*
    /// durably journaled first, so a resumed run makes progress past it.
    WorkerKilled {
        /// The machine whose post-commit site fired.
        machine: MachineId,
    },
    /// A machine kept failing past the retry budget.
    MachineFailed {
        /// The machine that failed.
        machine: MachineId,
        /// Total attempts made (initial + retries).
        attempts: u32,
        /// Human-readable cause of the final failure.
        message: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Journal(e) => write!(f, "{e}"),
            CampaignError::WorkerKilled { machine } => write!(
                f,
                "campaign worker killed by chaos injection after journaling machine {}",
                machine.0
            ),
            CampaignError::MachineFailed {
                machine,
                attempts,
                message,
            } => write!(
                f,
                "machine {} failed after {attempts} attempts: {message}",
                machine.0
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

/// Counters describing one resumable collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectReport {
    /// Machines replayed from the journal instead of re-collected.
    pub replayed: usize,
    /// Machines collected fresh this run.
    pub collected: usize,
    /// Chaos faults injected (transient + I/O + deaths).
    pub injected: u64,
    /// Retries performed after transient or I/O failures.
    pub retried: u64,
}

/// A completed resumable collection: the merged store plus its counters.
#[derive(Debug)]
pub struct Collected {
    /// The full campaign dataset, byte-identical to an uninterrupted
    /// single-threaded run.
    pub store: Store,
    /// Replay/collection/fault accounting.
    pub report: CollectReport,
}

/// Checkpointed, fault-injectable collection — the engine behind
/// `--resume` and `--chaos`.
///
/// Semantics on top of [`collect_jobs`]:
///
/// - machines whose shards are already journaled are **replayed** (a
///   pure byte-identical substitute for re-collection, because every
///   measurement derives from the machine's own RNG stream);
/// - each freshly collected machine is journaled (temp + rename) before
///   the worker moves on, so a kill at any point loses at most the
///   shards in flight;
/// - with a [`FaultPlan`], transient machine faults and journal-write
///   I/O errors are injected at deterministic sites and retried under
///   `options.policy` (`fault.injected` / `fault.retried` telemetry
///   counters), and worker deaths fire at post-commit sites —
///   [`CampaignError::WorkerKilled`] — which a resumed run never
///   revisits, so repeated resume converges to a complete store.
///
/// The merged store is byte-identical for any worker count, any
/// replayed/collected split, and any chaos seed that lets the run
/// complete.
pub fn collect_resumable(
    cluster: &Cluster,
    config: &CampaignConfig,
    options: &CollectOptions<'_>,
) -> Result<Collected, CampaignError> {
    let _span = telemetry::span("campaign.collect");
    let selected = selected_machines(cluster, config);

    // Phase 1: replay journaled shards. A corrupt or truncated shard
    // loads as None and the machine is simply re-collected.
    let mut replayed: Vec<Option<Vec<Record>>> = Vec::with_capacity(selected.len());
    let mut pending: Vec<&Machine> = Vec::new();
    for &m in &selected {
        let shard = options.journal.and_then(|j| j.load(m.id));
        if shard.is_none() {
            pending.push(m);
        }
        replayed.push(shard);
    }
    let replay_count = selected.len() - pending.len();
    telemetry::metrics::gauge("campaign.machines").set(selected.len() as f64);
    telemetry::metrics::counter("campaign.machines.replayed").add(replay_count as u64);
    let records = telemetry::metrics::counter("campaign.records");
    let injected = AtomicU64::new(0);
    let retried = AtomicU64::new(0);

    // Phase 2: collect the pending machines, sharded as in collect_jobs.
    let collected = collect_pending_sharded(
        cluster, config, &pending, options, &injected, &retried, true,
    )?;

    // Phase 3: merge in machine-id order — replayed and fresh shards
    // interleave exactly as an uninterrupted run would have laid them
    // out.
    let mut by_id: HashMap<u32, Vec<Record>> = collected
        .into_iter()
        .map(|(id, recs)| (id.0, recs))
        .collect();
    let mut store = Store::new();
    for (slot, &m) in selected.iter().enumerate() {
        match replayed[slot].take() {
            Some(shard) => store.extend(shard),
            None => store.extend(
                by_id
                    .remove(&m.id.0)
                    .expect("every pending machine was collected"),
            ),
        }
    }
    records.add(store.len() as u64);
    Ok(Collected {
        store,
        report: CollectReport {
            replayed: replay_count,
            collected: pending.len(),
            injected: injected.load(Ordering::Relaxed),
            retried: retried.load(Ordering::Relaxed),
        },
    })
}

/// Collects a campaign *into the journal only* — phases 1–2 of
/// [`collect_resumable`] with no phase-3 merge, so no store is ever
/// materialized. This is the producer half of the streaming data path
/// (DESIGN.md §11): each worker holds at most one shard of records at a
/// time and drops it as soon as it is durably journaled, bounding
/// collection memory at O(jobs × largest shard) instead of O(fleet).
///
/// On return the journal is complete: every selected machine has a
/// valid shard, ready for [`crate::stream::ShardReader`] replay in
/// ascending machine-id order. Resume, chaos injection, and worker-death
/// semantics are identical to [`collect_resumable`] — the two share the
/// selection, replay-validation, and worker code paths.
///
/// # Errors
///
/// Fails like [`collect_resumable`]; additionally, a missing
/// `options.journal` is an error (there is nowhere to stream from).
pub fn collect_to_journal(
    cluster: &Cluster,
    config: &CampaignConfig,
    options: &CollectOptions<'_>,
) -> Result<CollectReport, CampaignError> {
    let _span = telemetry::span("campaign.collect");
    let journal = options.journal.ok_or_else(|| {
        CampaignError::Journal(JournalError::Io(std::io::Error::other(
            "streaming collection requires a journal directory",
        )))
    })?;
    let selected = selected_machines(cluster, config);

    // Phase 1: validate existing shards (full checksum parse, records
    // dropped immediately); anything invalid is re-collected.
    let mut pending: Vec<&Machine> = Vec::new();
    let mut replay_count = 0usize;
    for &m in &selected {
        if journal.load(m.id).is_some() {
            replay_count += 1;
        } else {
            pending.push(m);
        }
    }
    telemetry::metrics::gauge("campaign.machines").set(selected.len() as f64);
    telemetry::metrics::counter("campaign.machines.replayed").add(replay_count as u64);
    let injected = AtomicU64::new(0);
    let retried = AtomicU64::new(0);

    // Phase 2: collect + journal the pending machines; `keep = false`
    // discards each shard once durable.
    collect_pending_sharded(
        cluster, config, &pending, options, &injected, &retried, false,
    )?;

    let total: usize = selected
        .iter()
        .filter_map(|m| journal.record_count(m.id))
        .sum();
    telemetry::metrics::counter("campaign.records").add(total as u64);
    Ok(CollectReport {
        replayed: replay_count,
        collected: pending.len(),
        injected: injected.load(Ordering::Relaxed),
        retried: retried.load(Ordering::Relaxed),
    })
}

/// The ids of the machines a campaign would collect, in the canonical
/// ascending order ([`sorted_machine_ids`]). This is the unit-of-work
/// universe distributed collection partitions: supervisor and workers
/// must agree on it exactly, and it is a pure function of the cluster
/// and configuration.
pub fn selected_machine_ids(cluster: &Cluster, config: &CampaignConfig) -> Vec<MachineId> {
    selected_machines(cluster, config)
        .into_iter()
        .map(|m| m.id)
        .collect()
}

/// Collects a single machine and journals its shard, with the same
/// transient-fault injection and retry semantics as
/// [`collect_resumable`] — but no post-commit worker-death site: the
/// distributed layer places its own process-level fault sites around
/// this call. `options.journal` is ignored; the shard goes to `journal`.
///
/// Returns the fault accounting for this one machine
/// (`collected == 1`, `replayed == 0`).
pub fn collect_one_machine(
    cluster: &Cluster,
    config: &CampaignConfig,
    machine: MachineId,
    journal: &ShardJournal,
    options: &CollectOptions<'_>,
) -> Result<CollectReport, CampaignError> {
    let machine = cluster
        .machine(machine)
        .ok_or_else(|| CampaignError::MachineFailed {
            machine,
            attempts: 0,
            message: "machine is not part of the provisioned cluster".to_string(),
        })?;
    let injected = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    let recs = collect_machine_retrying(cluster, config, machine, options, &injected, &retried)?;
    journal_shard_retrying(journal, machine.id, &recs, options, &injected, &retried)?;
    Ok(CollectReport {
        replayed: 0,
        collected: 1,
        injected: injected.load(Ordering::Relaxed),
        retried: retried.load(Ordering::Relaxed),
    })
}

/// Selects up to `machines_per_type` machines per type (whole fleet
/// otherwise), in the canonical ascending-id order shared by collection
/// and journal replay ([`sorted_machine_ids`]). Provisioning assigns ids
/// in type order, so this is usually already sorted; normalizing makes
/// the shard partition (and the merged record order) independent of
/// catalog iteration order.
fn selected_machines<'a>(cluster: &'a Cluster, config: &CampaignConfig) -> Vec<&'a Machine> {
    let mut of_type = Vec::new();
    for t in cluster.types() {
        let machines = cluster.machines_of_type(&t.name);
        let cap = config.machines_per_type.unwrap_or(machines.len());
        of_type.extend(machines.into_iter().take(cap));
    }
    sorted_machine_ids(of_type.iter().map(|m| m.id))
        .into_iter()
        .map(|id| cluster.machine(id).expect("selected machines exist"))
        .collect()
}

/// Fans the pending machines across `options.jobs` scoped workers (the
/// phase-2 body shared by [`collect_resumable`] and
/// [`collect_to_journal`]). With `keep`, each worker returns its shards
/// for the phase-3 merge; without it, shards are dropped as soon as they
/// are journaled and the result is empty — the bounded-memory producer
/// mode.
#[allow(clippy::too_many_arguments)]
fn collect_pending_sharded(
    cluster: &Cluster,
    config: &CampaignConfig,
    pending: &[&Machine],
    options: &CollectOptions<'_>,
    injected: &AtomicU64,
    retried: &AtomicU64,
    keep: bool,
) -> Result<WorkerShards, CampaignError> {
    let workers = options
        .jobs
        .unwrap_or_else(default_jobs)
        .clamp(1, pending.len().max(1));
    telemetry::metrics::gauge("campaign.workers").set(workers as f64);
    if workers <= 1 {
        return collect_pending(
            cluster, config, pending, 0, options, injected, retried, keep,
        );
    }
    let chunk = pending.len().div_ceil(workers);
    let parent = telemetry::trace::current_context();
    let mut results: Vec<Result<WorkerShards, CampaignError>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = pending
            .chunks(chunk)
            .enumerate()
            .map(|(i, machines)| {
                std::thread::Builder::new()
                    .name(format!("campaign-worker-{i}"))
                    .spawn_scoped(scope, move || {
                        let _span = telemetry::span_in(format!("campaign.worker.{i}"), parent);
                        collect_pending(
                            cluster, config, machines, i, options, injected, retried, keep,
                        )
                    })
                    .expect("spawning a campaign worker succeeds")
            })
            .collect();
        // Joining in spawn order keeps error reporting (and shard
        // merge order) independent of which worker finishes first.
        results = handles
            .into_iter()
            .map(|h| h.join().expect("campaign workers do not panic"))
            .collect();
    });
    let mut collected: WorkerShards = Vec::new();
    for result in results {
        collected.extend(result?);
    }
    Ok(collected)
}

/// One worker's output: the shards it collected, in machine order.
type WorkerShards = Vec<(MachineId, Vec<Record>)>;

/// Collects one worker's slice of the pending machines, journaling each
/// completed shard before moving to the next machine. Without `keep`,
/// shards are dropped once journaled (streaming producer mode) and the
/// returned vector stays empty.
#[allow(clippy::too_many_arguments)]
fn collect_pending(
    cluster: &Cluster,
    config: &CampaignConfig,
    machines: &[&Machine],
    worker: usize,
    options: &CollectOptions<'_>,
    injected: &AtomicU64,
    retried: &AtomicU64,
    keep: bool,
) -> Result<WorkerShards, CampaignError> {
    let machine_secs = telemetry::metrics::histogram("campaign.machine_secs");
    let worker_secs = telemetry::metrics::histogram(&format!("campaign.machine_secs.w{worker}"));
    let mut out = Vec::with_capacity(if keep { machines.len() } else { 0 });
    for machine in machines {
        let started = telemetry::enabled().then(Instant::now);
        let recs = collect_machine_retrying(cluster, config, machine, options, injected, retried)?;
        if let Some(journal) = options.journal {
            journal_shard_retrying(journal, machine.id, &recs, options, injected, retried)?;
            // Post-commit death site: the shard above is durable, so a
            // resumed run replays it and never re-reaches this site —
            // every resume makes monotonic progress.
            let site = format!("campaign.commit.m{}", machine.id.0);
            if options.faults.is_some_and(|f| f.worker_death(&site)) {
                injected.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::counter("fault.injected").inc();
                return Err(CampaignError::WorkerKilled {
                    machine: machine.id,
                });
            }
        }
        if let Some(t) = started {
            let secs = t.elapsed().as_secs_f64();
            machine_secs.record(secs);
            worker_secs.record(secs);
        }
        if keep {
            out.push((machine.id, recs));
        }
    }
    Ok(out)
}

/// Collects one machine, injecting and retrying transient faults under
/// the policy. Because injected faults stop firing before the default
/// retry budget is exhausted (see `testbed::faults`), an injected-only
/// run always recovers; a genuinely failing machine surfaces as
/// [`CampaignError::MachineFailed`].
fn collect_machine_retrying(
    cluster: &Cluster,
    config: &CampaignConfig,
    machine: &Machine,
    options: &CollectOptions<'_>,
    injected: &AtomicU64,
    retried: &AtomicU64,
) -> Result<Vec<Record>, CampaignError> {
    let site = format!("campaign.machine.m{}", machine.id.0);
    let mut attempt = 0;
    loop {
        if options.faults.is_some_and(|f| f.transient(&site, attempt)) {
            injected.fetch_add(1, Ordering::Relaxed);
            telemetry::metrics::counter("fault.injected").inc();
            if attempt < options.policy.max_retries {
                retried.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::counter("fault.retried").inc();
                std::thread::sleep(options.policy.backoff_for(attempt));
                attempt += 1;
                continue;
            }
            return Err(CampaignError::MachineFailed {
                machine: machine.id,
                attempts: attempt + 1,
                message: "injected transient fault (chaos)".to_string(),
            });
        }
        return Ok(collect_machine(cluster, config, machine));
    }
}

/// Journals one completed shard, injecting and retrying I/O faults under
/// the policy. Real journal errors get the same retry budget before they
/// abort the collection.
fn journal_shard_retrying(
    journal: &ShardJournal,
    machine: MachineId,
    recs: &[Record],
    options: &CollectOptions<'_>,
    injected: &AtomicU64,
    retried: &AtomicU64,
) -> Result<(), CampaignError> {
    let site = format!("journal.write.m{}", machine.0);
    let mut attempt = 0;
    loop {
        let result = if options.faults.is_some_and(|f| f.io_error(&site, attempt)) {
            injected.fetch_add(1, Ordering::Relaxed);
            telemetry::metrics::counter("fault.injected").inc();
            Err(JournalError::Io(std::io::Error::other(
                "injected I/O fault (chaos)",
            )))
        } else {
            journal.record(machine, recs)
        };
        match result {
            Ok(()) => return Ok(()),
            Err(_) if attempt < options.policy.max_retries => {
                retried.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::counter("fault.retried").inc();
                std::thread::sleep(options.policy.backoff_for(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Collects every (benchmark, session, run) measurement for one machine.
fn collect_machine(cluster: &Cluster, config: &CampaignConfig, machine: &Machine) -> Vec<Record> {
    let sessions = config.sessions();
    let mut records =
        Vec::with_capacity(config.benchmarks.len() * sessions * config.runs_per_session);
    for &bench in &config.benchmarks {
        for session in 0..sessions {
            let day = session as f64 * config.session_every_days;
            for run in 0..config.runs_per_session {
                // The nonce folds the session in so every run of the
                // campaign is a distinct draw.
                let nonce = (session * config.runs_per_session + run) as u64;
                let value = sample(cluster, machine.id, bench, day, nonce)
                    .expect("selected machines exist");
                records.push(Record {
                    machine: machine.id,
                    machine_type: machine.type_name.clone(),
                    benchmark: bench,
                    day,
                    run: nonce as u32,
                    value,
                });
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_shape() {
        let config = CampaignConfig::quick(1);
        let (cluster, store) = run_campaign(&config);
        let machines = store.machines().len();
        // 10 types x 3 machines.
        assert_eq!(machines, 30);
        let expected = machines * 11 * config.sessions() * config.runs_per_session;
        assert_eq!(store.len(), expected);
        assert_eq!(store.benchmarks().len(), 11);
        assert!(cluster.machines().len() >= machines);
    }

    #[test]
    fn campaign_is_deterministic() {
        let config = CampaignConfig::quick(5);
        let (_, a) = run_campaign(&config);
        let (_, b) = run_campaign(&config);
        assert_eq!(a, b);
        let (_, c) = run_campaign(&CampaignConfig::quick(6));
        assert_ne!(a, c);
    }

    #[test]
    fn worker_count_never_changes_the_store() {
        let config = CampaignConfig::quick(11)
            .with_benchmarks(vec![BenchmarkId::MemTriad, BenchmarkId::NetLatency]);
        let (cluster, sequential) = run_campaign_jobs(&config, Some(1));
        for jobs in [2, 3, 4, 7, 64] {
            let sharded = collect_jobs(&cluster, &config, Some(jobs));
            assert_eq!(sequential, sharded, "jobs={jobs} diverged");
        }
        // The default (one worker per core) must agree too.
        assert_eq!(sequential, collect(&cluster, &config));
    }

    #[test]
    fn worker_count_is_clamped_to_the_fleet() {
        // 10 types x 1 machine = 10 machines; asking for 1000 workers
        // must still produce the same store without panicking.
        let mut config = CampaignConfig::quick(3);
        config.machines_per_type = Some(1);
        config.benchmarks = vec![BenchmarkId::MemCopy];
        let (cluster, store) = run_campaign_jobs(&config, Some(1000));
        assert_eq!(store, collect_jobs(&cluster, &config, Some(1)));
    }

    #[test]
    fn per_machine_bench_sample_count_is_sessions_times_runs() {
        let config = CampaignConfig::quick(2);
        let (_, store) = run_campaign(&config);
        let m = store.machines()[0];
        let vals = store
            .filter()
            .machine(m)
            .benchmark(BenchmarkId::MemTriad)
            .values();
        assert_eq!(vals.len(), config.sessions() * config.runs_per_session);
    }

    #[test]
    fn restricted_benchmarks() {
        let config = CampaignConfig::quick(3)
            .with_benchmarks(vec![BenchmarkId::DiskSeqRead, BenchmarkId::NetLatency]);
        let (_, store) = run_campaign(&config);
        assert_eq!(store.benchmarks().len(), 2);
    }

    #[test]
    fn values_are_positive_and_type_scaled() {
        let config = CampaignConfig::quick(4);
        let (cluster, store) = run_campaign(&config);
        assert!(store.records().iter().all(|r| r.value > 0.0));
        // Median disk-seq-read per type should track the type baseline.
        for t in cluster.types().iter().take(3) {
            let vals = store
                .filter()
                .machine_type(&t.name)
                .benchmark(BenchmarkId::DiskSeqRead)
                .values();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let rel = mean / t.disk_seq_mbps;
            assert!((0.7..1.3).contains(&rel), "{} rel {rel}", t.name);
        }
    }

    #[test]
    fn sessions_cover_the_timeline() {
        let config = CampaignConfig::quick(7);
        let (_, store) = run_campaign(&config);
        let ts = store
            .filter()
            .machine(store.machines()[0])
            .benchmark(BenchmarkId::MemLatency)
            .time_series();
        let first_day = ts.first().unwrap().0;
        let last_day = ts.last().unwrap().0;
        assert_eq!(first_day, 0.0);
        assert!(last_day >= 240.0, "last day {last_day}");
    }

    use crate::journal::ShardJournal;
    use std::path::PathBuf;
    use std::time::Duration;

    fn journal_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "campaign-journal-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_config(seed: u64) -> CampaignConfig {
        let mut config = CampaignConfig::quick(seed);
        config.machines_per_type = Some(1);
        config.benchmarks = vec![BenchmarkId::MemCopy, BenchmarkId::NetLatency];
        config
    }

    fn fast_policy(max_retries: u32) -> FaultPolicy {
        FaultPolicy::new(max_retries, Duration::from_micros(10))
    }

    #[test]
    fn journaled_run_resumes_as_a_noop() {
        let config = tiny_config(21);
        let (cluster, golden) = run_campaign_jobs(&config, Some(2));
        let dir = journal_dir("noop");
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let options = CollectOptions {
            jobs: Some(2),
            journal: Some(&journal),
            ..CollectOptions::default()
        };
        let first = collect_resumable(&cluster, &config, &options).unwrap();
        assert_eq!(first.store, golden, "journaled run matches plain run");
        assert_eq!(first.report.replayed, 0);
        assert_eq!(first.report.collected, 10);
        // Resuming a completed run replays everything, collects nothing.
        let second = collect_resumable(&cluster, &config, &options).unwrap();
        assert_eq!(second.store, golden, "replayed store is byte-identical");
        assert_eq!(second.report.replayed, 10);
        assert_eq!(second.report.collected, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_transients_recover_under_the_default_budget() {
        let config = tiny_config(22);
        let (cluster, golden) = run_campaign_jobs(&config, Some(1));
        // Transient + I/O faults at high rates, no deaths: the run must
        // complete in one go and match the fault-free store.
        let faults = FaultPlan::with_rates(77, 900, 900, 0);
        let dir = journal_dir("transient");
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let options = CollectOptions {
            jobs: Some(3),
            journal: Some(&journal),
            faults: Some(faults),
            policy: fast_policy(2),
        };
        let collected = collect_resumable(&cluster, &config, &options).unwrap();
        assert_eq!(collected.store, golden, "chaos run is byte-identical");
        assert!(collected.report.injected > 0, "faults were injected");
        assert!(collected.report.retried > 0, "faults were retried");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_death_then_resume_converges_to_the_golden_store() {
        let config = tiny_config(23);
        let (cluster, golden) = run_campaign_jobs(&config, Some(1));
        let faults = FaultPlan::with_rates(5, 400, 300, 500);
        let dir = journal_dir("death");
        let journal = ShardJournal::open(&dir, &config).unwrap();
        let options = CollectOptions {
            jobs: Some(2),
            journal: Some(&journal),
            faults: Some(faults),
            policy: fast_policy(2),
        };
        let mut kills = 0;
        let collected = loop {
            match collect_resumable(&cluster, &config, &options) {
                Ok(c) => break c,
                Err(CampaignError::WorkerKilled { .. }) => {
                    kills += 1;
                    assert!(
                        kills <= 11,
                        "resume must converge (one kill per machine max)"
                    );
                }
                Err(e) => panic!("unexpected campaign error: {e}"),
            }
        };
        assert!(kills > 0, "this seed is expected to kill at least once");
        assert_eq!(collected.store, golden, "resumed store is byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_retry_budget_surfaces_machine_failure() {
        let config = tiny_config(24);
        let (cluster, _) = run_campaign_jobs(&config, Some(1));
        let faults = FaultPlan::with_rates(1, 1000, 0, 0);
        let options = CollectOptions {
            jobs: Some(1),
            journal: None,
            faults: Some(faults),
            policy: fast_policy(0), // no retries: first injection is fatal
        };
        let err = collect_resumable(&cluster, &config, &options).unwrap_err();
        match err {
            CampaignError::MachineFailed {
                attempts, message, ..
            } => {
                assert_eq!(attempts, 1);
                assert!(message.contains("injected transient fault"));
            }
            other => panic!("expected MachineFailed, got {other}"),
        }
    }

    #[test]
    fn worker_death_requires_a_journal() {
        // Without a journal there is no commit point, so deaths are not
        // injected and the run completes.
        let config = tiny_config(25);
        let (cluster, golden) = run_campaign_jobs(&config, Some(1));
        let faults = FaultPlan::with_rates(5, 0, 0, 1000);
        let options = CollectOptions {
            jobs: Some(2),
            journal: None,
            faults: Some(faults),
            policy: fast_policy(2),
        };
        let collected = collect_resumable(&cluster, &config, &options).unwrap();
        assert_eq!(collected.store, golden);
    }
}
