//! In-memory measurement store with filtering and grouping.
//!
//! The paper's analysis slices one big dataset every which way — by
//! benchmark, by machine type, by individual machine, by time window.
//! [`Store`] holds the records and [`Query`] is the slicing API all
//! experiment pipelines use.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use testbed::MachineId;
use workloads::BenchmarkId;

use crate::record::Record;

/// An append-only collection of measurement records.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Store {
    records: Vec<Record>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// Appends many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = Record>) {
        self.records.extend(records);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Merges another store's records into this one (append semantics;
    /// use when combining campaigns or sites).
    pub fn merge(&mut self, other: Store) {
        self.records.extend(other.records);
    }

    /// Starts a filtered query.
    pub fn filter(&self) -> Query<'_> {
        Query {
            store: self,
            benchmark: None,
            machine_type: None,
            machine: None,
            day_range: None,
        }
    }

    /// Sorted unique machine ids present.
    pub fn machines(&self) -> Vec<MachineId> {
        sorted_machine_ids(self.records.iter().map(|r| r.machine))
    }

    /// Sorted unique machine-type names present.
    pub fn machine_types(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .records
            .iter()
            .map(|r| r.machine_type.clone())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Sorted unique benchmarks present.
    pub fn benchmarks(&self) -> Vec<BenchmarkId> {
        let mut bs: Vec<BenchmarkId> = self.records.iter().map(|r| r.benchmark).collect();
        bs.sort_unstable();
        bs.dedup();
        bs
    }
}

/// Sorts machine ids ascending and drops duplicates.
///
/// This is THE canonical machine order of the whole data path: campaign
/// collection visits machines in this order, the shard journal replays
/// them in this order, and the streaming layer folds shards in this
/// order — which is what makes materialized and streaming analysis
/// byte-identical (DESIGN.md §11).
pub fn sorted_machine_ids(ids: impl IntoIterator<Item = MachineId>) -> Vec<MachineId> {
    let mut ids: Vec<MachineId> = ids.into_iter().collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// A lazily evaluated filter over a [`Store`].
#[derive(Debug, Clone)]
pub struct Query<'a> {
    store: &'a Store,
    benchmark: Option<BenchmarkId>,
    machine_type: Option<String>,
    machine: Option<MachineId>,
    day_range: Option<(f64, f64)>,
}

impl<'a> Query<'a> {
    /// Restricts to one benchmark.
    pub fn benchmark(mut self, b: BenchmarkId) -> Self {
        self.benchmark = Some(b);
        self
    }

    /// Restricts to one machine type.
    pub fn machine_type(mut self, t: &str) -> Self {
        self.machine_type = Some(t.to_string());
        self
    }

    /// Restricts to one machine.
    pub fn machine(mut self, m: MachineId) -> Self {
        self.machine = Some(m);
        self
    }

    /// Restricts to days in `[from, to)`.
    pub fn days(mut self, from: f64, to: f64) -> Self {
        self.day_range = Some((from, to));
        self
    }

    fn matches(&self, r: &Record) -> bool {
        self.benchmark.map(|b| r.benchmark == b).unwrap_or(true)
            && self
                .machine_type
                .as_ref()
                .map(|t| &r.machine_type == t)
                .unwrap_or(true)
            && self.machine.map(|m| r.machine == m).unwrap_or(true)
            && self
                .day_range
                .map(|(lo, hi)| r.day >= lo && r.day < hi)
                .unwrap_or(true)
    }

    /// Matching records, in insertion order.
    pub fn records(&self) -> Vec<&'a Record> {
        self.store
            .records
            .iter()
            .filter(|r| self.matches(r))
            .collect()
    }

    /// Matching measurement values, in insertion order.
    pub fn values(&self) -> Vec<f64> {
        self.store
            .records
            .iter()
            .filter(|r| self.matches(r))
            .map(|r| r.value)
            .collect()
    }

    /// Number of matching records.
    pub fn count(&self) -> usize {
        self.store
            .records
            .iter()
            .filter(|r| self.matches(r))
            .count()
    }

    /// Groups matching values by machine.
    pub fn group_by_machine(&self) -> BTreeMap<MachineId, Vec<f64>> {
        let mut out: BTreeMap<MachineId, Vec<f64>> = BTreeMap::new();
        for r in self.store.records.iter().filter(|r| self.matches(r)) {
            out.entry(r.machine).or_default().push(r.value);
        }
        out
    }

    /// Groups matching values by machine type.
    pub fn group_by_type(&self) -> BTreeMap<String, Vec<f64>> {
        let mut out: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for r in self.store.records.iter().filter(|r| self.matches(r)) {
            out.entry(r.machine_type.clone()).or_default().push(r.value);
        }
        out
    }

    /// Groups matching values by campaign day (session), ordered by day.
    /// Day keys are bit-exact, which is safe because the campaign
    /// generator schedules sessions at exact multiples of the interval.
    pub fn group_by_day(&self) -> Vec<(f64, Vec<f64>)> {
        let mut out: BTreeMap<u64, (f64, Vec<f64>)> = BTreeMap::new();
        for r in self.store.records.iter().filter(|r| self.matches(r)) {
            out.entry(r.day.to_bits())
                .or_insert_with(|| (r.day, Vec::new()))
                .1
                .push(r.value);
        }
        out.into_values().collect()
    }

    /// The matching records as a `(day, value)` time series, ordered by
    /// day then run index.
    pub fn time_series(&self) -> Vec<(f64, f64)> {
        let mut rs: Vec<&Record> = self.records();
        rs.sort_by(|a, b| {
            a.day
                .partial_cmp(&b.day)
                .expect("finite days")
                .then(a.run.cmp(&b.run))
                .then(a.machine.cmp(&b.machine))
        });
        rs.into_iter().map(|r| (r.day, r.value)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> Store {
        let mut s = Store::new();
        for (i, (ty, bench, day, value)) in [
            ("a", BenchmarkId::MemCopy, 1.0, 10.0),
            ("a", BenchmarkId::MemCopy, 2.0, 11.0),
            ("a", BenchmarkId::DiskSeqRead, 1.0, 100.0),
            ("b", BenchmarkId::MemCopy, 1.0, 20.0),
            ("b", BenchmarkId::DiskSeqRead, 3.0, 200.0),
        ]
        .into_iter()
        .enumerate()
        {
            s.push(Record {
                machine: MachineId(i as u32 % 3),
                machine_type: ty.to_string(),
                benchmark: bench,
                day,
                run: i as u32,
                value,
            });
        }
        s
    }

    #[test]
    fn unfiltered_query_returns_everything() {
        let s = sample_store();
        assert_eq!(s.filter().count(), 5);
        assert_eq!(s.filter().values().len(), 5);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn filters_compose() {
        let s = sample_store();
        let q = s.filter().benchmark(BenchmarkId::MemCopy).machine_type("a");
        assert_eq!(q.values(), vec![10.0, 11.0]);
        let q = s
            .filter()
            .benchmark(BenchmarkId::MemCopy)
            .machine_type("a")
            .days(1.5, 3.0);
        assert_eq!(q.values(), vec![11.0]);
        let q = s.filter().machine(MachineId(0));
        assert_eq!(q.count(), 2);
    }

    #[test]
    fn day_range_is_half_open() {
        let s = sample_store();
        assert_eq!(s.filter().days(1.0, 2.0).count(), 3);
        assert_eq!(s.filter().days(1.0, 1.0).count(), 0);
    }

    #[test]
    fn grouping_by_machine_and_type() {
        let s = sample_store();
        let by_machine = s
            .filter()
            .benchmark(BenchmarkId::MemCopy)
            .group_by_machine();
        assert_eq!(by_machine.len(), 2);
        let by_type = s.filter().group_by_type();
        assert_eq!(by_type["a"].len(), 3);
        assert_eq!(by_type["b"].len(), 2);
    }

    #[test]
    fn unique_dimension_lists() {
        let s = sample_store();
        assert_eq!(s.machine_types(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(s.machines().len(), 3);
        assert_eq!(
            s.benchmarks(),
            vec![BenchmarkId::MemCopy, BenchmarkId::DiskSeqRead]
        );
    }

    #[test]
    fn time_series_is_day_ordered() {
        let s = sample_store();
        let ts = s.filter().benchmark(BenchmarkId::DiskSeqRead).time_series();
        assert_eq!(ts, vec![(1.0, 100.0), (3.0, 200.0)]);
    }

    #[test]
    fn group_by_day_partitions_and_orders() {
        let s = sample_store();
        let by_day = s.filter().group_by_day();
        let days: Vec<f64> = by_day.iter().map(|(d, _)| *d).collect();
        assert_eq!(days, vec![1.0, 2.0, 3.0]);
        let total: usize = by_day.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn merge_appends_everything() {
        let mut a = sample_store();
        let b = sample_store();
        let total = a.len() + b.len();
        a.merge(b);
        assert_eq!(a.len(), total);
    }

    #[test]
    fn store_serde_round_trip() {
        let s = sample_store();
        let json = serde_json::to_string(&s).unwrap();
        let back: Store = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
