//! CSV import/export for measurement stores.
//!
//! The format is deliberately plain (one header, six columns) so datasets
//! round-trip through spreadsheets and plotting scripts:
//!
//! ```text
//! machine,machine_type,benchmark,day,run,value
//! 0,c220g1,disk-seq-read,1,0,171.25
//! ```

use std::io::{BufRead, BufReader, Read, Write};

use testbed::MachineId;

use crate::record::{benchmark_from_label, Record};
use crate::store::Store;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and reason).
    Parse {
        /// Line number, counting the header as line 1.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a store as CSV.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_csv(store: &Store, mut writer: impl Write) -> Result<(), CsvError> {
    writeln!(writer, "machine,machine_type,benchmark,day,run,value")?;
    for r in store.records() {
        writeln!(
            writer,
            "{},{},{},{},{},{}",
            r.machine.0,
            r.machine_type,
            r.benchmark.label(),
            r.day,
            r.run,
            r.value
        )?;
    }
    Ok(())
}

/// Reads a store from CSV (header required).
///
/// # Errors
///
/// Returns [`CsvError::Parse`] with the offending line number for any
/// malformed row, unknown benchmark label, or non-finite value.
pub fn read_csv(reader: impl Read) -> Result<Store, CsvError> {
    let reader = BufReader::new(reader);
    let mut store = Store::new();
    let mut lines = reader.lines();
    let header = lines.next().ok_or(CsvError::Parse {
        line: 1,
        reason: "missing header".to_string(),
    })??;
    if header.trim() != "machine,machine_type,benchmark,day,run,value" {
        return Err(CsvError::Parse {
            line: 1,
            reason: format!("unexpected header `{header}`"),
        });
    }
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 6 {
            return Err(CsvError::Parse {
                line: line_no,
                reason: format!("expected 6 fields, got {}", parts.len()),
            });
        }
        let parse_err = |field: &str, what: &str| CsvError::Parse {
            line: line_no,
            reason: format!("bad {what}: `{field}`"),
        };
        let machine = MachineId(
            parts[0]
                .trim()
                .parse::<u32>()
                .map_err(|_| parse_err(parts[0], "machine id"))?,
        );
        let benchmark = benchmark_from_label(parts[2].trim())
            .ok_or_else(|| parse_err(parts[2], "benchmark label"))?;
        let day: f64 = parts[3]
            .trim()
            .parse()
            .map_err(|_| parse_err(parts[3], "day"))?;
        let run: u32 = parts[4]
            .trim()
            .parse()
            .map_err(|_| parse_err(parts[4], "run"))?;
        let value: f64 = parts[5]
            .trim()
            .parse()
            .map_err(|_| parse_err(parts[5], "value"))?;
        if !value.is_finite() || !day.is_finite() {
            return Err(parse_err(parts[5], "non-finite value"));
        }
        store.push(Record {
            machine,
            machine_type: parts[1].trim().to_string(),
            benchmark,
            day,
            run,
            value,
        });
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::BenchmarkId;

    fn sample_store() -> Store {
        let mut s = Store::new();
        s.push(Record {
            machine: MachineId(0),
            machine_type: "c220g1".to_string(),
            benchmark: BenchmarkId::DiskSeqRead,
            day: 1.5,
            run: 0,
            value: 171.25,
        });
        s.push(Record {
            machine: MachineId(7),
            machine_type: "m400".to_string(),
            benchmark: BenchmarkId::NetLatency,
            day: 2.0,
            run: 3,
            value: 28.5,
        });
        s
    }

    #[test]
    fn csv_round_trips() {
        let s = sample_store();
        let mut buf = Vec::new();
        write_csv(&s, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn csv_output_is_readable() {
        let mut buf = Vec::new();
        write_csv(&sample_store(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("machine,machine_type,benchmark,day,run,value\n"));
        assert!(text.contains("0,c220g1,disk-seq-read,1.5,0,171.25"));
    }

    #[test]
    fn rejects_bad_header() {
        let e = read_csv("nope\n1,2,3,4,5,6\n".as_bytes()).unwrap_err();
        assert!(matches!(e, CsvError::Parse { line: 1, .. }), "{e}");
    }

    #[test]
    fn rejects_wrong_field_count_with_line_number() {
        let text = "machine,machine_type,benchmark,day,run,value\n1,a,mem-copy,1,0\n";
        let e = read_csv(text.as_bytes()).unwrap_err();
        match e {
            CsvError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn rejects_unknown_benchmark_and_bad_numbers() {
        let base = "machine,machine_type,benchmark,day,run,value\n";
        for row in [
            "1,a,not-a-bench,1,0,5",
            "x,a,mem-copy,1,0,5",
            "1,a,mem-copy,z,0,5",
            "1,a,mem-copy,1,z,5",
            "1,a,mem-copy,1,0,NaN",
        ] {
            let text = format!("{base}{row}\n");
            assert!(read_csv(text.as_bytes()).is_err(), "{row}");
        }
    }

    #[test]
    fn empty_lines_skipped() {
        let text = "machine,machine_type,benchmark,day,run,value\n\n1,a,mem-copy,1,0,5\n\n";
        let s = read_csv(text.as_bytes()).unwrap();
        assert_eq!(s.len(), 1);
    }
}
