//! # dataset — measurement records, storage, and the campaign generator
//!
//! Holds the data side of the reproduction: [`Record`]s, the sliceable
//! in-memory [`Store`] (filter by benchmark / type / machine / time,
//! group by machine or type), CSV and JSON round-trips, and the
//! [`campaign`](run_campaign) generator that recreates the paper's
//! ten-month multi-machine data collection at any scale.
//!
//! ```
//! use dataset::{run_campaign, CampaignConfig};
//! use workloads::BenchmarkId;
//!
//! let (_cluster, store) = run_campaign(&CampaignConfig::quick(42));
//! let disk = store.filter().benchmark(BenchmarkId::DiskSeqRead).group_by_machine();
//! assert!(!disk.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod csv;
mod outliers;
mod record;
mod store;
mod summarize;

pub use campaign::{
    collect, collect_jobs, default_jobs, run_campaign, run_campaign_jobs, CampaignConfig,
};
pub use csv::{read_csv, write_csv, CsvError};
pub use outliers::{outlier_indices, outlier_sweep, Fence, OutlierReport};
pub use record::{benchmark_from_label, Record};
pub use store::{Query, Store};
pub use summarize::{overview, summarize_groups, DatasetOverview, GroupSummary};
