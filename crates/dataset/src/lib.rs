//! # dataset — measurement records, storage, and the campaign generator
//!
//! Holds the data side of the reproduction: [`Record`]s, the sliceable
//! in-memory [`Store`] (filter by benchmark / type / machine / time,
//! group by machine or type), CSV and JSON round-trips, and the
//! [`campaign`](run_campaign) generator that recreates the paper's
//! ten-month multi-machine data collection at any scale.
//!
//! ```
//! use dataset::{run_campaign, CampaignConfig};
//! use workloads::BenchmarkId;
//!
//! let (_cluster, store) = run_campaign(&CampaignConfig::quick(42));
//! let disk = store.filter().benchmark(BenchmarkId::DiskSeqRead).group_by_machine();
//! assert!(!disk.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// I/O paths carry typed errors into per-id failure reports; `unwrap()`
// outside tests regresses that contract (DESIGN.md §8).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod campaign;
mod csv;
mod distributed;
mod fsck;
mod journal;
mod outliers;
mod record;
mod store;
mod stream;
mod summarize;

pub use campaign::{
    collect, collect_jobs, collect_one_machine, collect_resumable, collect_to_journal,
    default_jobs, run_campaign, run_campaign_jobs, run_campaign_resumable, selected_machine_ids,
    CampaignConfig, CampaignError, CollectOptions, CollectReport, Collected,
};
pub use csv::{read_csv, write_csv, CsvError};
pub use distributed::{
    merge_exchange, partition_units, run_worker, supervise, DistributedError, DistributedReport,
    ExchangeDir, MergeReport, SupervisorConfig, UnitLease, WorkUnit, WorkerExit, WorkerHandle,
    WorkerOptions, WorkerOutcome,
};
pub use fsck::{fsck, FsckReport};
pub use journal::{JournalError, ShardJournal, ShardStatus};
pub use outliers::{outlier_indices, outlier_sweep, Fence, OutlierReport, SweepBuilder};
pub use record::{benchmark_from_label, Record};
pub use store::{sorted_machine_ids, Query, Store};
pub use stream::{MeasurementStream, Shard, ShardReader, StreamError, StreamStats};
pub use summarize::{
    finish_groups, observe_shard_groups, overview, summarize_groups, DatasetOverview, GroupStats,
    GroupSummary, OverviewBuilder, PartialSummary,
};
