//! Journal integrity checking — the engine behind `repro journal fsck`.
//!
//! Validates a journal directory (or a whole distributed exchange)
//! against its own pinned configuration fingerprint: the meta file is
//! the ground truth, every `m<id>.shard` is fully parsed and
//! checksum-verified, and anything else in the directory is flagged.
//! The check is read-only and config-free — it needs no
//! [`CampaignConfig`](crate::CampaignConfig), so CI can fsck any journal
//! it finds without knowing how it was produced.
//!
//! Classification:
//!
//! - **ok** — a canonical `m<id>.shard` that passes every envelope and
//!   checksum check;
//! - **corrupt** — a shard file that exists but fails validation
//!   (truncated, bad checksum, foreign config, garbled payload);
//! - **orphan** — any other file: leftover temp files, non-canonical
//!   names (`m07.shard` aliasing `m7.shard`), strays;
//! - **duplicate** — in exchange mode, a machine with a valid shard in
//!   more than one worker journal. Benign by construction (valid shards
//!   for a machine are byte-identical), reported for visibility.

use std::fmt;
use std::path::{Path, PathBuf};

use testbed::MachineId;

use crate::journal::{JournalError, ShardJournal, ShardStatus};

/// What an fsck pass found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Journal directories examined (1, or one per worker in exchange
    /// mode).
    pub journals: usize,
    /// Shards that passed full validation.
    pub shards_ok: usize,
    /// Total records across valid shards.
    pub records: usize,
    /// Shard files that failed validation, with the reason.
    pub corrupt: Vec<String>,
    /// Files that do not belong in a journal directory.
    pub orphans: Vec<String>,
    /// Machines with valid shards in more than one worker journal
    /// (exchange mode only; informational).
    pub duplicates: Vec<String>,
}

impl FsckReport {
    /// Whether the journal is clean: no corrupt shards, no orphans.
    /// Duplicates do not dirty a journal — they are expected fallout of
    /// reassignment and byte-identical by construction.
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty() && self.orphans.is_empty()
    }

    fn absorb(&mut self, other: FsckReport) {
        self.journals += other.journals;
        self.shards_ok += other.shards_ok;
        self.records += other.records;
        self.corrupt.extend(other.corrupt);
        self.orphans.extend(other.orphans);
        self.duplicates.extend(other.duplicates);
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} journal(s): {} shard(s) ok ({} records), {} corrupt, {} orphan(s), {} duplicate(s)",
            self.journals,
            self.shards_ok,
            self.records,
            self.corrupt.len(),
            self.orphans.len(),
            self.duplicates.len()
        )
    }
}

/// Checks one directory: a plain shard journal (has `journal.meta`) or a
/// whole exchange (has `exchange.meta`; every worker journal under
/// `workers/` is checked and cross-journal duplicates are reported).
///
/// Errors only when the directory is unreadable or is neither kind of
/// journal — corruption inside a readable journal is a *finding*, not an
/// error.
pub fn fsck(dir: &Path) -> Result<FsckReport, JournalError> {
    if dir.join("journal.meta").is_file() {
        return fsck_journal(dir, "");
    }
    if dir.join("exchange.meta").is_file() {
        return fsck_exchange(dir);
    }
    Err(JournalError::Io(std::io::Error::new(
        std::io::ErrorKind::NotFound,
        format!(
            "{} holds neither a journal (journal.meta) nor an exchange (exchange.meta)",
            dir.display()
        ),
    )))
}

/// Validates a single journal directory. `prefix` qualifies finding
/// labels in exchange mode (e.g. `w3/`).
fn fsck_journal(dir: &Path, prefix: &str) -> Result<FsckReport, JournalError> {
    let journal = ShardJournal::open_existing(dir)?;
    let mut report = FsckReport {
        journals: 1,
        ..FsckReport::default()
    };
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(JournalError::Io)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if name == "journal.meta" {
            continue;
        }
        if path.is_dir() {
            report.orphans.push(format!("{prefix}{name}/ (directory)"));
            continue;
        }
        let id = name
            .strip_prefix('m')
            .and_then(|n| n.strip_suffix(".shard"))
            .and_then(|n| n.parse::<u32>().ok());
        match id {
            // Only the canonical rendering counts: `m07.shard` would
            // alias `m7.shard` and must not be trusted as a shard.
            Some(id) if name == format!("m{id}.shard") => {
                match journal.load_status(MachineId(id)) {
                    ShardStatus::Valid(records) => {
                        report.shards_ok += 1;
                        report.records += records.len();
                    }
                    ShardStatus::Missing | ShardStatus::Corrupt => report
                        .corrupt
                        .push(format!("{prefix}{name} (failed validation)")),
                }
            }
            Some(_) => report
                .orphans
                .push(format!("{prefix}{name} (non-canonical shard name)")),
            None => report.orphans.push(format!("{prefix}{name} (stray file)")),
        }
    }
    Ok(report)
}

/// Validates every worker journal under an exchange root and reports
/// machines whose valid shards appear in more than one of them.
fn fsck_exchange(root: &Path) -> Result<FsckReport, JournalError> {
    let mut report = FsckReport::default();
    let workers = root.join("workers");
    let mut dirs: Vec<(usize, PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&workers) {
        for entry in entries.flatten() {
            if let Some(index) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix('w'))
                .and_then(|n| n.parse::<usize>().ok())
            {
                dirs.push((index, entry.path()));
            }
        }
    }
    dirs.sort_by_key(|(index, _)| *index);
    let mut seen: std::collections::BTreeMap<u32, Vec<usize>> = std::collections::BTreeMap::new();
    for (index, dir) in &dirs {
        let sub = fsck_journal(dir, &format!("w{index}/"))?;
        report.absorb(sub);
        if let Ok(journal) = ShardJournal::open_existing(dir) {
            for machine in journal.machines().unwrap_or_default() {
                if journal.load_quiet(machine).is_some() {
                    seen.entry(machine.0).or_default().push(*index);
                }
            }
        }
    }
    for (machine, holders) in seen {
        if holders.len() > 1 {
            let list: Vec<String> = holders.iter().map(|w| format!("w{w}")).collect();
            report
                .duplicates
                .push(format!("m{machine} in {}", list.join(", ")));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::record::Record;
    use workloads::BenchmarkId;

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fsck-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records(machine: MachineId) -> Vec<Record> {
        vec![Record {
            machine,
            machine_type: "c220g1".to_string(),
            benchmark: BenchmarkId::DiskSeqRead,
            day: 3.0,
            run: 0,
            value: 171.25,
        }]
    }

    #[test]
    fn clean_journal_reports_clean() {
        let dir = temp_dir("clean");
        let config = CampaignConfig::quick(51);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        for id in [1, 5, 12] {
            journal
                .record(MachineId(id), &sample_records(MachineId(id)))
                .unwrap();
        }
        let report = fsck(&dir).unwrap();
        assert!(report.clean(), "{report}");
        assert_eq!(report.shards_ok, 3);
        assert_eq!(report.records, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_orphans_and_aliases_are_flagged() {
        let dir = temp_dir("dirty");
        let config = CampaignConfig::quick(52);
        let journal = ShardJournal::open(&dir, &config).unwrap();
        journal
            .record(MachineId(1), &sample_records(MachineId(1)))
            .unwrap();
        journal
            .record(MachineId(2), &sample_records(MachineId(2)))
            .unwrap();
        // Truncate one shard; plant a temp leftover, a stray, and a
        // non-canonical alias.
        let shard = journal.shard_path(MachineId(2));
        let raw = std::fs::read_to_string(&shard).unwrap();
        std::fs::write(&shard, &raw[..raw.len() / 2]).unwrap();
        std::fs::write(dir.join("m3.shard.tmp.123"), "partial").unwrap();
        std::fs::write(dir.join("notes.txt"), "hello").unwrap();
        std::fs::write(dir.join("m07.shard"), "alias").unwrap();
        let report = fsck(&dir).unwrap();
        assert!(!report.clean());
        assert_eq!(report.shards_ok, 1);
        assert_eq!(report.corrupt.len(), 1, "{:?}", report.corrupt);
        assert!(report.corrupt[0].contains("m2.shard"));
        assert_eq!(report.orphans.len(), 3, "{:?}", report.orphans);
        assert!(report.orphans.iter().any(|o| o.contains("m07.shard")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_journal_dir_is_an_error() {
        let dir = temp_dir("nothing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(fsck(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exchange_mode_reports_cross_worker_duplicates() {
        use crate::distributed::{partition_units, ExchangeDir};
        let root = temp_dir("exchange");
        let config = CampaignConfig::quick(53);
        let machines = vec![MachineId(1), MachineId(2)];
        let exchange = ExchangeDir::create(&root, &config, partition_units(&machines, 1)).unwrap();
        let w0 = ShardJournal::open(exchange.worker_dir(0), &config).unwrap();
        let w1 = ShardJournal::open(exchange.worker_dir(1), &config).unwrap();
        w0.record(MachineId(1), &sample_records(MachineId(1)))
            .unwrap();
        w1.record(MachineId(1), &sample_records(MachineId(1)))
            .unwrap();
        w1.record(MachineId(2), &sample_records(MachineId(2)))
            .unwrap();
        let report = fsck(&root).unwrap();
        assert!(report.clean(), "{report}");
        assert_eq!(report.journals, 2);
        assert_eq!(report.shards_ok, 3);
        assert_eq!(report.duplicates, vec!["m1 in w0, w1".to_string()]);
        let _ = std::fs::remove_dir_all(&root);
    }
}
