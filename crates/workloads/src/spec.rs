//! The benchmark suite specification.
//!
//! Mirrors the paper's three benchmark families — memory (STREAM kernels
//! and a latency probe), disk (fio-style sequential/random read/write),
//! and network (ping-style latency, iperf-style throughput) — with the
//! parameters each one runs at. This table *is* experiment T2.

use serde::{Deserialize, Serialize};
use testbed::Subsystem;

/// Unit of a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unit {
    /// Megabytes per second.
    MBps,
    /// Megabits per second.
    Mbps,
    /// Nanoseconds.
    Nanoseconds,
    /// Microseconds.
    Microseconds,
}

impl Unit {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Unit::MBps => "MB/s",
            Unit::Mbps => "Mb/s",
            Unit::Nanoseconds => "ns",
            Unit::Microseconds => "us",
        }
    }
}

/// A benchmark in the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BenchmarkId {
    /// STREAM copy kernel (`c[i] = a[i]`).
    MemCopy,
    /// STREAM scale kernel (`b[i] = s * c[i]`).
    MemScale,
    /// STREAM add kernel (`c[i] = a[i] + b[i]`).
    MemAdd,
    /// STREAM triad kernel (`a[i] = b[i] + s * c[i]`).
    MemTriad,
    /// Dependent-load (pointer-chase) memory latency.
    MemLatency,
    /// Sequential read throughput (1 MiB blocks).
    DiskSeqRead,
    /// Sequential write throughput (1 MiB blocks).
    DiskSeqWrite,
    /// Random read throughput (4 KiB blocks).
    DiskRandRead,
    /// Random write throughput (4 KiB blocks).
    DiskRandWrite,
    /// Round-trip network latency (64-byte messages).
    NetLatency,
    /// Bulk TCP throughput.
    NetBandwidth,
}

impl BenchmarkId {
    /// All benchmarks in display order.
    pub const ALL: [BenchmarkId; 11] = [
        BenchmarkId::MemCopy,
        BenchmarkId::MemScale,
        BenchmarkId::MemAdd,
        BenchmarkId::MemTriad,
        BenchmarkId::MemLatency,
        BenchmarkId::DiskSeqRead,
        BenchmarkId::DiskSeqWrite,
        BenchmarkId::DiskRandRead,
        BenchmarkId::DiskRandWrite,
        BenchmarkId::NetLatency,
        BenchmarkId::NetBandwidth,
    ];

    /// The memory-family benchmarks.
    pub const MEMORY: [BenchmarkId; 5] = [
        BenchmarkId::MemCopy,
        BenchmarkId::MemScale,
        BenchmarkId::MemAdd,
        BenchmarkId::MemTriad,
        BenchmarkId::MemLatency,
    ];

    /// The disk-family benchmarks.
    pub const DISK: [BenchmarkId; 4] = [
        BenchmarkId::DiskSeqRead,
        BenchmarkId::DiskSeqWrite,
        BenchmarkId::DiskRandRead,
        BenchmarkId::DiskRandWrite,
    ];

    /// The network-family benchmarks.
    pub const NETWORK: [BenchmarkId; 2] = [BenchmarkId::NetLatency, BenchmarkId::NetBandwidth];

    /// The testbed subsystem this benchmark exercises.
    pub fn subsystem(&self) -> Subsystem {
        match self {
            BenchmarkId::MemCopy
            | BenchmarkId::MemScale
            | BenchmarkId::MemAdd
            | BenchmarkId::MemTriad => Subsystem::MemoryBandwidth,
            BenchmarkId::MemLatency => Subsystem::MemoryLatency,
            BenchmarkId::DiskSeqRead | BenchmarkId::DiskSeqWrite => Subsystem::DiskSequential,
            BenchmarkId::DiskRandRead | BenchmarkId::DiskRandWrite => Subsystem::DiskRandom,
            BenchmarkId::NetLatency => Subsystem::NetworkLatency,
            BenchmarkId::NetBandwidth => Subsystem::NetworkBandwidth,
        }
    }

    /// Measurement unit.
    pub fn unit(&self) -> Unit {
        match self {
            BenchmarkId::MemCopy
            | BenchmarkId::MemScale
            | BenchmarkId::MemAdd
            | BenchmarkId::MemTriad
            | BenchmarkId::DiskSeqRead
            | BenchmarkId::DiskSeqWrite
            | BenchmarkId::DiskRandRead
            | BenchmarkId::DiskRandWrite => Unit::MBps,
            BenchmarkId::MemLatency => Unit::Nanoseconds,
            BenchmarkId::NetLatency => Unit::Microseconds,
            BenchmarkId::NetBandwidth => Unit::Mbps,
        }
    }

    /// Short name (table row key).
    pub fn label(&self) -> &'static str {
        match self {
            BenchmarkId::MemCopy => "mem-copy",
            BenchmarkId::MemScale => "mem-scale",
            BenchmarkId::MemAdd => "mem-add",
            BenchmarkId::MemTriad => "mem-triad",
            BenchmarkId::MemLatency => "mem-latency",
            BenchmarkId::DiskSeqRead => "disk-seq-read",
            BenchmarkId::DiskSeqWrite => "disk-seq-write",
            BenchmarkId::DiskRandRead => "disk-rand-read",
            BenchmarkId::DiskRandWrite => "disk-rand-write",
            BenchmarkId::NetLatency => "net-latency",
            BenchmarkId::NetBandwidth => "net-bandwidth",
        }
    }

    /// Multiplier on the subsystem baseline, distinguishing benchmarks
    /// that share a subsystem (e.g. STREAM copy streams more bytes/s than
    /// triad; writes are slower than reads).
    pub fn baseline_scale(&self) -> f64 {
        match self {
            BenchmarkId::MemCopy => 1.10,
            BenchmarkId::MemScale => 1.07,
            BenchmarkId::MemAdd => 1.02,
            BenchmarkId::MemTriad => 1.00,
            BenchmarkId::MemLatency => 1.00,
            BenchmarkId::DiskSeqRead => 1.00,
            BenchmarkId::DiskSeqWrite => 0.90,
            BenchmarkId::DiskRandRead => 1.00,
            BenchmarkId::DiskRandWrite => 0.82,
            BenchmarkId::NetLatency => 1.00,
            BenchmarkId::NetBandwidth => 0.96,
        }
    }

    /// Workload parameters (for the T2 table).
    pub fn params(&self) -> &'static str {
        match self {
            BenchmarkId::MemCopy
            | BenchmarkId::MemScale
            | BenchmarkId::MemAdd
            | BenchmarkId::MemTriad => "3 x 32 MiB f64 arrays, 10 iterations",
            BenchmarkId::MemLatency => "64 MiB pointer chain, 2^22 dependent loads",
            BenchmarkId::DiskSeqRead | BenchmarkId::DiskSeqWrite => "1 GiB file, 1 MiB blocks",
            BenchmarkId::DiskRandRead | BenchmarkId::DiskRandWrite => "1 GiB file, 4 KiB blocks",
            BenchmarkId::NetLatency => "64 B TCP ping-pong, 1000 round trips",
            BenchmarkId::NetBandwidth => "TCP bulk transfer, 1 GiB",
        }
    }

    /// Whether larger values are better for this benchmark.
    pub fn higher_is_better(&self) -> bool {
        self.subsystem().higher_is_better()
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_partition_the_suite() {
        let mut all: Vec<BenchmarkId> = BenchmarkId::MEMORY
            .iter()
            .chain(BenchmarkId::DISK.iter())
            .chain(BenchmarkId::NETWORK.iter())
            .copied()
            .collect();
        all.sort();
        let mut expected = BenchmarkId::ALL.to_vec();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = BenchmarkId::ALL.iter().map(|b| b.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), BenchmarkId::ALL.len());
    }

    #[test]
    fn units_match_subsystems() {
        assert_eq!(BenchmarkId::MemTriad.unit(), Unit::MBps);
        assert_eq!(BenchmarkId::MemLatency.unit(), Unit::Nanoseconds);
        assert_eq!(BenchmarkId::NetLatency.unit(), Unit::Microseconds);
        assert_eq!(BenchmarkId::NetBandwidth.unit(), Unit::Mbps);
        assert_eq!(Unit::MBps.label(), "MB/s");
    }

    #[test]
    fn direction_follows_subsystem() {
        assert!(BenchmarkId::MemCopy.higher_is_better());
        assert!(!BenchmarkId::MemLatency.higher_is_better());
        assert!(!BenchmarkId::NetLatency.higher_is_better());
    }

    #[test]
    fn copy_streams_faster_than_triad() {
        assert!(BenchmarkId::MemCopy.baseline_scale() > BenchmarkId::MemTriad.baseline_scale());
        assert!(
            BenchmarkId::DiskSeqWrite.baseline_scale() < BenchmarkId::DiskSeqRead.baseline_scale()
        );
    }

    #[test]
    fn display_and_params_nonempty() {
        for b in BenchmarkId::ALL {
            assert!(!b.to_string().is_empty());
            assert!(!b.params().is_empty());
        }
    }
}
