//! The workload abstraction and collection harness.

use std::fmt;

use crate::spec::{BenchmarkId, Unit};

/// Errors from running a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// An I/O error from a native benchmark.
    Io(std::io::Error),
    /// The simulated cluster did not recognize the machine.
    UnknownMachine,
    /// A configuration problem (sizes, counts).
    InvalidConfig(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Io(e) => write!(f, "I/O error: {e}"),
            WorkloadError::UnknownMachine => write!(f, "unknown machine id"),
            WorkloadError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WorkloadError {
    fn from(e: std::io::Error) -> Self {
        WorkloadError::Io(e)
    }
}

/// Result alias for workloads.
pub type Result<T> = std::result::Result<T, WorkloadError>;

/// A runnable benchmark producing one scalar measurement per run.
///
/// Implemented by both the simulated benchmarks (`sim`) and the native
/// in-process ones (`native`), so the same harness, statistics and
/// planners drive either.
pub trait Workload {
    /// Which benchmark this is.
    fn id(&self) -> BenchmarkId;

    /// Unit of the produced measurements.
    fn unit(&self) -> Unit {
        self.id().unit()
    }

    /// Performs one run and returns its measurement.
    fn run_once(&mut self) -> Result<f64>;
}

/// Collects repeated measurements from a workload with warmup.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Discarded initial runs.
    pub warmup: usize,
    /// Recorded runs.
    pub runs: usize,
}

impl Harness {
    /// Creates a harness.
    pub fn new(warmup: usize, runs: usize) -> Self {
        Self { warmup, runs }
    }

    /// Runs the workload `warmup + runs` times, returning the last `runs`
    /// measurements in collection order.
    ///
    /// # Errors
    ///
    /// Propagates the first workload error; also rejects `runs == 0`.
    pub fn collect(&self, workload: &mut dyn Workload) -> Result<Vec<f64>> {
        if self.runs == 0 {
            return Err(WorkloadError::InvalidConfig(
                "runs must be at least 1".to_string(),
            ));
        }
        let _span = telemetry::span("workload.collect");
        let discarded = telemetry::metrics::counter("workload.discarded");
        for _ in 0..self.warmup {
            workload.run_once()?;
            discarded.inc();
        }
        let trials = telemetry::metrics::counter("workload.trials");
        let trial_secs = telemetry::metrics::histogram("workload.trial_secs");
        let mut out = Vec::with_capacity(self.runs);
        for _ in 0..self.runs {
            let started = telemetry::enabled().then(std::time::Instant::now);
            out.push(workload.run_once()?);
            if let Some(t) = started {
                trial_secs.record(t.elapsed().as_secs_f64());
            }
            trials.inc();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        calls: usize,
    }

    impl Workload for Counter {
        fn id(&self) -> BenchmarkId {
            BenchmarkId::MemCopy
        }
        fn run_once(&mut self) -> Result<f64> {
            self.calls += 1;
            Ok(self.calls as f64)
        }
    }

    #[test]
    fn harness_discards_warmup() {
        let mut w = Counter { calls: 0 };
        let xs = Harness::new(3, 4).collect(&mut w).unwrap();
        assert_eq!(xs, vec![4.0, 5.0, 6.0, 7.0]);
        assert_eq!(w.calls, 7);
    }

    #[test]
    fn harness_rejects_zero_runs() {
        let mut w = Counter { calls: 0 };
        assert!(Harness::new(0, 0).collect(&mut w).is_err());
    }

    #[test]
    fn default_unit_comes_from_id() {
        let w = Counter { calls: 0 };
        assert_eq!(w.unit(), Unit::MBps);
    }

    struct Failing;

    impl Workload for Failing {
        fn id(&self) -> BenchmarkId {
            BenchmarkId::DiskSeqRead
        }
        fn run_once(&mut self) -> Result<f64> {
            Err(WorkloadError::UnknownMachine)
        }
    }

    #[test]
    fn harness_propagates_errors() {
        let mut w = Failing;
        let e = Harness::new(0, 5).collect(&mut w).unwrap_err();
        assert!(matches!(e, WorkloadError::UnknownMachine));
        assert!(e.to_string().contains("unknown machine"));
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let io = WorkloadError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(io.source().is_some());
        assert!(WorkloadError::UnknownMachine.source().is_none());
    }
}
