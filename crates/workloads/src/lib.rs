//! # workloads — the benchmark suite
//!
//! The measurement campaign of *Taming Performance Variability* ran
//! memory, disk, and network micro-benchmarks across a large fleet. This
//! crate provides that suite twice over, behind one [`Workload`] trait:
//!
//! * [`SimBenchmark`] — bound to the `testbed` simulator: deterministic,
//!   instant, and statistically faithful to the paper's observations.
//!   This is what the full-scale campaign and every experiment pipeline
//!   use.
//! * [`native`] — real in-process equivalents (STREAM kernels, a
//!   pointer-chase latency probe, file I/O, TCP loopback) so the library
//!   measures actual hardware end-to-end.
//!
//! [`Harness`] collects warmed-up repetitions from either kind.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod native;
mod runner;
mod sim;
mod spec;

pub use runner::{Harness, Result, Workload, WorkloadError};
pub use sim::{run_suite, sample, SimBenchmark};
pub use spec::{BenchmarkId, Unit};
