//! Simulated benchmarks bound to the testbed.
//!
//! A [`SimBenchmark`] runs a suite benchmark against one machine of a
//! simulated [`Cluster`]: each `run_once` draws the next reproducible
//! measurement for that `(machine, benchmark, day)` and advances the run
//! nonce — exactly what the real campaign did with fio/STREAM/iperf on a
//! real node, at nanosecond cost and perfectly replayable.

use testbed::{Cluster, MachineId};

use crate::runner::{Result, Workload, WorkloadError};
use crate::spec::BenchmarkId;

/// One benchmark bound to one machine of a simulated cluster.
///
/// # Examples
///
/// ```
/// use testbed::{catalog, Cluster, Timeline};
/// use workloads::{BenchmarkId, Harness, SimBenchmark, Workload};
///
/// let cluster = Cluster::provision(catalog(), 0.05, Timeline::quiet(10.0), 3);
/// let node = cluster.machines()[0].id;
/// let mut bench = SimBenchmark::new(&cluster, node, BenchmarkId::MemTriad, 0.0);
/// let runs = Harness::new(2, 20).collect(&mut bench).unwrap();
/// assert_eq!(runs.len(), 20);
/// assert!(runs.iter().all(|&x| x > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimBenchmark<'a> {
    cluster: &'a Cluster,
    machine: MachineId,
    id: BenchmarkId,
    day: f64,
    nonce: u64,
}

impl<'a> SimBenchmark<'a> {
    /// Binds `id` to `machine` at campaign day `day` (nonce starts at 0).
    pub fn new(cluster: &'a Cluster, machine: MachineId, id: BenchmarkId, day: f64) -> Self {
        Self {
            cluster,
            machine,
            id,
            day,
            nonce: 0,
        }
    }

    /// Moves the benchmark to a different campaign day (the nonce keeps
    /// advancing, so measurements never repeat).
    pub fn set_day(&mut self, day: f64) {
        self.day = day;
    }

    /// The campaign day measurements are taken at.
    pub fn day(&self) -> f64 {
        self.day
    }

    /// The machine this benchmark runs on.
    pub fn machine(&self) -> MachineId {
        self.machine
    }
}

impl Workload for SimBenchmark<'_> {
    fn id(&self) -> BenchmarkId {
        self.id
    }

    fn run_once(&mut self) -> Result<f64> {
        let value = sample(self.cluster, self.machine, self.id, self.day, self.nonce)
            .ok_or(WorkloadError::UnknownMachine)?;
        self.nonce += 1;
        Ok(value)
    }
}

/// Draws the reproducible measurement for a single
/// `(machine, benchmark, day, nonce)` tuple.
///
/// Returns `None` for an unknown machine.
pub fn sample(
    cluster: &Cluster,
    machine: MachineId,
    id: BenchmarkId,
    day: f64,
    nonce: u64,
) -> Option<f64> {
    // The nonce stream is salted with the benchmark so two benchmarks on
    // the same subsystem (e.g. seq-read vs seq-write) see independent
    // noise.
    let salted = nonce
        .wrapping_mul(31)
        .wrapping_add(id as u64 + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    cluster
        .measure(machine, id.subsystem(), day, salted)
        .map(|v| v * id.baseline_scale())
}

/// Runs the entire suite on one machine at one day: `runs` repetitions
/// of every benchmark, returned in [`BenchmarkId::ALL`] order.
///
/// Returns `None` for an unknown machine.
pub fn run_suite(
    cluster: &Cluster,
    machine: MachineId,
    day: f64,
    runs: usize,
) -> Option<Vec<(BenchmarkId, Vec<f64>)>> {
    cluster.machine(machine)?;
    Some(
        BenchmarkId::ALL
            .into_iter()
            .map(|bench| {
                let xs = (0..runs as u64)
                    .map(|n| sample(cluster, machine, bench, day, n).expect("machine exists"))
                    .collect();
                (bench, xs)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Harness;
    use testbed::{catalog, Timeline};

    fn cluster() -> Cluster {
        Cluster::provision(catalog(), 0.05, Timeline::quiet(100.0), 9)
    }

    #[test]
    fn run_once_advances_nonce() {
        let c = cluster();
        let node = c.machines()[0].id;
        let mut b = SimBenchmark::new(&c, node, BenchmarkId::DiskRandRead, 1.0);
        let x1 = b.run_once().unwrap();
        let x2 = b.run_once().unwrap();
        assert_ne!(x1, x2);
    }

    #[test]
    fn rebinding_replays_identically() {
        let c = cluster();
        let node = c.machines()[0].id;
        let mut b1 = SimBenchmark::new(&c, node, BenchmarkId::MemCopy, 2.0);
        let mut b2 = SimBenchmark::new(&c, node, BenchmarkId::MemCopy, 2.0);
        let xs1: Vec<f64> = (0..10).map(|_| b1.run_once().unwrap()).collect();
        let xs2: Vec<f64> = (0..10).map(|_| b2.run_once().unwrap()).collect();
        assert_eq!(xs1, xs2);
    }

    #[test]
    fn benchmarks_on_same_subsystem_are_independent() {
        let c = cluster();
        let node = c.machines()[0].id;
        let r = sample(&c, node, BenchmarkId::DiskSeqRead, 0.0, 0).unwrap();
        let w = sample(&c, node, BenchmarkId::DiskSeqWrite, 0.0, 0).unwrap();
        // Different baseline scale AND different noise stream.
        assert!((r / w - 1.0 / 0.9).abs() > 1e-6);
    }

    #[test]
    fn unknown_machine_errors() {
        let c = cluster();
        let mut b = SimBenchmark::new(&c, MachineId(65000), BenchmarkId::MemAdd, 0.0);
        assert!(b.run_once().is_err());
        assert!(sample(&c, MachineId(65000), BenchmarkId::MemAdd, 0.0, 0).is_none());
    }

    #[test]
    fn values_scale_with_benchmark() {
        let c = cluster();
        let node = c.machines()[0].id;
        // Average over many runs: copy should exceed triad by ~10%.
        let copy: f64 = (0..500)
            .map(|n| sample(&c, node, BenchmarkId::MemCopy, 0.0, n).unwrap())
            .sum::<f64>()
            / 500.0;
        let triad: f64 = (0..500)
            .map(|n| sample(&c, node, BenchmarkId::MemTriad, 0.0, n).unwrap())
            .sum::<f64>()
            / 500.0;
        let ratio = copy / triad;
        assert!((1.05..1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn harness_integration() {
        let c = cluster();
        let node = c.machines()[3].id;
        let mut b = SimBenchmark::new(&c, node, BenchmarkId::NetLatency, 5.0);
        let xs = Harness::new(5, 50).collect(&mut b).unwrap();
        assert_eq!(xs.len(), 50);
        let t = c.type_of(c.machine(node).unwrap());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((0.5..2.0).contains(&(mean / t.net_lat_us)));
    }

    #[test]
    fn run_suite_covers_everything() {
        let c = cluster();
        let node = c.machines()[0].id;
        let suite = run_suite(&c, node, 0.0, 7).unwrap();
        assert_eq!(suite.len(), BenchmarkId::ALL.len());
        for (bench, xs) in &suite {
            assert_eq!(xs.len(), 7, "{bench}");
            assert!(xs.iter().all(|&x| x > 0.0));
        }
        assert!(run_suite(&c, MachineId(60000), 0.0, 3).is_none());
    }

    #[test]
    fn set_day_crosses_timeline_events() {
        let c = Cluster::provision(catalog(), 0.05, Timeline::cloudlab_default(), 4);
        let node = c.machines()[0].id;
        let mut b = SimBenchmark::new(&c, node, BenchmarkId::MemLatency, 90.0);
        let before: f64 = (0..200).map(|_| b.run_once().unwrap()).sum::<f64>() / 200.0;
        b.set_day(100.0);
        assert_eq!(b.day(), 100.0);
        let after: f64 = (0..200).map(|_| b.run_once().unwrap()).sum::<f64>() / 200.0;
        assert!(after / before > 1.02, "{}", after / before);
    }
}
