//! OS-level latency probes: syscall cost and context-switch cost.
//!
//! Like the sleep-jitter probe, these characterize the *host* rather than
//! the suite's subsystems: how much a kernel round-trip costs (a floor
//! under every I/O measurement) and how much a thread handoff costs (a
//! floor under every blocking benchmark harness). Both are host
//! diagnostics and deliberately not [`Workload`](crate::Workload)s.

use std::io::Write;
use std::sync::mpsc;
use std::time::Instant;

use crate::runner::{Result, WorkloadError};

/// Measures raw syscall latency by writing one byte to `/dev/null` per
/// call (one `write(2)` round-trip each).
///
/// # Examples
///
/// ```
/// use workloads::native::SyscallLatencyProbe;
///
/// let mut probe = SyscallLatencyProbe::new(1000).unwrap();
/// let ns = probe.run_once().unwrap();
/// assert!(ns > 0.0);
/// ```
#[derive(Debug)]
pub struct SyscallLatencyProbe {
    sink: std::fs::File,
    calls_per_run: usize,
}

impl SyscallLatencyProbe {
    /// Creates a probe issuing `calls_per_run` syscalls per measurement.
    ///
    /// # Errors
    ///
    /// Returns an error if `/dev/null` cannot be opened or
    /// `calls_per_run < 100` (too few to time).
    pub fn new(calls_per_run: usize) -> Result<Self> {
        if calls_per_run < 100 {
            return Err(WorkloadError::InvalidConfig(format!(
                "need at least 100 calls per run, got {calls_per_run}"
            )));
        }
        let sink = std::fs::OpenOptions::new().write(true).open("/dev/null")?;
        Ok(Self {
            sink,
            calls_per_run,
        })
    }

    /// Performs one measurement: mean nanoseconds per syscall.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn run_once(&mut self) -> Result<f64> {
        let buf = [0u8; 1];
        let start = Instant::now();
        for _ in 0..self.calls_per_run {
            self.sink.write_all(&buf)?;
        }
        let elapsed = start.elapsed().as_secs_f64();
        Ok(elapsed * 1.0e9 / self.calls_per_run as f64)
    }
}

/// Measures thread context-switch (handoff) cost with a two-thread
/// channel ping-pong.
///
/// Each round trip forces two scheduler handoffs; the reported value is
/// the mean microseconds per round trip.
#[derive(Debug, Clone, Copy)]
pub struct ContextSwitchProbe {
    round_trips: usize,
}

impl ContextSwitchProbe {
    /// Creates a probe performing `round_trips` ping-pongs per run.
    ///
    /// # Errors
    ///
    /// Rejects fewer than 100 round trips.
    pub fn new(round_trips: usize) -> Result<Self> {
        if round_trips < 100 {
            return Err(WorkloadError::InvalidConfig(format!(
                "need at least 100 round trips, got {round_trips}"
            )));
        }
        Ok(Self { round_trips })
    }

    /// Performs one measurement: mean microseconds per round trip.
    ///
    /// # Errors
    ///
    /// Returns an error if the echo thread dies mid-run.
    pub fn run_once(&mut self) -> Result<f64> {
        let (to_echo, from_main) = mpsc::channel::<u32>();
        let (to_main, from_echo) = mpsc::channel::<u32>();
        let n = self.round_trips;
        let echo = std::thread::spawn(move || {
            for _ in 0..n {
                match from_main.recv() {
                    Ok(v) => {
                        if to_main.send(v + 1).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });
        let start = Instant::now();
        for i in 0..n as u32 {
            to_echo
                .send(i)
                .map_err(|_| WorkloadError::InvalidConfig("echo thread died".into()))?;
            let got = from_echo
                .recv()
                .map_err(|_| WorkloadError::InvalidConfig("echo thread died".into()))?;
            debug_assert_eq!(got, i + 1);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let _ = echo.join();
        Ok(elapsed * 1.0e6 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_latency_is_sane() {
        let mut probe = SyscallLatencyProbe::new(1000).unwrap();
        let ns = probe.run_once().unwrap();
        // A write(2) to /dev/null is tens of ns to tens of us, never 0.
        assert!((1.0..100_000.0).contains(&ns), "{ns} ns/syscall");
        // Repeated runs work on the same fd.
        assert!(probe.run_once().unwrap() > 0.0);
    }

    #[test]
    fn context_switch_is_sane() {
        let mut probe = ContextSwitchProbe::new(200).unwrap();
        let us = probe.run_once().unwrap();
        // A thread round trip costs somewhere between 0.1 us and 10 ms.
        assert!((0.05..10_000.0).contains(&us), "{us} us/roundtrip");
    }

    #[test]
    fn validation() {
        assert!(SyscallLatencyProbe::new(10).is_err());
        assert!(ContextSwitchProbe::new(10).is_err());
    }
}
