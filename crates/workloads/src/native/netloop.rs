//! Native network benchmarks over TCP loopback.
//!
//! A background echo/sink server on `127.0.0.1` gives the harness a real
//! kernel network stack to measure: `NetLatency` ping-pongs small
//! messages and reports mean round-trip microseconds; `NetBandwidth`
//! streams bulk data and reports Mb/s. Loopback stands in for the paper's
//! switch fabric — the substitution is documented in DESIGN.md.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::runner::{Result, Workload, WorkloadError};
use crate::spec::BenchmarkId;

/// Round-trip latency over TCP loopback.
///
/// # Examples
///
/// ```
/// use workloads::native::NetLatencyBench;
/// use workloads::Workload;
///
/// let mut bench = NetLatencyBench::new(50).unwrap();
/// let us = bench.run_once().unwrap();
/// assert!(us > 0.0);
/// ```
#[derive(Debug)]
pub struct NetLatencyBench {
    stream: TcpStream,
    round_trips: usize,
    server: Option<JoinHandle<()>>,
}

impl NetLatencyBench {
    /// Starts an echo server thread and connects to it; each run performs
    /// `round_trips` 64-byte ping-pongs.
    ///
    /// # Errors
    ///
    /// Returns an error if the loopback socket cannot be created or
    /// `round_trips == 0`.
    pub fn new(round_trips: usize) -> Result<Self> {
        if round_trips == 0 {
            return Err(WorkloadError::InvalidConfig(
                "round_trips must be at least 1".to_string(),
            ));
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let server = std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                let mut buf = [0u8; 64];
                // Echo until the client hangs up.
                while let Ok(()) = conn.read_exact(&mut buf) {
                    if conn.write_all(&buf).is_err() {
                        break;
                    }
                }
            }
        });
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            round_trips,
            server: Some(server),
        })
    }
}

impl Workload for NetLatencyBench {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::NetLatency
    }

    fn run_once(&mut self) -> Result<f64> {
        let msg = [0x42u8; 64];
        let mut buf = [0u8; 64];
        let start = Instant::now();
        for _ in 0..self.round_trips {
            self.stream.write_all(&msg)?;
            self.stream.read_exact(&mut buf)?;
        }
        let elapsed = start.elapsed().as_secs_f64();
        Ok(elapsed * 1.0e6 / self.round_trips as f64)
    }
}

impl Drop for NetLatencyBench {
    fn drop(&mut self) {
        // Closing the stream unblocks the echo loop; then join the thread.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

/// Bulk TCP throughput over loopback.
#[derive(Debug)]
pub struct NetBandwidthBench {
    stream: TcpStream,
    bytes_per_run: usize,
    server: Option<JoinHandle<()>>,
}

impl NetBandwidthBench {
    /// Starts a sink server and connects; each run streams
    /// `bytes_per_run` bytes and reports Mb/s.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failure or `bytes_per_run < 64 KiB`.
    pub fn new(bytes_per_run: usize) -> Result<Self> {
        if bytes_per_run < (64 << 10) {
            return Err(WorkloadError::InvalidConfig(
                "bytes_per_run must be at least 64 KiB".to_string(),
            ));
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let server = std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                let mut sink = vec![0u8; 256 << 10];
                while let Ok(n) = conn.read(&mut sink) {
                    if n == 0 {
                        break;
                    }
                }
            }
        });
        let stream = TcpStream::connect(addr)?;
        Ok(Self {
            stream,
            bytes_per_run,
            server: Some(server),
        })
    }
}

impl Workload for NetBandwidthBench {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::NetBandwidth
    }

    fn run_once(&mut self) -> Result<f64> {
        let chunk = vec![0x5au8; 256 << 10];
        let mut sent = 0usize;
        let start = Instant::now();
        while sent < self.bytes_per_run {
            let n = (self.bytes_per_run - sent).min(chunk.len());
            self.stream.write_all(&chunk[..n])?;
            sent += n;
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed <= 0.0 {
            return Err(WorkloadError::InvalidConfig(
                "timer resolution too coarse for this transfer size".to_string(),
            ));
        }
        Ok(sent as f64 * 8.0 / elapsed / 1.0e6)
    }
}

impl Drop for NetBandwidthBench {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_round_trips_complete() {
        let mut b = NetLatencyBench::new(20).unwrap();
        let us = b.run_once().unwrap();
        // Loopback RTT: somewhere between 1 and 10000 microseconds.
        assert!((0.1..10_000.0).contains(&us), "{us} us");
        assert_eq!(b.id(), BenchmarkId::NetLatency);
        // A second run must work on the same connection.
        assert!(b.run_once().unwrap() > 0.0);
    }

    #[test]
    fn bandwidth_transfers_complete() {
        let mut b = NetBandwidthBench::new(1 << 20).unwrap();
        let mbps = b.run_once().unwrap();
        assert!(mbps > 1.0, "{mbps} Mb/s");
        assert_eq!(b.id(), BenchmarkId::NetBandwidth);
        assert!(b.run_once().unwrap() > 1.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(NetLatencyBench::new(0).is_err());
        assert!(NetBandwidthBench::new(1024).is_err());
    }

    #[test]
    fn drop_joins_server_cleanly() {
        // Constructing and dropping without running must not hang.
        let b = NetLatencyBench::new(10).unwrap();
        drop(b);
        let b = NetBandwidthBench::new(1 << 20).unwrap();
        drop(b);
    }
}
