//! Native memory-latency probe (pointer chasing).
//!
//! Builds a random single-cycle permutation over a buffer of indices and
//! chases it: every load depends on the previous one, so the measured
//! time per step is the true dependent-load latency (cache or DRAM,
//! depending on the buffer size).

use std::hint::black_box;
use std::time::Instant;

use crate::runner::{Result, Workload, WorkloadError};
use crate::spec::BenchmarkId;

/// A native pointer-chase latency benchmark.
///
/// # Examples
///
/// ```
/// use workloads::native::MemLatencyBench;
/// use workloads::Workload;
///
/// let mut bench = MemLatencyBench::new(1 << 10, 1 << 12, 1).unwrap();
/// let ns = bench.run_once().unwrap();
/// assert!(ns > 0.0);
/// ```
#[derive(Debug)]
pub struct MemLatencyBench {
    chain: Vec<usize>,
    steps: usize,
}

impl MemLatencyBench {
    /// Creates a chase over `elements` slots (each 8 bytes) performing
    /// `steps` dependent loads per run; `seed` randomizes the permutation
    /// (Sattolo's algorithm, guaranteeing a single cycle).
    ///
    /// # Errors
    ///
    /// Rejects `elements < 16` or `steps < 16`.
    pub fn new(elements: usize, steps: usize, seed: u64) -> Result<Self> {
        if elements < 16 || steps < 16 {
            return Err(WorkloadError::InvalidConfig(format!(
                "need elements >= 16 and steps >= 16, got {elements}/{steps}"
            )));
        }
        // Sattolo's algorithm: a uniformly random cyclic permutation.
        let mut chain: Vec<usize> = (0..elements).collect();
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            let mut z = state;
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..elements).rev() {
            let j = (next() % i as u64) as usize; // j in [0, i).
            chain.swap(i, j);
        }
        Ok(Self { chain, steps })
    }
}

impl Workload for MemLatencyBench {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::MemLatency
    }

    fn run_once(&mut self) -> Result<f64> {
        let mut pos = 0usize;
        let start = Instant::now();
        for _ in 0..self.steps {
            pos = self.chain[pos];
        }
        let elapsed = start.elapsed().as_secs_f64();
        black_box(pos);
        if elapsed <= 0.0 {
            return Err(WorkloadError::InvalidConfig(
                "timer resolution too coarse for this step count".to_string(),
            ));
        }
        Ok(elapsed * 1.0e9 / self.steps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_single_cycle() {
        let b = MemLatencyBench::new(1024, 64, 42).unwrap();
        let mut visited = vec![false; 1024];
        let mut pos = 0usize;
        for _ in 0..1024 {
            assert!(!visited[pos], "revisited {pos} before covering the cycle");
            visited[pos] = true;
            pos = b.chain[pos];
        }
        assert_eq!(pos, 0, "must return to start after n steps");
        assert!(visited.iter().all(|&v| v));
    }

    #[test]
    fn latency_is_positive_and_sane() {
        let mut b = MemLatencyBench::new(1 << 12, 1 << 14, 1).unwrap();
        let ns = b.run_once().unwrap();
        // L1-resident chase: somewhere between 0.1 ns and 1 us per load.
        assert!((0.05..1000.0).contains(&ns), "{ns} ns");
        assert_eq!(b.id(), BenchmarkId::MemLatency);
    }

    #[test]
    fn bigger_buffers_are_not_faster() {
        // DRAM-size chases should be slower than (or equal to) L1-size
        // ones. Allow generous slack: CI machines are noisy.
        let mut small = MemLatencyBench::new(1 << 9, 1 << 15, 2).unwrap();
        let mut large = MemLatencyBench::new(1 << 20, 1 << 15, 2).unwrap();
        let s: f64 = (0..3)
            .map(|_| small.run_once().unwrap())
            .fold(f64::INFINITY, f64::min);
        let l: f64 = (0..3)
            .map(|_| large.run_once().unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(l > s * 0.8, "large {l} vs small {s}");
    }

    #[test]
    fn rejects_degenerate_sizes() {
        assert!(MemLatencyBench::new(4, 100, 0).is_err());
        assert!(MemLatencyBench::new(100, 4, 0).is_err());
    }

    #[test]
    fn different_seeds_give_different_chains() {
        let a = MemLatencyBench::new(256, 64, 1).unwrap();
        let b = MemLatencyBench::new(256, 64, 2).unwrap();
        assert_ne!(a.chain, b.chain);
    }
}
