//! Native STREAM-style memory bandwidth kernels.
//!
//! Real, in-process equivalents of the paper's memory benchmark: the four
//! classic STREAM kernels over heap arrays, timed with a monotonic clock,
//! reporting MB/s. Array sizes are configurable so tests can run in
//! milliseconds while the examples use cache-busting sizes.

use std::hint::black_box;
use std::time::Instant;

use crate::runner::{Result, Workload, WorkloadError};
use crate::spec::BenchmarkId;

/// Which STREAM kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = s * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + s * c[i]`
    Triad,
}

impl StreamKernel {
    /// Bytes moved per element per iteration (reads + writes).
    fn bytes_per_element(&self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 2 * 8,
            StreamKernel::Add | StreamKernel::Triad => 3 * 8,
        }
    }

    /// The corresponding suite benchmark id.
    pub fn benchmark_id(&self) -> BenchmarkId {
        match self {
            StreamKernel::Copy => BenchmarkId::MemCopy,
            StreamKernel::Scale => BenchmarkId::MemScale,
            StreamKernel::Add => BenchmarkId::MemAdd,
            StreamKernel::Triad => BenchmarkId::MemTriad,
        }
    }
}

/// A native STREAM benchmark instance.
///
/// # Examples
///
/// ```
/// use workloads::native::{StreamBench, StreamKernel};
/// use workloads::Workload;
///
/// // Tiny arrays: fast enough for doctests.
/// let mut bench = StreamBench::new(StreamKernel::Triad, 1 << 12).unwrap();
/// let mbps = bench.run_once().unwrap();
/// assert!(mbps > 0.0);
/// ```
#[derive(Debug)]
pub struct StreamBench {
    kernel: StreamKernel,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    scalar: f64,
    iterations: usize,
}

impl StreamBench {
    /// Allocates the three arrays with `elements` `f64`s each.
    ///
    /// # Errors
    ///
    /// Rejects `elements < 64` (timings would be all overhead).
    pub fn new(kernel: StreamKernel, elements: usize) -> Result<Self> {
        if elements < 64 {
            return Err(WorkloadError::InvalidConfig(format!(
                "need at least 64 elements, got {elements}"
            )));
        }
        Ok(Self {
            kernel,
            a: (0..elements).map(|i| i as f64 * 0.5).collect(),
            b: vec![2.0; elements],
            c: vec![0.0; elements],
            scalar: 3.0,
            iterations: 10,
        })
    }

    /// Sets the number of kernel sweeps per run (more sweeps, steadier
    /// timings).
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    fn sweep(&mut self) {
        let n = self.a.len();
        match self.kernel {
            StreamKernel::Copy => {
                for i in 0..n {
                    self.c[i] = self.a[i];
                }
            }
            StreamKernel::Scale => {
                for i in 0..n {
                    self.b[i] = self.scalar * self.c[i];
                }
            }
            StreamKernel::Add => {
                for i in 0..n {
                    self.c[i] = self.a[i] + self.b[i];
                }
            }
            StreamKernel::Triad => {
                for i in 0..n {
                    self.a[i] = self.b[i] + self.scalar * self.c[i];
                }
            }
        }
    }
}

impl Workload for StreamBench {
    fn id(&self) -> BenchmarkId {
        self.kernel.benchmark_id()
    }

    fn run_once(&mut self) -> Result<f64> {
        let start = Instant::now();
        for _ in 0..self.iterations {
            self.sweep();
            // Defeat dead-code elimination across sweeps.
            black_box(&mut self.a);
            black_box(&mut self.b);
            black_box(&mut self.c);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let bytes = self.kernel.bytes_per_element() * self.a.len() * self.iterations;
        if elapsed <= 0.0 {
            return Err(WorkloadError::InvalidConfig(
                "timer resolution too coarse for this array size".to_string(),
            ));
        }
        Ok(bytes as f64 / elapsed / 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_produce_positive_bandwidth() {
        for kernel in [
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Add,
            StreamKernel::Triad,
        ] {
            let mut b = StreamBench::new(kernel, 4096).unwrap().with_iterations(3);
            let mbps = b.run_once().unwrap();
            assert!(mbps > 0.0, "{kernel:?}");
            assert_eq!(b.id(), kernel.benchmark_id());
        }
    }

    #[test]
    fn kernels_compute_correct_results() {
        let mut b = StreamBench::new(StreamKernel::Add, 128)
            .unwrap()
            .with_iterations(1);
        b.run_once().unwrap();
        // c = a + b with a[i] = 0.5 i, b[i] = 2.0.
        assert_eq!(b.c[10], 10.0 * 0.5 + 2.0);

        let mut b = StreamBench::new(StreamKernel::Copy, 128)
            .unwrap()
            .with_iterations(1);
        b.run_once().unwrap();
        assert_eq!(b.c[17], 17.0 * 0.5);
    }

    #[test]
    fn rejects_tiny_arrays() {
        assert!(StreamBench::new(StreamKernel::Copy, 10).is_err());
    }

    #[test]
    fn repeated_runs_vary_but_stay_in_band() {
        let mut b = StreamBench::new(StreamKernel::Triad, 1 << 14)
            .unwrap()
            .with_iterations(5);
        let xs: Vec<f64> = (0..5).map(|_| b.run_once().unwrap()).collect();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min > 0.0);
        // Native timings vary, but not by 100x within one process.
        assert!(max / min < 100.0, "spread {}", max / min);
    }
}
