//! Real in-process micro-benchmarks.
//!
//! These exercise the host machine's actual memory, disk, and network
//! stack with the same [`Workload`](crate::Workload) interface as the
//! simulated benchmarks, proving the harness and planners run end-to-end
//! on real hardware. Sizes are configurable so tests stay fast.

mod disk;
mod memlat;
mod netloop;
mod oslat;
mod stream;
mod timer;

pub use disk::{DiskBench, DiskMode};
pub use memlat::MemLatencyBench;
pub use netloop::{NetBandwidthBench, NetLatencyBench};
pub use oslat::{ContextSwitchProbe, SyscallLatencyProbe};
pub use stream::{StreamBench, StreamKernel};
pub use timer::SleepJitterProbe;
