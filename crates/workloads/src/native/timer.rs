//! Sleep-jitter probe: how accurately can this host time anything?
//!
//! Every timestamp-based harness silently assumes the OS wakes it up when
//! asked. This probe requests short sleeps and measures the overshoot —
//! the compound of timer slack, scheduler latency, and power-state
//! exit costs. Large or heavy-tailed overshoots mean the *harness* is a
//! variability source, before the system under test contributes anything.
//!
//! This is a host diagnostic rather than a suite benchmark, so it does
//! not implement [`Workload`](crate::Workload): it has no simulated
//! counterpart on the testbed and is excluded from campaigns by design.

use std::time::{Duration, Instant};

use crate::runner::{Result, WorkloadError};

/// A sleep-overshoot probe.
///
/// # Examples
///
/// ```
/// use workloads::native::SleepJitterProbe;
///
/// let mut probe = SleepJitterProbe::new(200).unwrap();
/// let overshoot_us = probe.run_once().unwrap();
/// assert!(overshoot_us >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SleepJitterProbe {
    request_us: u64,
}

impl SleepJitterProbe {
    /// Creates a probe that requests sleeps of `request_us` microseconds.
    ///
    /// # Errors
    ///
    /// Rejects requests below 10 us (dominated by call overhead) or above
    /// one second (pointlessly slow runs).
    pub fn new(request_us: u64) -> Result<Self> {
        if !(10..=1_000_000).contains(&request_us) {
            return Err(WorkloadError::InvalidConfig(format!(
                "request must be in [10 us, 1 s], got {request_us} us"
            )));
        }
        Ok(Self { request_us })
    }

    /// The requested sleep duration in microseconds.
    pub fn request_us(&self) -> u64 {
        self.request_us
    }

    /// Sleeps once and returns the overshoot in microseconds
    /// (`actual - requested`, never negative in practice; clamped at 0).
    pub fn run_once(&mut self) -> Result<f64> {
        let requested = Duration::from_micros(self.request_us);
        let start = Instant::now();
        std::thread::sleep(requested);
        let actual = start.elapsed();
        let overshoot = actual.saturating_sub(requested);
        Ok(overshoot.as_secs_f64() * 1.0e6)
    }

    /// Collects `n` overshoot measurements.
    ///
    /// # Errors
    ///
    /// Rejects `n == 0`.
    pub fn collect(&mut self, n: usize) -> Result<Vec<f64>> {
        if n == 0 {
            return Err(WorkloadError::InvalidConfig(
                "n must be at least 1".to_string(),
            ));
        }
        (0..n).map(|_| self.run_once()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overshoot_is_nonnegative_and_bounded() {
        let mut probe = SleepJitterProbe::new(100).unwrap();
        let xs = probe.collect(5).unwrap();
        assert_eq!(xs.len(), 5);
        for &x in &xs {
            assert!(x >= 0.0);
            // Even a terrible scheduler wakes within a second.
            assert!(x < 1.0e6, "overshoot {x} us");
        }
        assert_eq!(probe.request_us(), 100);
    }

    #[test]
    fn longer_requests_still_return() {
        let mut probe = SleepJitterProbe::new(5_000).unwrap();
        assert!(probe.run_once().unwrap() >= 0.0);
    }

    #[test]
    fn validation() {
        assert!(SleepJitterProbe::new(5).is_err());
        assert!(SleepJitterProbe::new(2_000_000).is_err());
        let mut probe = SleepJitterProbe::new(100).unwrap();
        assert!(probe.collect(0).is_err());
    }
}
