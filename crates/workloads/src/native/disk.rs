//! Native disk I/O benchmarks (fio-style) over a temporary file.
//!
//! Sequential read/write with large blocks and random read/write with
//! 4 KiB blocks, reporting MB/s. The file lives in the system temp
//! directory and is removed on drop. Page-cache effects are real and
//! intentional — the paper measured whole-system disk behaviour, warts
//! and all; use file sizes larger than RAM to measure the device itself.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::time::Instant;

use crate::runner::{Result, Workload, WorkloadError};
use crate::spec::BenchmarkId;

/// Access pattern of a disk benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskMode {
    /// Sequential read, 1 MiB blocks.
    SeqRead,
    /// Sequential write, 1 MiB blocks.
    SeqWrite,
    /// Random read, 4 KiB blocks.
    RandRead,
    /// Random write, 4 KiB blocks.
    RandWrite,
}

impl DiskMode {
    fn benchmark_id(&self) -> BenchmarkId {
        match self {
            DiskMode::SeqRead => BenchmarkId::DiskSeqRead,
            DiskMode::SeqWrite => BenchmarkId::DiskSeqWrite,
            DiskMode::RandRead => BenchmarkId::DiskRandRead,
            DiskMode::RandWrite => BenchmarkId::DiskRandWrite,
        }
    }

    fn block_size(&self) -> usize {
        match self {
            DiskMode::SeqRead | DiskMode::SeqWrite => 1 << 20,
            DiskMode::RandRead | DiskMode::RandWrite => 4 << 10,
        }
    }
}

/// A native disk benchmark over a scratch file.
///
/// # Examples
///
/// ```
/// use workloads::native::{DiskBench, DiskMode};
/// use workloads::Workload;
///
/// let mut bench = DiskBench::new(DiskMode::SeqWrite, 2 << 20, 1 << 20, 0).unwrap();
/// let mbps = bench.run_once().unwrap();
/// assert!(mbps > 0.0);
/// ```
#[derive(Debug)]
pub struct DiskBench {
    mode: DiskMode,
    path: PathBuf,
    file_size: u64,
    io_bytes: u64,
    seed: u64,
}

impl DiskBench {
    /// Creates a benchmark over a fresh scratch file of `file_size` bytes,
    /// moving `io_bytes` per run; `seed` drives the random offsets.
    ///
    /// # Errors
    ///
    /// Returns an error if the scratch file cannot be created or the
    /// sizes are smaller than one block.
    pub fn new(mode: DiskMode, file_size: u64, io_bytes: u64, seed: u64) -> Result<Self> {
        let block = mode.block_size() as u64;
        if file_size < block || io_bytes < block {
            return Err(WorkloadError::InvalidConfig(format!(
                "file_size and io_bytes must be at least one block ({block} B)"
            )));
        }
        let path = std::env::temp_dir().join(format!(
            "taming-variability-disk-{}-{}.dat",
            std::process::id(),
            seed
        ));
        // Pre-fill the file so reads have real data.
        let mut f = File::create(&path)?;
        let chunk = vec![0xa5u8; 1 << 20];
        let mut written = 0u64;
        while written < file_size {
            let n = ((file_size - written) as usize).min(chunk.len());
            f.write_all(&chunk[..n])?;
            written += n as u64;
        }
        f.sync_all()?;
        Ok(Self {
            mode,
            path,
            file_size,
            io_bytes,
            seed,
        })
    }

    fn next_offset(&mut self, block: u64) -> u64 {
        // splitmix64 offset stream.
        self.seed = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let blocks = self.file_size / block;
        (z % blocks) * block
    }
}

impl Workload for DiskBench {
    fn id(&self) -> BenchmarkId {
        self.mode.benchmark_id()
    }

    fn run_once(&mut self) -> Result<f64> {
        let block = self.mode.block_size();
        let mut buf = vec![0u8; block];
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        let blocks_per_run = (self.io_bytes / block as u64).max(1);
        let start = Instant::now();
        match self.mode {
            DiskMode::SeqRead => {
                file.seek(SeekFrom::Start(0))?;
                for _ in 0..blocks_per_run {
                    if file.read(&mut buf)? == 0 {
                        file.seek(SeekFrom::Start(0))?;
                    }
                }
            }
            DiskMode::SeqWrite => {
                file.seek(SeekFrom::Start(0))?;
                let mut written = 0u64;
                for _ in 0..blocks_per_run {
                    if written + block as u64 > self.file_size {
                        file.seek(SeekFrom::Start(0))?;
                        written = 0;
                    }
                    file.write_all(&buf)?;
                    written += block as u64;
                }
                file.flush()?;
            }
            DiskMode::RandRead => {
                for _ in 0..blocks_per_run {
                    let off = self.next_offset(block as u64);
                    file.seek(SeekFrom::Start(off))?;
                    file.read_exact(&mut buf)?;
                }
            }
            DiskMode::RandWrite => {
                for _ in 0..blocks_per_run {
                    let off = self.next_offset(block as u64);
                    file.seek(SeekFrom::Start(off))?;
                    file.write_all(&buf)?;
                }
                file.flush()?;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed <= 0.0 {
            return Err(WorkloadError::InvalidConfig(
                "timer resolution too coarse for this I/O size".to_string(),
            ));
        }
        Ok((blocks_per_run * block as u64) as f64 / elapsed / 1.0e6)
    }
}

impl Drop for DiskBench {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_produce_positive_throughput() {
        for (i, mode) in [
            DiskMode::SeqRead,
            DiskMode::SeqWrite,
            DiskMode::RandRead,
            DiskMode::RandWrite,
        ]
        .into_iter()
        .enumerate()
        {
            let mut b = DiskBench::new(mode, 4 << 20, 1 << 20, 100 + i as u64).unwrap();
            let mbps = b.run_once().unwrap();
            assert!(mbps > 0.0, "{mode:?}");
            assert_eq!(b.id(), mode.benchmark_id());
        }
    }

    #[test]
    fn scratch_file_is_cleaned_up() {
        let path;
        {
            let b = DiskBench::new(DiskMode::SeqRead, 2 << 20, 1 << 20, 999).unwrap();
            path = b.path.clone();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn rejects_sub_block_sizes() {
        assert!(DiskBench::new(DiskMode::SeqRead, 100, 1 << 20, 0).is_err());
        assert!(DiskBench::new(DiskMode::RandRead, 1 << 20, 100, 0).is_err());
    }

    #[test]
    fn random_offsets_stay_in_file() {
        let mut b = DiskBench::new(DiskMode::RandRead, 4 << 20, 4 << 10, 5).unwrap();
        for _ in 0..1000 {
            let off = b.next_offset(4096);
            assert!(off + 4096 <= 4 << 20);
            assert_eq!(off % 4096, 0);
        }
    }

    #[test]
    fn repeated_runs_work() {
        let mut b = DiskBench::new(DiskMode::RandWrite, 2 << 20, 256 << 10, 7).unwrap();
        for _ in 0..3 {
            assert!(b.run_once().unwrap() > 0.0);
        }
    }
}
