//! Property-based tests for the benchmark suite.

use proptest::prelude::*;
use testbed::{catalog, Cluster, Timeline};
use workloads::native::{StreamBench, StreamKernel};
use workloads::{run_suite, sample, BenchmarkId, Harness, SimBenchmark, Workload};

fn any_benchmark() -> impl Strategy<Value = BenchmarkId> {
    prop::sample::select(BenchmarkId::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn samples_are_positive_deterministic_and_nonce_sensitive(
        seed in 0u64..300,
        bench in any_benchmark(),
        day in 0.0..200.0f64,
        nonce in 0u64..100_000,
    ) {
        let cluster = Cluster::provision(catalog(), 0.02, Timeline::cloudlab_default(), seed);
        let machine = cluster.machines()[0].id;
        let a = sample(&cluster, machine, bench, day, nonce).unwrap();
        let b = sample(&cluster, machine, bench, day, nonce).unwrap();
        let c = sample(&cluster, machine, bench, day, nonce.wrapping_add(1)).unwrap();
        prop_assert!(a > 0.0);
        prop_assert_eq!(a, b);
        prop_assert_ne!(a, c);
    }

    #[test]
    fn harness_returns_exactly_runs_measurements(
        warmup in 0usize..5,
        runs in 1usize..30,
        bench in any_benchmark(),
    ) {
        let cluster = Cluster::provision(catalog(), 0.02, Timeline::quiet(5.0), 3);
        let machine = cluster.machines()[0].id;
        let mut w = SimBenchmark::new(&cluster, machine, bench, 0.0);
        let xs = Harness::new(warmup, runs).collect(&mut w).unwrap();
        prop_assert_eq!(xs.len(), runs);
        prop_assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn suite_order_matches_all(day in 0.0..100.0f64) {
        let cluster = Cluster::provision(catalog(), 0.02, Timeline::quiet(200.0), 5);
        let machine = cluster.machines()[0].id;
        let suite = run_suite(&cluster, machine, day, 3).unwrap();
        let ids: Vec<BenchmarkId> = suite.iter().map(|(b, _)| *b).collect();
        prop_assert_eq!(ids, BenchmarkId::ALL.to_vec());
    }

    #[test]
    fn stream_bandwidth_is_finite_positive(elements_pow in 7u32..13) {
        let mut bench =
            StreamBench::new(StreamKernel::Scale, 1usize << elements_pow).unwrap()
                .with_iterations(2);
        let mbps = bench.run_once().unwrap();
        prop_assert!(mbps.is_finite());
        prop_assert!(mbps > 0.0);
    }

    #[test]
    fn benchmark_metadata_is_total(bench in any_benchmark()) {
        // Every benchmark has a label, unit, params, subsystem, and a
        // positive baseline scale — no panicking matches anywhere.
        prop_assert!(!bench.label().is_empty());
        prop_assert!(!bench.params().is_empty());
        prop_assert!(!bench.unit().label().is_empty());
        prop_assert!(bench.baseline_scale() > 0.0);
        let _ = bench.subsystem();
        let _ = bench.higher_is_better();
    }
}
