//! A deliberately small HTTP/1.1 implementation over std I/O.
//!
//! The serving daemon needs exactly what a reproducibility artifact
//! server needs and nothing more: `GET` requests with a path, a query
//! string, and a handful of headers in; status + headers + body out,
//! with keep-alive. Hand-rolling ~200 lines keeps the workspace free of
//! network dependencies (the container builds offline) and keeps every
//! byte of the response under the byte-identity contract's control.

use std::io::{BufRead, Write};

/// Longest request line and longest single header accepted, in bytes.
/// Anything beyond this is a client error, not a buffer to grow.
const MAX_LINE: usize = 8 * 1024;

/// Maximum headers per request.
const MAX_HEADERS: usize = 64;

/// A parsed request head. Bodies are not modeled: the artifact server
/// is read-only, and `GET`/`HEAD` requests carry none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased (e.g. `GET`).
    pub method: String,
    /// Path component, without the query string (e.g. `/v1/artifacts/F6`).
    pub path: String,
    /// Decoded `key=value` query pairs, in request order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Minor HTTP version: `1` for `HTTP/1.1`, `0` for `HTTP/1.0`.
    /// Chunked transfer coding is only legal at 1.1; keep-alive
    /// defaults differ.
    pub minor: u8,
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The connection closed cleanly before a request line.
    ConnectionClosed,
    /// The socket's read timeout expired mid-request — a stalled
    /// (slow-loris) or idle client. The server answers `408` and drops
    /// the connection rather than letting the client pin a worker.
    TimedOut,
    /// I/O failure mid-request.
    Io(String),
    /// The bytes are not HTTP the server understands.
    Malformed(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed"),
            ParseError::TimedOut => write!(f, "read timed out"),
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed(why) => write!(f, "malformed request: {why}"),
        }
    }
}

/// Reads one `\r\n`- (or `\n`-) terminated line, capped at [`MAX_LINE`].
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, ParseError> {
    let mut line = String::new();
    let mut taken = 0usize;
    loop {
        let mut byte = [0u8; 1];
        let n = std::io::Read::read(reader, &mut byte).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => ParseError::ConnectionClosed,
            // Both kinds occur for an expired `set_read_timeout`,
            // platform-dependently.
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ParseError::TimedOut,
            _ => ParseError::Io(e.to_string()),
        })?;
        if n == 0 {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(ParseError::Malformed("truncated line"))
            };
        }
        taken += 1;
        if taken > MAX_LINE {
            return Err(ParseError::Malformed("line too long"));
        }
        match byte[0] {
            b'\n' => {
                if line.ends_with('\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            b => line.push(b as char),
        }
    }
}

/// Splits a query string into decoded pairs. Only `%XX` and `+` are
/// decoded; experiment ids and the parameters the server accepts are
/// ASCII, so this covers every legal request.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect()
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

impl Request {
    /// Reads one request head from `reader`. `Ok(None)` is a clean
    /// end-of-connection (the client finished a keep-alive session).
    pub fn read_from(reader: &mut impl BufRead) -> Result<Option<Request>, ParseError> {
        let Some(request_line) = read_line(reader)? else {
            return Ok(None);
        };
        if request_line.is_empty() {
            return Err(ParseError::Malformed("empty request line"));
        }
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or(ParseError::Malformed("missing method"))?
            .to_ascii_uppercase();
        let target = parts.next().ok_or(ParseError::Malformed("missing path"))?;
        let version = parts
            .next()
            .ok_or(ParseError::Malformed("missing version"))?;
        let minor = match version {
            "HTTP/1.1" => 1,
            "HTTP/1.0" => 0,
            _ => return Err(ParseError::Malformed("unsupported version")),
        };
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), parse_query(q)),
            None => (target.to_string(), Vec::new()),
        };
        let mut headers = Vec::new();
        loop {
            let line = read_line(reader)?.ok_or(ParseError::Malformed("truncated headers"))?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(ParseError::Malformed("too many headers"));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(ParseError::Malformed("header without colon"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            minor,
        }))
    }

    /// First header with `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter named `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open after this
    /// response: HTTP/1.1 defaults to keep-alive unless
    /// `Connection: close`, HTTP/1.0 defaults to close unless
    /// `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("keep-alive"),
            None => self.minor >= 1,
        }
    }

    /// Whether the response may use chunked transfer coding (HTTP/1.1
    /// only; a 1.0 client must get `Content-Length` framing).
    pub fn accepts_chunked(&self) -> bool {
        self.minor >= 1
    }
}

/// A response ready to serialize. Header order is fixed by insertion
/// order, so responses are byte-deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `(name, value)` headers, serialized in order.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

impl Response {
    /// A plain-text response (`text/plain; charset=utf-8`).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: vec![(
                "Content-Type".to_string(),
                "text/plain; charset=utf-8".to_string(),
            )],
            body: body.into().into_bytes(),
        }
    }

    /// An empty response with no content-type (e.g. `304`).
    pub fn empty(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// First response header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Appends a header, builder style.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Replaces the declared content type.
    pub fn with_content_type(mut self, value: &str) -> Self {
        self.headers.retain(|(n, _)| n != "Content-Type");
        self.headers
            .insert(0, ("Content-Type".to_string(), value.to_string()));
        self
    }

    /// Serializes the response. `Content-Length` and `Connection` are
    /// written by the server, so handlers never get them wrong.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "Content-Length: {}\r\n", self.body.len())?;
        write!(
            writer,
            "Connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        writer.write_all(&self.body)?;
        writer.flush()
    }

    /// Serializes this response head with `Transfer-Encoding: chunked`
    /// framing and streams `chunks` as the body, one `chunk-size CRLF
    /// chunk-data CRLF` frame each (empty chunks are skipped — an empty
    /// frame would terminate the body early), ending with the `0` frame.
    /// `self.body` must be empty: the chunks ARE the body.
    ///
    /// Memory stays O(largest chunk): each chunk is written and dropped
    /// before the next is pulled from the iterator.
    pub fn write_chunked_to(
        &self,
        writer: &mut impl Write,
        keep_alive: bool,
        chunks: impl Iterator<Item = Vec<u8>>,
    ) -> std::io::Result<()> {
        debug_assert!(
            self.body.is_empty(),
            "chunked responses carry no eager body"
        );
        write!(
            writer,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "Transfer-Encoding: chunked\r\n")?;
        write!(
            writer,
            "Connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        for chunk in chunks {
            if chunk.is_empty() {
                continue;
            }
            write!(writer, "{:x}\r\n", chunk.len())?;
            writer.write_all(&chunk)?;
            writer.write_all(b"\r\n")?;
        }
        writer.write_all(b"0\r\n\r\n")?;
        writer.flush()
    }
}

/// Decodes a chunked transfer-coded body back to its payload bytes.
/// Used by tests and the load harness to compare streamed responses
/// against whole-body ones; returns an error on malformed framing.
pub fn decode_chunked(body: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut rest = body;
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("missing chunk-size line")?;
        let size_line = std::str::from_utf8(&rest[..line_end]).map_err(|_| "bad chunk size")?;
        let size_token = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_token, 16).map_err(|_| "bad chunk size")?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err("truncated chunk".to_string());
        }
        out.extend_from_slice(&rest[..size]);
        if &rest[size..size + 2] != b"\r\n" {
            return Err("chunk not CRLF-terminated".to_string());
        }
        rest = &rest[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, ParseError> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_request_with_query_and_headers() {
        let req = parse(
            "GET /v1/artifacts/F6?seed=7&scale=quick HTTP/1.1\r\nHost: x\r\nIf-None-Match: \"abc\"\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/artifacts/F6");
        assert_eq!(req.query_param("seed"), Some("7"));
        assert_eq!(req.query_param("scale"), Some("quick"));
        assert_eq!(req.query_param("absent"), None);
        assert_eq!(req.header("if-none-match"), Some("\"abc\""));
        assert_eq!(req.header("IF-NONE-MATCH"), Some("\"abc\""));
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_and_clean_eof() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        assert_eq!(parse("").unwrap(), None, "clean EOF yields no request");
    }

    #[test]
    fn http_1_0_defaults_to_close_and_whole_bodies() {
        let old = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(old.minor, 0);
        assert!(!old.keep_alive(), "1.0 defaults to close");
        assert!(!old.accepts_chunked(), "chunked framing is 1.1-only");
        let pinned = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(pinned.keep_alive(), "1.0 opts in explicitly");
        let new = parse("GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(new.minor, 1);
        assert!(new.keep_alive());
        assert!(new.accepts_chunked());
    }

    #[test]
    fn chunked_responses_frame_and_decode_round_trip() {
        let mut out = Vec::new();
        let head = Response {
            status: 200,
            headers: vec![("Content-Type".to_string(), "text/plain".to_string())],
            body: Vec::new(),
        };
        let chunks = vec![b"first ".to_vec(), Vec::new(), b"second".to_vec()];
        head.write_chunked_to(&mut out, true, chunks.into_iter())
            .unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(!text.contains("Content-Length"), "chunked excludes length");
        assert!(text.ends_with("0\r\n\r\n"));
        let body_at = out.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        assert_eq!(decode_chunked(&out[body_at..]).unwrap(), b"first second");
    }

    #[test]
    fn chunked_decoding_rejects_damage() {
        assert!(decode_chunked(b"").is_err());
        assert!(decode_chunked(b"zz\r\nabc\r\n0\r\n\r\n").is_err());
        assert!(decode_chunked(b"5\r\nab").is_err(), "truncated chunk");
        assert!(decode_chunked(b"3\r\nabcXY0\r\n\r\n").is_err(), "bad CRLF");
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        assert!(matches!(parse("\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(
            parse("GET /\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE));
        assert!(matches!(parse(&long), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn percent_decoding_covers_the_ascii_cases() {
        assert_eq!(percent_decode("F6"), "F6");
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%", "dangling % passes through");
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let mut out = Vec::new();
        Response::text(200, "hi")
            .with_header("ETag", "\"d00d\"")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: text/plain; charset=utf-8\r\n"));
        assert!(text.contains("ETag: \"d00d\"\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
        let mut out = Vec::new();
        Response::empty(304).write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 304 Not Modified\r\n"));
        assert!(text.contains("Content-Length: 0\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
    }
}
