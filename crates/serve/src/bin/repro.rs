//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! repro list
//! repro all [--scale quick|paper] [--seed N] [--jobs N] [--out DIR] [--trace] [--metrics]
//! repro F9 T3 ... [--scale ...] [--seed ...] [--out DIR] [--json]
//! repro all --resume DIR [--chaos SEED]
//! repro all --stream [--resume DIR]
//! repro cache stats|clear [--cache-dir DIR]
//! repro sentinel record|audit|watch|report|clear [--sentinel-dir DIR]
//! repro serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-dir DIR]
//! repro collect --journal DIR [--distributed N] [--chaos SEED]
//! repro journal fsck DIR
//! ```
//!
//! Experiments run on the engine's deterministic parallel scheduler
//! (`--jobs` governs both campaign collection and the experiment loop);
//! the stdout report, artifacts, and manifest are byte-identical for any
//! worker count. A failing experiment does not abort the run: its
//! siblings' artifacts are still produced and the failure is reported
//! per-id with a non-zero exit at the end.
//!
//! Successful artifacts are cached content-addressed under
//! `artifacts/.cache` (override with `--cache-dir`, bypass with
//! `--no-cache`): a rerun with the same scale, seed, and code versions
//! replays them without executing the pipelines, byte-identically. The
//! stderr summary line and the manifest's cache section report hits,
//! misses, invalidated entries, and stores; `repro cache stats|clear`
//! inspects or purges the directory.
//!
//! `--resume DIR` keeps a write-ahead journal of completed campaign
//! shards in DIR: a killed run replays the finished shards on the next
//! invocation and re-collects only the rest, byte-identical to an
//! uninterrupted run. `--stream` (or `REPRO_STREAM=1`) runs the whole
//! data path against the shard journal instead of a materialized store:
//! collection writes each machine's shard and drops it, experiments
//! replay one shard at a time, and peak memory is bounded by the
//! largest shard instead of the fleet (DESIGN.md §11) — with artifacts
//! byte-identical to the materialized run's. `--chaos SEED` (or `REPRO_CHAOS=SEED`) arms the
//! deterministic fault-injection harness: transient machine faults, I/O
//! errors, and worker deaths fire at seed-derived sites, transient
//! failures retry with bounded backoff, and persistent failures are
//! quarantined per-id. See DESIGN.md §8 for the fault model.
//!
//! `repro collect --journal DIR` runs the campaign as a standalone
//! product: a shard journal on disk, ready for `--resume`/`--stream`
//! replay or fsck. `--distributed N` collects it with a supervisor
//! plus N worker *subprocesses* coordinating through a lease-file
//! exchange directory — workers heartbeat while they collect, the
//! supervisor reaps the dead, reassigns their work units, and merges
//! the per-worker journals into DIR, byte-identical to a
//! single-process collection for any N and any kill schedule
//! (DESIGN.md §12). `repro journal fsck DIR` checksum-verifies a
//! journal or exchange and exits 0/1/2 (clean/findings/unreadable).
//! `repro serve` shuts down gracefully on SIGTERM/SIGINT: it stops
//! accepting, drains in-flight requests, flushes the telemetry
//! counters to stderr, and exits 0.
//!
//! With `--trace` / `--metrics` the run measures itself through the
//! `telemetry` crate: a per-experiment timing table and a span-latency
//! summary (median + non-parametric 95% CI + CoV, per the paper's own
//! methodology) are printed, and `trace.json` / `metrics.json` land next
//! to the artifacts (`--trace-chrome` additionally writes
//! `trace.chrome.json` for chrome://tracing). A `manifest.json` recording
//! seed, scale, host, and per-experiment wall times is written whenever
//! `--out` is given.
//!
//! Every fully successful run also appends one record — wall times as
//! audited metrics, cache/fault counters as notes — to the regression
//! sentinel's history under `artifacts/.sentinel` (`--sentinel-dir`
//! overrides, `--no-sentinel` disables). `repro sentinel audit` scores
//! the newest record against the comparable history with median/MAD
//! robust z-scores and an online CUSUM change-point pass, exiting
//! non-zero on a flagged regression (the CI hook); `report` renders the
//! per-metric history with change-points, `watch` polls for new records,
//! `record` ingests a `manifest.json` or Criterion output by hand, and
//! `clear` wipes the history. See DESIGN.md §9.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

// The helper modules live under `repro/` so cargo's bin auto-discovery
// does not mistake them for standalone binaries.
#[path = "repro/collect.rs"]
mod collect;
#[path = "repro/signals.rs"]
mod signals;

use std::cell::Cell;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use analysis::{all, find, Artifact, Context, Experiment, ExperimentError, Scale, Table};

const USAGE: &str = "\
usage: repro <list|all|ID...|serve|collect|journal fsck DIR|cache CMD|sentinel CMD> [options]

  list                  print the experiment registry
  all                   run every experiment
  serve                 run the artifact-serving daemon: answers
                        GET /v1/experiments, /v1/artifacts/{id},
                        /v1/manifest/{id}, /metrics, /healthz from the
                        artifact cache, computing misses on demand;
                        SIGTERM/SIGINT drains and exits 0
  collect               collect the campaign into a shard journal
                        (--journal DIR); with --distributed N, a
                        supervisor and N worker subprocesses share the
                        work over a lease-file exchange, surviving
                        worker kills with byte-identical output
  journal fsck DIR      verify a shard journal (or exchange) against
                        its pinned fingerprint; exit 0 clean,
                        1 findings, 2 unreadable
  cache stats           report artifact-cache entry count and size
  cache clear           delete all artifact-cache entries
  sentinel record       append a run record to the history
                        (--from DIR reads DIR/manifest.json;
                         --criterion DIR reads Criterion estimates)
  sentinel audit        score the newest record against its history;
                        exits non-zero on a flagged regression
  sentinel watch        poll the history and audit records as they land
  sentinel report       render the per-metric history with change-points
  sentinel clear        delete all run-history records

options:
  --scale quick|paper   campaign scale (default quick)
  --seed N              master seed (default 42)
  --jobs N              worker threads for campaign collection AND the
                        experiment loop (default: one per core; output is
                        byte-identical for any N)
  --out DIR             write artifacts into DIR (CSV, or JSON with --json)
  --json                write artifacts as JSON instead of CSV
  --trace               collect span traces: prints a span latency table
                        (median + 95% CI + CoV) and writes trace.json
                        into --out
  --trace-chrome        also write trace.chrome.json (chrome://tracing /
                        Perfetto format) into --out; implies --trace
  --metrics             collect counters/gauges/histograms: prints a
                        metrics summary table and writes metrics.json
                        into --out
  --cache-dir DIR       artifact cache directory
                        (default artifacts/.cache)
  --no-cache            neither read nor write the artifact cache
  --resume DIR          journal completed campaign shards into DIR and
                        replay any already there: a killed run continues
                        where it stopped, byte-identical to an
                        uninterrupted one
  --stream              stream the data path from the shard journal
                        (bounded memory: one machine shard resident at
                        a time; artifacts byte-identical); uses --resume
                        DIR as the journal when given, else a scratch
                        directory; env REPRO_STREAM=1 does the same
  --chaos SEED          arm deterministic fault injection (transient
                        faults, I/O errors, worker deaths) derived from
                        SEED; env REPRO_CHAOS=SEED does the same
  --sentinel-dir DIR    run-history directory
                        (default artifacts/.sentinel)
  --no-sentinel         do not record this run in the history
  --from DIR            (sentinel record) manifest directory to ingest
  --criterion DIR       (sentinel record) Criterion output directory to
                        ingest (e.g. target/criterion)
  --kind NAME           (sentinel record) record kind label
  --min-history N       (sentinel audit/watch/report) comparable priors a
                        metric needs before it can flag (default 4)
  --max-z Z             (sentinel audit/watch) robust z-score threshold
                        (default 4)
  --two-sided           (sentinel audit/watch) flag suspicious speedups
                        too, not just regressions
  --addr HOST:PORT      (serve) listen address (default 127.0.0.1:8787;
                        port 0 picks an ephemeral port)
  --workers N           (serve) connection-handling worker threads
                        (default: one per core)
  --queue-cap N         (serve) accepted connections allowed to wait for
                        a worker; beyond this the daemon sheds load with
                        503 Retry-After (default 128)
  --poll-ms MS          (sentinel watch) poll interval (default 200)
  --iterations N        (sentinel watch) stop after N polls (default:
                        poll forever)
  --journal DIR         (collect) the output shard journal directory
  --distributed N       (collect) supervise N worker subprocesses over
                        a shared exchange instead of collecting
                        in-process
  --exchange DIR        (collect) the exchange directory
                        (default: <journal>.exchange)
  --units N             (collect) work units to partition the fleet
                        into (default: 4 per worker)
  --stale-ms MS         (collect) heartbeat staleness horizon before a
                        worker's lease is reclaimed (default 1000)
  --keep-exchange       (collect) keep the exchange directory after a
                        converged run instead of removing it
  --help, -h            print this help";

/// Removes a scratch journal directory on every exit path.
struct ScratchDir(Option<PathBuf>);

impl Drop for ScratchDir {
    fn drop(&mut self) {
        if let Some(dir) = &self.0 {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

struct Args {
    ids: Vec<String>,
    scale: Scale,
    seed: u64,
    jobs: Option<usize>,
    out: Option<PathBuf>,
    json: bool,
    list: bool,
    trace: bool,
    trace_chrome: bool,
    metrics: bool,
    serve: bool,
    addr: String,
    workers: Option<usize>,
    queue_cap: Option<usize>,
    cache_cmd: Option<String>,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    resume: Option<PathBuf>,
    stream: bool,
    chaos: Option<u64>,
    sentinel_cmd: Option<String>,
    sentinel_dir: Option<PathBuf>,
    no_sentinel: bool,
    from: Option<PathBuf>,
    criterion_dir: Option<PathBuf>,
    kind: Option<String>,
    min_history: usize,
    max_z: f64,
    two_sided: bool,
    poll_ms: u64,
    iterations: Option<u64>,
    collect: bool,
    collect_worker: bool,
    journal: Option<PathBuf>,
    distributed: Option<usize>,
    exchange: Option<PathBuf>,
    worker: Option<usize>,
    units: Option<usize>,
    stale_ms: Option<u64>,
    keep_exchange: bool,
    fsck: Option<PathBuf>,
}

enum Parsed {
    Run(Box<Args>),
    Help,
}

fn parse_args() -> Result<Parsed, String> {
    let mut args = Args {
        ids: Vec::new(),
        scale: Scale::Quick,
        seed: 42,
        jobs: None,
        out: None,
        json: false,
        list: false,
        trace: false,
        trace_chrome: false,
        metrics: false,
        serve: false,
        addr: "127.0.0.1:8787".to_string(),
        workers: None,
        queue_cap: None,
        cache_cmd: None,
        cache_dir: None,
        no_cache: false,
        resume: None,
        stream: false,
        chaos: None,
        sentinel_cmd: None,
        sentinel_dir: None,
        no_sentinel: false,
        from: None,
        criterion_dir: None,
        kind: None,
        min_history: 4,
        max_z: 4.0,
        two_sided: false,
        poll_ms: 200,
        iterations: None,
        collect: false,
        collect_worker: false,
        journal: None,
        distributed: None,
        exchange: None,
        worker: None,
        units: None,
        stale_ms: None,
        keep_exchange: false,
        fsck: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "list" => args.list = true,
            "serve" => args.serve = true,
            "--addr" => {
                let v = it.next().ok_or("--addr needs HOST:PORT")?;
                args.addr = v;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                args.workers = Some(n);
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad queue cap `{v}`"))?;
                if n == 0 {
                    return Err("--queue-cap must be at least 1".to_string());
                }
                args.queue_cap = Some(n);
            }
            "all" => args.ids.extend(all().iter().map(|e| e.id().to_string())),
            "collect" => args.collect = true,
            "collect-worker" => args.collect_worker = true,
            "journal" => {
                let v = it.next().ok_or("journal needs a subcommand: fsck DIR")?;
                if v != "fsck" {
                    return Err(format!("unknown journal subcommand `{v}`"));
                }
                let dir = it.next().ok_or("journal fsck needs a directory")?;
                args.fsck = Some(PathBuf::from(dir));
            }
            "--journal" => {
                let v = it.next().ok_or("--journal needs a directory")?;
                args.journal = Some(PathBuf::from(v));
            }
            "--distributed" => {
                let v = it.next().ok_or("--distributed needs a worker count")?;
                let n: usize = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
                if n == 0 {
                    return Err("--distributed must be at least 1".to_string());
                }
                args.distributed = Some(n);
            }
            "--exchange" => {
                let v = it.next().ok_or("--exchange needs a directory")?;
                args.exchange = Some(PathBuf::from(v));
            }
            "--worker" => {
                let v = it.next().ok_or("--worker needs an index")?;
                args.worker = Some(v.parse().map_err(|_| format!("bad worker index `{v}`"))?);
            }
            "--units" => {
                let v = it.next().ok_or("--units needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad unit count `{v}`"))?;
                if n == 0 {
                    return Err("--units must be at least 1".to_string());
                }
                args.units = Some(n);
            }
            "--stale-ms" => {
                let v = it.next().ok_or("--stale-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad stale-ms `{v}`"))?;
                if ms == 0 {
                    return Err("--stale-ms must be at least 1".to_string());
                }
                args.stale_ms = Some(ms);
            }
            "--keep-exchange" => args.keep_exchange = true,
            "cache" => {
                let v = it
                    .next()
                    .ok_or("cache needs a subcommand: stats or clear")?;
                if v != "stats" && v != "clear" {
                    return Err(format!("unknown cache subcommand `{v}`"));
                }
                args.cache_cmd = Some(v);
            }
            "sentinel" => {
                let v = it
                    .next()
                    .ok_or("sentinel needs a subcommand: record, audit, watch, report, or clear")?;
                if !["record", "audit", "watch", "report", "clear"].contains(&v.as_str()) {
                    return Err(format!("unknown sentinel subcommand `{v}`"));
                }
                args.sentinel_cmd = Some(v);
            }
            "--sentinel-dir" => {
                let v = it.next().ok_or("--sentinel-dir needs a value")?;
                args.sentinel_dir = Some(PathBuf::from(v));
            }
            "--no-sentinel" => args.no_sentinel = true,
            "--from" => {
                let v = it.next().ok_or("--from needs a directory")?;
                args.from = Some(PathBuf::from(v));
            }
            "--criterion" => {
                let v = it.next().ok_or("--criterion needs a directory")?;
                args.criterion_dir = Some(PathBuf::from(v));
            }
            "--kind" => {
                let v = it.next().ok_or("--kind needs a value")?;
                args.kind = Some(v);
            }
            "--min-history" => {
                let v = it.next().ok_or("--min-history needs a value")?;
                args.min_history = v.parse().map_err(|_| format!("bad min-history `{v}`"))?;
            }
            "--max-z" => {
                let v = it.next().ok_or("--max-z needs a value")?;
                args.max_z = v.parse().map_err(|_| format!("bad max-z `{v}`"))?;
            }
            "--two-sided" => args.two_sided = true,
            "--poll-ms" => {
                let v = it.next().ok_or("--poll-ms needs a value")?;
                args.poll_ms = v.parse().map_err(|_| format!("bad poll-ms `{v}`"))?;
            }
            "--iterations" => {
                let v = it.next().ok_or("--iterations needs a value")?;
                args.iterations = Some(v.parse().map_err(|_| format!("bad iterations `{v}`"))?);
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a value")?;
                args.cache_dir = Some(PathBuf::from(v));
            }
            "--no-cache" => args.no_cache = true,
            "--resume" => {
                let v = it.next().ok_or("--resume needs a directory")?;
                args.resume = Some(PathBuf::from(v));
            }
            "--stream" => args.stream = true,
            "--chaos" => {
                let v = it.next().ok_or("--chaos needs a seed")?;
                args.chaos = Some(v.parse().map_err(|_| format!("bad chaos seed `{v}`"))?);
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = Scale::parse(&v).ok_or(format!("unknown scale `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad job count `{v}`"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                args.jobs = Some(n);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                args.out = Some(PathBuf::from(v));
            }
            "--json" => args.json = true,
            "--trace" => args.trace = true,
            "--trace-chrome" => {
                args.trace = true;
                args.trace_chrome = true;
            }
            "--metrics" => args.metrics = true,
            "--help" | "-h" => return Ok(Parsed::Help),
            id => args.ids.push(id.to_string()),
        }
    }
    if args.trace_chrome && args.out.is_none() {
        return Err("--trace-chrome needs --out".to_string());
    }
    if !args.stream {
        if let Ok(v) = std::env::var("REPRO_STREAM") {
            args.stream = !matches!(v.as_str(), "" | "0" | "false");
        }
    }
    if args.chaos.is_none() {
        if let Ok(v) = std::env::var("REPRO_CHAOS") {
            args.chaos = Some(
                v.parse()
                    .map_err(|_| format!("bad REPRO_CHAOS seed `{v}`"))?,
            );
        }
    }
    // An id may arrive more than once (`repro all F9`, `repro F9 f9`);
    // each experiment runs at most once, in first-seen order.
    let mut seen = std::collections::HashSet::new();
    args.ids.retain(|id| seen.insert(id.to_ascii_uppercase()));
    Ok(Parsed::Run(Box::new(args)))
}

/// Registry experiment plus optional injected failure or slowdown, so
/// the failure path (`REPRO_FAIL=F9,T3 repro all`) and the sentinel's
/// regression path (`REPRO_SLOWDOWN_MS=250 repro all`) are testable end
/// to end without a genuinely broken or slow pipeline.
struct Wrapped {
    inner: &'static dyn Experiment,
    fail: bool,
    slowdown: Option<std::time::Duration>,
}

impl Experiment for Wrapped {
    fn id(&self) -> &str {
        self.inner.id()
    }
    fn kind(&self) -> analysis::Kind {
        self.inner.kind()
    }
    fn title(&self) -> &str {
        self.inner.title()
    }
    fn cost(&self) -> analysis::Cost {
        self.inner.cost()
    }
    fn code_version(&self) -> u32 {
        self.inner.code_version()
    }
    fn cacheable(&self) -> bool {
        // A cached success must never mask an injected failure, and a
        // cache replay must never hide an injected slowdown from the
        // sentinel's wall-time metrics.
        !self.fail && self.slowdown.is_none() && self.inner.cacheable()
    }
    fn run(&self, ctx: &Context) -> Result<Vec<Artifact>, ExperimentError> {
        if self.fail {
            return Err(ExperimentError::new("injected failure (REPRO_FAIL)"));
        }
        if let Some(pause) = self.slowdown {
            std::thread::sleep(pause);
        }
        self.inner.run(ctx)
    }
}

fn injected_failures() -> std::collections::HashSet<String> {
    std::env::var("REPRO_FAIL")
        .map(|v| {
            v.split(',')
                .map(|id| id.trim().to_ascii_uppercase())
                .filter(|id| !id.is_empty())
                .collect()
        })
        .unwrap_or_default()
}

/// `REPRO_SLOWDOWN_MS=N` sleeps N ms inside every experiment — a
/// deterministic, environment-injected regression for exercising the
/// sentinel end to end (the CI harness's red run).
fn injected_slowdown() -> Option<std::time::Duration> {
    std::env::var("REPRO_SLOWDOWN_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(std::time::Duration::from_millis)
}

fn sentinel_dir(args: &Args) -> PathBuf {
    args.sentinel_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("artifacts/.sentinel"))
}

fn audit_config(args: &Args) -> sentinel::AuditConfig {
    sentinel::AuditConfig {
        max_z: args.max_z,
        min_history: args.min_history,
        two_sided: args.two_sided,
        ..Default::default()
    }
}

/// Appends this run to the sentinel history. Recording is best-effort
/// observability: a failure warns and never fails the run that produced
/// perfectly good artifacts.
fn sentinel_record_run(args: &Args, manifest: &telemetry::RunManifest) {
    let workload = if args.ids.len() == all().len() {
        "all".to_string()
    } else {
        sentinel::record::workload_fingerprint(Some(&args.ids))
    };
    let dir = sentinel_dir(args);
    match sentinel::RunRecord::from_manifest(manifest, "repro-all", &workload)
        .and_then(|rec| sentinel::HistoryStore::new(&dir).append(&rec))
    {
        Ok(seq) => eprintln!("sentinel: recorded run #{seq} in {}", dir.display()),
        Err(err) => eprintln!("sentinel: could not record run: {err}"),
    }
}

/// Audits the record at `idx` against everything before it and prints
/// the report. Returns whether the record flagged a regression.
fn audit_one(
    loaded: &sentinel::LoadedHistory,
    idx: usize,
    config: &sentinel::AuditConfig,
) -> Result<bool, sentinel::SentinelError> {
    let (seq, latest) = &loaded.records[idx];
    let priors: Vec<sentinel::RunRecord> = loaded.records[..idx]
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    let report = sentinel::audit(&priors, latest, config)?;
    print!("run #{seq}: {}", sentinel::report::render_audit(&report));
    Ok(report.regression())
}

fn run_sentinel(cmd: &str, args: &Args) -> ExitCode {
    let dir = sentinel_dir(args);
    let store = sentinel::HistoryStore::new(&dir);
    let fail = |err: &dyn std::fmt::Display| {
        eprintln!("sentinel {cmd} failed in {}: {err}", dir.display());
        ExitCode::FAILURE
    };
    match cmd {
        "record" => {
            let record = if let Some(criterion_dir) = &args.criterion_dir {
                let medians = sentinel::criterion::criterion_medians(criterion_dir);
                if medians.is_empty() {
                    eprintln!(
                        "sentinel record: no Criterion estimates under {}",
                        criterion_dir.display()
                    );
                    return ExitCode::FAILURE;
                }
                let kind = args.kind.as_deref().unwrap_or("bench");
                let mut rec = sentinel::RunRecord::new(
                    kind,
                    "criterion",
                    env!("CARGO_PKG_VERSION"),
                    args.seed,
                    "bench",
                );
                for (name, median) in &medians {
                    if let Err(err) = rec.push_metric(name, *median) {
                        return fail(&err);
                    }
                }
                rec
            } else if let Some(from) = &args.from {
                let path = if from.is_dir() {
                    from.join("manifest.json")
                } else {
                    from.clone()
                };
                let manifest = match std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| {
                        telemetry::RunManifest::from_json(&text).map_err(|e| e.to_string())
                    }) {
                    Ok(m) => m,
                    Err(err) => {
                        eprintln!("sentinel record: cannot read {}: {err}", path.display());
                        return ExitCode::FAILURE;
                    }
                };
                let kind = args.kind.as_deref().unwrap_or("repro-all");
                match sentinel::RunRecord::from_manifest(&manifest, kind, "all") {
                    Ok(rec) => rec,
                    Err(err) => return fail(&err),
                }
            } else {
                eprintln!("sentinel record needs --from DIR or --criterion DIR");
                return ExitCode::FAILURE;
            };
            match store.append(&record) {
                Ok(seq) => {
                    println!("sentinel: recorded run #{seq} in {}", dir.display());
                    ExitCode::SUCCESS
                }
                Err(err) => fail(&err),
            }
        }
        "audit" => {
            let loaded = match store.load() {
                Ok(l) => l,
                Err(err) => return fail(&err),
            };
            if loaded.corrupt > 0 {
                eprintln!(
                    "sentinel: skipped {} corrupt record file(s)",
                    loaded.corrupt
                );
            }
            if loaded.records.is_empty() {
                println!("sentinel audit: history is empty; nothing to audit");
                return ExitCode::SUCCESS;
            }
            match audit_one(&loaded, loaded.records.len() - 1, &audit_config(args)) {
                Ok(true) => ExitCode::FAILURE,
                Ok(false) => ExitCode::SUCCESS,
                Err(err) => fail(&err),
            }
        }
        "watch" => {
            let config = audit_config(args);
            let poll = std::time::Duration::from_millis(args.poll_ms.max(1));
            let mut last_seq = match store.load() {
                Ok(l) => l.records.last().map_or(0, |(seq, _)| *seq),
                Err(err) => return fail(&err),
            };
            eprintln!(
                "sentinel watch: {} (from run #{last_seq}, every {}ms)",
                dir.display(),
                poll.as_millis()
            );
            let mut remaining = args.iterations;
            let mut regressed = false;
            // `HistoryStore::load` treats a missing directory as an empty
            // history (so `watch` can start before the first record), but
            // a directory that *was* there and vanished mid-watch means
            // the history is gone — polling forever would just busy-loop
            // on ENOENT. Track whether we ever saw it.
            let mut dir_seen = dir.is_dir();
            loop {
                if let Some(r) = &mut remaining {
                    if *r == 0 {
                        break;
                    }
                    *r -= 1;
                }
                std::thread::sleep(poll);
                let dir_exists = dir.is_dir();
                if dir_seen && !dir_exists {
                    eprintln!(
                        "sentinel watch: history directory {} disappeared",
                        dir.display()
                    );
                    return ExitCode::FAILURE;
                }
                dir_seen |= dir_exists;
                let loaded = match store.load() {
                    Ok(l) => l,
                    Err(err) => return fail(&err),
                };
                for idx in 0..loaded.records.len() {
                    if loaded.records[idx].0 <= last_seq {
                        continue;
                    }
                    last_seq = loaded.records[idx].0;
                    match audit_one(&loaded, idx, &config) {
                        Ok(flag) => regressed |= flag,
                        Err(err) => return fail(&err),
                    }
                }
            }
            if regressed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "report" => match store.load() {
            Ok(loaded) => {
                let cusum = varstats::online::OnlineCusumConfig {
                    warm_up: args.min_history.max(2),
                    ..Default::default()
                };
                print!("{}", sentinel::report::render_history(&loaded, None, cusum));
                ExitCode::SUCCESS
            }
            Err(err) => fail(&err),
        },
        _ => match store.clear() {
            Ok(removed) => {
                println!(
                    "sentinel {}: removed {removed} records",
                    store.dir().display()
                );
                ExitCode::SUCCESS
            }
            Err(err) => fail(&err),
        },
    }
}

/// Writes `payload` to `path` via a temp file in the same directory plus
/// an atomic rename, so a crash mid-write never leaves a truncated or
/// half-written artifact behind.
fn write_atomically(path: &Path, payload: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, payload)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Artifact writer under the fault model: every write is atomic
/// (temp + rename), and with `--chaos` armed the site
/// `artifact.write.{name}` may raise injected I/O errors that retry with
/// bounded backoff like every other fault site.
struct ArtifactWriter {
    faults: Option<testbed::FaultPlan>,
    policy: testbed::FaultPolicy,
    injected: Cell<u64>,
    retried: Cell<u64>,
}

impl ArtifactWriter {
    fn new(faults: Option<testbed::FaultPlan>, policy: testbed::FaultPolicy) -> Self {
        Self {
            faults,
            policy,
            injected: Cell::new(0),
            retried: Cell::new(0),
        }
    }

    fn write(&self, dir: &Path, name: &str, payload: &str) -> Result<(), ExitCode> {
        let path = dir.join(name);
        let site = format!("artifact.write.{name}");
        let mut attempt = 0u32;
        loop {
            let result = if self.faults.is_some_and(|p| p.io_error(&site, attempt)) {
                self.injected.set(self.injected.get() + 1);
                Err(std::io::Error::other("injected I/O fault (chaos)"))
            } else {
                write_atomically(&path, payload)
            };
            match result {
                Ok(()) => {
                    eprintln!("wrote {}", path.display());
                    return Ok(());
                }
                Err(_) if attempt < self.policy.max_retries => {
                    self.retried.set(self.retried.get() + 1);
                    std::thread::sleep(self.policy.backoff_for(attempt));
                    attempt += 1;
                }
                Err(err) => {
                    eprintln!("cannot write {}: {err}", path.display());
                    return Err(ExitCode::FAILURE);
                }
            }
        }
    }
}

fn timing_table(manifest: &telemetry::RunManifest) -> Table {
    let mut table = Table::new(
        "timing",
        "per-experiment wall time",
        &["experiment", "wall s", "artifacts"],
    );
    for t in &manifest.experiments {
        table.push_row(vec![
            t.id.clone(),
            format!("{:.3}", t.wall_secs),
            t.artifacts.to_string(),
        ]);
    }
    table.push_row(vec![
        "TOTAL".to_string(),
        format!("{:.3}", manifest.total_wall_secs),
        manifest.artifact_count.to_string(),
    ]);
    table
}

fn metrics_table(snapshot: &telemetry::metrics::MetricsSnapshot) -> Table {
    let mut table = Table::new(
        "metrics",
        "metrics summary (counters, gauges, histograms)",
        &["metric", "kind", "count", "value / p50", "p95", "max"],
    );
    let opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.6}"));
    for c in &snapshot.counters {
        table.push_row(vec![
            c.name.clone(),
            "counter".to_string(),
            "-".to_string(),
            c.value.to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    for g in &snapshot.gauges {
        table.push_row(vec![
            g.name.clone(),
            "gauge".to_string(),
            "-".to_string(),
            format!("{}", g.value),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    for h in &snapshot.histograms {
        table.push_row(vec![
            h.name.clone(),
            "histogram".to_string(),
            h.count.to_string(),
            opt(h.p50),
            opt(h.p95),
            opt(h.max),
        ]);
    }
    table
}

fn span_table(report: &[telemetry::SpanStats]) -> Table {
    let mut table = Table::new(
        "spans",
        "span latency summary (median + non-parametric 95% CI + CoV)",
        &["span", "count", "total s", "median s", "95% CI s", "CoV"],
    );
    for s in report {
        table.push_row(vec![
            s.name.clone(),
            s.count.to_string(),
            format!("{:.3}", s.total_secs),
            format!("{:.6}", s.latency.median_secs),
            s.latency
                .ci_secs
                .map_or_else(|| "-".to_string(), |(lo, hi)| format!("[{lo:.6}, {hi:.6}]")),
            s.latency
                .cov
                .map_or_else(|| "-".to_string(), |cov| format!("{cov:.3}")),
        ]);
    }
    table
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Parsed::Run(a)) => a,
        Ok(Parsed::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let cache_dir = args
        .cache_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("artifacts/.cache"));
    if let Some(cmd) = &args.cache_cmd {
        let cache = analysis::ArtifactCache::new(&cache_dir);
        return match cmd.as_str() {
            "stats" => match cache.stats() {
                Ok(stats) => {
                    println!(
                        "cache {}: {} entries, {} bytes",
                        cache.dir().display(),
                        stats.entries,
                        stats.bytes
                    );
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("cannot read cache {}: {err}", cache.dir().display());
                    ExitCode::FAILURE
                }
            },
            _ => match cache.clear() {
                Ok(removed) => {
                    println!("cache {}: removed {removed} entries", cache.dir().display());
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("cannot clear cache {}: {err}", cache.dir().display());
                    ExitCode::FAILURE
                }
            },
        };
    }
    if let Some(cmd) = &args.sentinel_cmd {
        return run_sentinel(cmd, &args);
    }
    if let Some(dir) = &args.fsck {
        return collect::run_fsck(dir);
    }
    if args.collect_worker {
        return collect::run_collect_worker(&args);
    }
    if args.collect {
        return collect::run_collect(&args);
    }
    if args.serve {
        // The daemon's telemetry (request counters, latency histograms,
        // cache hit/miss tallies) is what /metrics serves; it is always
        // on for the lifetime of the process.
        telemetry::set_enabled(true);
        let faults = args.chaos.map(testbed::FaultPlan::new);
        if let Some(plan) = &faults {
            eprintln!("chaos armed (seed {})", plan.seed());
        }
        let service = Arc::new(serve::ArtifactService::new(serve::ServeOptions {
            jobs: args.jobs,
            faults,
            ..serve::ServeOptions::new(cache_dir.clone())
        }));
        let defaults = serve::ServerConfig::default();
        let config = serve::ServerConfig {
            workers: args.workers,
            queue_cap: args.queue_cap.unwrap_or(defaults.queue_cap),
            read_timeout: defaults.read_timeout,
        };
        let server = match serve::Server::bind_with(args.addr.as_str(), service, config) {
            Ok(server) => server,
            Err(err) => {
                eprintln!("cannot bind {}: {err}", args.addr);
                return ExitCode::FAILURE;
            }
        };
        // Install before accepting so no delivery window is unguarded;
        // the main thread parks on the flag instead of in `wait()`.
        signals::install_shutdown_handler();
        println!("serving on http://{}", server.addr());
        // Harnesses parse the line above to learn the ephemeral port;
        // stdout is block-buffered when piped, so push it out now.
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        while !signals::shutdown_requested() {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        // Graceful drain: stop accepting, let in-flight requests
        // complete, then flush the run's telemetry to stderr — the same
        // counters /metrics was serving — and exit cleanly.
        eprintln!("shutdown: signal received, draining in-flight requests");
        server.shutdown();
        let snapshot = telemetry::metrics::snapshot();
        eprintln!("{}", metrics_table(&snapshot).render());
        eprintln!("shutdown: drained, exiting");
        return ExitCode::SUCCESS;
    }
    if args.list {
        println!("{:<4}  {:<6}  {:<6}  title", "id", "kind", "cost");
        for e in all() {
            println!(
                "{:<4}  {:<6}  {:<6}  {}",
                e.id(),
                e.kind().label(),
                e.cost().label(),
                e.title()
            );
        }
        return ExitCode::SUCCESS;
    }
    if args.ids.is_empty() {
        eprintln!("nothing to do; try `repro list` or `repro all`");
        return ExitCode::FAILURE;
    }
    // Resolve ids before paying for the campaign.
    let fail_ids = injected_failures();
    let slowdown = injected_slowdown();
    let mut wrapped = Vec::new();
    for id in &args.ids {
        match find(id) {
            Some(e) => wrapped.push(Wrapped {
                inner: e,
                fail: fail_ids.contains(&e.id().to_ascii_uppercase()),
                slowdown,
            }),
            None => {
                eprintln!("unknown experiment id `{id}` (see `repro list`)");
                return ExitCode::FAILURE;
            }
        }
    }
    let experiments: Vec<&dyn Experiment> = wrapped.iter().map(|w| w as &dyn Experiment).collect();
    let self_measuring = args.trace || args.metrics;
    if self_measuring {
        telemetry::set_enabled(true);
    }
    let mut manifest = telemetry::RunManifest::new(
        "repro",
        env!("CARGO_PKG_VERSION"),
        args.seed,
        args.scale.label(),
    );
    // The workspace shares one version across crates.
    for name in [
        "varstats",
        "confirm",
        "testbed",
        "workloads",
        "dataset",
        "analysis",
        "telemetry",
    ] {
        manifest.push_crate(name, env!("CARGO_PKG_VERSION"));
    }

    let faults = args.chaos.map(testbed::FaultPlan::new);
    let policy = testbed::FaultPolicy::default();
    if let Some(plan) = &faults {
        eprintln!("chaos armed (seed {})", plan.seed());
    }
    // Streaming needs a journal to stream from; without --resume it
    // lives in a scratch directory for the duration of the run (removed
    // on every exit path by the guard's Drop).
    let stream_scratch = (args.stream && args.resume.is_none()).then(|| {
        std::env::temp_dir().join(format!("repro-stream-{}-{}", args.seed, std::process::id()))
    });
    let _scratch_guard = ScratchDir(stream_scratch.clone());
    let journal_dir = args.resume.clone().or(stream_scratch);
    let journal = match &journal_dir {
        Some(dir) => match dataset::ShardJournal::open(dir, &args.scale.campaign(args.seed)) {
            Ok(j) => Some(j),
            Err(err) => {
                eprintln!("cannot open journal {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let run_started = Instant::now();
    eprintln!(
        "building campaign context (scale {:?}, seed {}) ...",
        args.scale, args.seed
    );
    let collect_options = dataset::CollectOptions {
        jobs: args.jobs,
        journal: journal.as_ref(),
        faults,
        policy,
    };
    let built = if args.stream {
        Context::build_streaming(args.scale, args.seed, &collect_options)
    } else {
        Context::build(args.scale, args.seed, &collect_options)
    };
    let (ctx, campaign_report) = match built {
        Ok(built) => built,
        Err(err) => {
            eprintln!("campaign collection failed: {err}");
            if let (dataset::CampaignError::WorkerKilled { .. }, Some(dir)) = (&err, &args.resume) {
                eprintln!(
                    "completed shards are journaled; rerun with --resume {} to continue",
                    dir.display()
                );
            }
            return ExitCode::FAILURE;
        }
    };
    let ctx = Arc::new(ctx);
    if journal.is_some() {
        eprintln!(
            "journal: {} shards replayed, {} machines collected",
            campaign_report.replayed, campaign_report.collected
        );
    }
    if args.stream {
        eprintln!("streaming: experiments replay the journal one shard at a time");
    }
    manifest.records = ctx.records_len() as u64;
    manifest.machines = ctx.cluster.machines().len() as u64;
    eprintln!(
        "campaign: {} machines, {} records ({:.2}s)",
        manifest.machines,
        manifest.records,
        run_started.elapsed().as_secs_f64()
    );
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    // The engine merges results back in input order; progress lines go to
    // stderr in completion order and are not under the determinism
    // contract.
    let cache = (!args.no_cache).then(|| analysis::ArtifactCache::new(&cache_dir));
    let total = experiments.len();
    let done = AtomicUsize::new(0);
    let engine_options = analysis::EngineOptions {
        jobs: args.jobs,
        cache: cache.as_ref(),
        faults,
        policy,
    };
    let (report, fault_stats) =
        analysis::run_experiments_opts(&ctx, &experiments, &engine_options, &|run| {
            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
            let status = if run.outcome.is_ok() { "ok" } else { "FAILED" };
            let cached = if run.cached { " (cached)" } else { "" };
            eprintln!(
                "[{finished}/{total}] {} {status}{cached} ({:.2}s)",
                run.id, run.wall_secs
            );
        });
    let cache_section = telemetry::CacheSection {
        enabled: cache.is_some(),
        hits: cache.as_ref().map_or(0, |c| c.hits()),
        invalidated: cache.as_ref().map_or(0, |c| c.invalidated()),
        misses: cache.as_ref().map_or(0, |c| c.misses()),
        stored: cache.as_ref().map_or(0, |c| c.stored()),
    };
    manifest.cache = Some(cache_section);
    eprintln!("{}", cache_section.summary());

    let writer = ArtifactWriter::new(faults, policy);
    let mut failures: Vec<(&str, &ExperimentError)> = Vec::new();
    for run in &report {
        manifest.push_experiment(&run.id, run.wall_secs, run.artifact_count());
        let artifacts = match &run.outcome {
            Ok(artifacts) => artifacts,
            Err(err) => {
                failures.push((&run.id, err));
                continue;
            }
        };
        for artifact in artifacts {
            println!("{}", artifact.render());
            if let Some(dir) = &args.out {
                let (name, payload) = if args.json {
                    (
                        format!("{}.json", artifact.id()),
                        serde_json::to_string_pretty(artifact).expect("artifacts always serialize"),
                    )
                } else {
                    (format!("{}.csv", artifact.id()), artifact.to_csv())
                };
                if let Err(code) = writer.write(dir, &name, &payload) {
                    return code;
                }
            }
        }
    }
    manifest.total_wall_secs = run_started.elapsed().as_secs_f64();

    if self_measuring {
        telemetry::set_enabled(false);
        println!("{}", timing_table(&manifest).render());
    }
    if args.trace {
        let trace = telemetry::trace::drain();
        println!(
            "{}",
            span_table(&telemetry::span_report(&trace, 0.95)).render()
        );
        if let Some(dir) = &args.out {
            let payload = serde_json::to_string_pretty(&trace).expect("traces always serialize");
            if let Err(code) = writer.write(dir, "trace.json", &payload) {
                return code;
            }
            if args.trace_chrome {
                let chrome = telemetry::chrome::to_chrome_trace(&trace);
                let payload =
                    serde_json::to_string_pretty(&chrome).expect("chrome traces always serialize");
                if let Err(code) = writer.write(dir, "trace.chrome.json", &payload) {
                    return code;
                }
            }
        }
    }
    if args.metrics {
        let snapshot = telemetry::metrics::snapshot();
        println!("{}", metrics_table(&snapshot).render());
        if let Some(dir) = &args.out {
            let payload =
                serde_json::to_string_pretty(&snapshot).expect("snapshots always serialize");
            if let Err(code) = writer.write(dir, "metrics.json", &payload) {
                return code;
            }
        }
    }
    // Fault accounting spans every layer that can inject: campaign
    // collection, the engine, and artifact writes. The manifest write
    // below is the one site whose retries land after the section is
    // sealed; its faults still retry, they are just not counted.
    let fault_section = telemetry::FaultSection {
        enabled: faults.is_some(),
        injected: campaign_report.injected + fault_stats.injected + writer.injected.get(),
        quarantined: fault_stats.quarantined,
        retried: campaign_report.retried + fault_stats.retried + writer.retried.get(),
    };
    manifest.faults = Some(fault_section);
    eprintln!("{}", fault_section.summary());
    // The streaming gauges are filled in by the shard reads the
    // experiments just performed; the manifest records the observed
    // memory bound (peak live samples ~= the largest shard, not the
    // fleet).
    if let Some(stats) = ctx.stream_stats() {
        let stream_section = telemetry::StreamSection {
            enabled: true,
            peak_live_samples: stats.peak_live_samples(),
            peak_shards_resident: stats.peak_shards_resident(),
            shards_streamed: stats.shards_streamed(),
        };
        manifest.stream = Some(stream_section);
        eprintln!("{}", stream_section.summary());
    }
    if let Some(dir) = &args.out {
        let payload = manifest.to_json().expect("manifests always serialize");
        if let Err(code) = writer.write(dir, "manifest.json", &payload) {
            return code;
        }
    }
    if !failures.is_empty() {
        for (id, err) in &failures {
            eprintln!("experiment {id} failed: {err}");
        }
        eprintln!(
            "{} of {total} experiments failed; artifacts for the rest were produced",
            failures.len()
        );
        return ExitCode::FAILURE;
    }
    // Only fully successful runs join the baseline: a run with failed
    // experiments has misleading wall times.
    if !args.no_sentinel {
        sentinel_record_run(&args, &manifest);
    }
    ExitCode::SUCCESS
}
