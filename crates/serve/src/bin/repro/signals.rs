//! Minimal POSIX signal hookup for graceful shutdown, with no libc
//! dependency: the handler is installed through the C `signal(2)` entry
//! point directly and does nothing but raise an `AtomicBool` — the only
//! kind of work that is async-signal-safe. The serve loop polls the
//! flag and performs the actual drain on the main thread.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

unsafe extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Routes SIGTERM and SIGINT to the shutdown flag. Install before the
/// server starts accepting so no delivery window is unguarded.
pub fn install_shutdown_handler() {
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Whether a shutdown signal has arrived since the handler was
/// installed.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}
