//! The `collect`, hidden `collect-worker`, and `journal fsck`
//! subcommands: campaign collection as a standalone product (a shard
//! journal on disk), single-process or fault-tolerant multi-process.
//!
//! `repro collect --journal DIR` collects the campaign into DIR with
//! the in-process sharded collector. `--distributed N` runs the same
//! campaign as a supervisor plus N worker *subprocesses* coordinating
//! through a lease-file exchange directory (DESIGN.md §12): workers
//! claim work units, heartbeat while collecting, and die freely — the
//! supervisor reaps them, reclaims their leases, reassigns the units,
//! and merges the per-worker journals into DIR. The merged journal is
//! byte-identical to the single-process one for any worker count and
//! any kill schedule.
//!
//! `repro journal fsck DIR` verifies a journal (or a whole exchange)
//! against its pinned fingerprint and exits 0 (clean), 1 (findings),
//! or 2 (not a journal / unreadable) — the CI hook for journal
//! integrity.

use std::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use crate::Args;

/// Default work-unit multiplier: enough units per worker that
/// reassignment after a death moves a small slice of the fleet, not a
/// worker-sized chunk.
const UNITS_PER_WORKER: usize = 4;

fn campaign_setup(args: &Args) -> (dataset::CampaignConfig, testbed::Cluster) {
    let config = args.scale.campaign(args.seed);
    let cluster = analysis::Context::provision(&config);
    (config, cluster)
}

fn stale_after(args: &Args) -> Duration {
    Duration::from_millis(args.stale_ms.unwrap_or(1000).max(1))
}

/// `repro journal fsck DIR`: exit 0 clean, 1 findings, 2 unreadable.
pub fn run_fsck(dir: &Path) -> ExitCode {
    match dataset::fsck(dir) {
        Ok(report) => {
            println!("fsck {}: {report}", dir.display());
            for finding in &report.corrupt {
                println!("corrupt: {finding}");
            }
            for finding in &report.orphans {
                println!("orphan: {finding}");
            }
            for finding in &report.duplicates {
                println!("duplicate: {finding}");
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("fsck {}: {err}", dir.display());
            ExitCode::from(2)
        }
    }
}

/// The hidden worker entry point `repro collect --distributed N` spawns:
/// drains the exchange, then exits 0. A chaos process fault exits 9
/// without cleanup — to the supervisor, indistinguishable from SIGKILL.
pub fn run_collect_worker(args: &Args) -> ExitCode {
    let Some(root) = &args.exchange else {
        eprintln!("collect-worker needs --exchange DIR");
        return ExitCode::FAILURE;
    };
    let Some(worker) = args.worker else {
        eprintln!("collect-worker needs --worker INDEX");
        return ExitCode::FAILURE;
    };
    let (config, cluster) = campaign_setup(args);
    let options = dataset::WorkerOptions {
        faults: args.chaos.map(testbed::FaultPlan::new),
        stale_after: stale_after(args),
        ..dataset::WorkerOptions::default()
    };
    match dataset::run_worker(root, &cluster, &config, worker, &options) {
        // A fired kill/torn-handoff site: die like a crash, nonzero and
        // without unwinding, so the supervisor observes a real death.
        Ok(outcome) if outcome.killed => std::process::exit(9),
        Ok(_) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("collect-worker {worker}: {err}");
            ExitCode::FAILURE
        }
    }
}

/// `repro collect`: the campaign into a journal, single-process by
/// default, supervised multi-process with `--distributed N`.
pub fn run_collect(args: &Args) -> ExitCode {
    let Some(journal_dir) = &args.journal else {
        eprintln!("collect needs --journal DIR (the output shard journal)");
        return ExitCode::FAILURE;
    };
    let started = Instant::now();
    let (config, cluster) = campaign_setup(args);
    let machines = dataset::selected_machine_ids(&cluster, &config);
    let faults = args.chaos.map(testbed::FaultPlan::new);
    if let Some(plan) = &faults {
        eprintln!("chaos armed (seed {})", plan.seed());
    }
    let journal = match dataset::ShardJournal::open(journal_dir, &config) {
        Ok(j) => j,
        Err(err) => {
            eprintln!("cannot open journal {}: {err}", journal_dir.display());
            return ExitCode::FAILURE;
        }
    };
    let distributed = match args.distributed {
        Some(workers) => match collect_distributed(args, &config, &machines, &journal, workers) {
            Ok(section) => Some(section),
            Err(code) => return code,
        },
        None => {
            let options = dataset::CollectOptions {
                jobs: args.jobs,
                journal: Some(&journal),
                faults,
                policy: testbed::FaultPolicy::default(),
            };
            match dataset::collect_to_journal(&cluster, &config, &options) {
                Ok(report) => {
                    eprintln!(
                        "journal: {} shards replayed, {} machines collected",
                        report.replayed, report.collected
                    );
                    None
                }
                Err(err) => {
                    eprintln!("campaign collection failed: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let records: usize = machines
        .iter()
        .filter_map(|&m| journal.record_count(m))
        .sum();
    println!(
        "collect: {} machines, {records} records -> {}",
        machines.len(),
        journal_dir.display()
    );
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::create_dir_all(out) {
            eprintln!("cannot create {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        let mut manifest = telemetry::RunManifest::new(
            "repro-collect",
            env!("CARGO_PKG_VERSION"),
            args.seed,
            args.scale.label(),
        );
        manifest.machines = machines.len() as u64;
        manifest.records = records as u64;
        manifest.distributed = distributed;
        manifest.total_wall_secs = started.elapsed().as_secs_f64();
        let payload = manifest.to_json().expect("manifests always serialize");
        let path = out.join("manifest.json");
        if let Err(err) = crate::write_atomically(&path, &payload) {
            eprintln!("cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// A worker subprocess under the supervisor's non-blocking reap.
struct ChildWorker {
    worker: usize,
    child: std::process::Child,
}

impl dataset::WorkerHandle for ChildWorker {
    fn worker(&self) -> usize {
        self.worker
    }
    fn try_finish(&mut self) -> io::Result<Option<dataset::WorkerExit>> {
        Ok(self.child.try_wait()?.map(|status| {
            if status.success() {
                dataset::WorkerExit::Clean
            } else {
                dataset::WorkerExit::Died
            }
        }))
    }
}

/// The supervisor half of `--distributed N`: partition, spawn, reap,
/// reassign, merge. Returns the manifest section on convergence.
fn collect_distributed(
    args: &Args,
    config: &dataset::CampaignConfig,
    machines: &[testbed::MachineId],
    canonical: &dataset::ShardJournal,
    workers: usize,
) -> Result<telemetry::DistributedSection, ExitCode> {
    let fail = |msg: String| {
        eprintln!("{msg}");
        ExitCode::FAILURE
    };
    let root = args.exchange.clone().unwrap_or_else(|| {
        PathBuf::from(format!(
            "{}.exchange",
            args.journal
                .as_deref()
                .map_or_else(|| "collect".to_string(), |d| d.display().to_string(),)
        ))
    });
    let unit_count = args
        .units
        .unwrap_or_else(|| (workers * UNITS_PER_WORKER).clamp(1, machines.len().max(1)));
    let units = dataset::partition_units(machines, unit_count);
    let exchange = dataset::ExchangeDir::create(&root, config, units)
        .map_err(|err| fail(format!("cannot create exchange {}: {err}", root.display())))?;
    let stale = stale_after(args);
    let mut supervisor = dataset::SupervisorConfig::new(workers);
    supervisor.stale_after = stale;
    let exe = std::env::current_exe()
        .map_err(|err| fail(format!("cannot locate the worker binary: {err}")))?;
    eprintln!(
        "distributed: {workers} workers over {} units ({} machines), exchange {}",
        exchange.units().len(),
        machines.len(),
        root.display()
    );
    let mut spawn = |worker: usize| -> io::Result<Box<dyn dataset::WorkerHandle>> {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("collect-worker")
            .arg("--exchange")
            .arg(&root)
            .arg("--worker")
            .arg(worker.to_string())
            .arg("--scale")
            .arg(args.scale.label())
            .arg("--seed")
            .arg(args.seed.to_string())
            .arg("--stale-ms")
            .arg(stale.as_millis().to_string())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        if let Some(chaos) = args.chaos {
            cmd.arg("--chaos").arg(chaos.to_string());
        }
        let child = cmd.spawn()?;
        Ok(Box::new(ChildWorker { worker, child }))
    };
    let report = dataset::supervise(&exchange, &mut spawn, &supervisor)
        .map_err(|err| fail(format!("distributed collection failed: {err}")))?;
    let merge = dataset::merge_exchange(&exchange, canonical)
        .map_err(|err| fail(format!("journal merge failed: {err}")))?;
    // One greppable line per run: the supervisor counters, in the same
    // order and names the telemetry layer uses.
    println!(
        "collect.worker.spawned={} collect.worker.died={} \
         collect.worker.reassigned={} collect.worker.quarantined={}",
        report.spawned, report.died, report.reassigned, report.quarantined
    );
    println!(
        "merge: {} machines merged, {} duplicate shards, {} missing",
        merge.merged,
        merge.duplicates,
        merge.missing.len()
    );
    if report.quarantined > 0 || !merge.missing.is_empty() {
        for machine in &merge.missing {
            eprintln!("missing: m{} has no valid shard in the exchange", machine.0);
        }
        return Err(fail(format!(
            "distributed collection did not converge: {} units quarantined, {} machines missing \
             (exchange kept at {})",
            report.quarantined,
            merge.missing.len(),
            root.display()
        )));
    }
    if args.keep_exchange {
        eprintln!("exchange kept at {}", root.display());
    } else {
        let _ = std::fs::remove_dir_all(&root);
    }
    Ok(telemetry::DistributedSection {
        enabled: true,
        died: report.died,
        duplicates: merge.duplicates,
        quarantined: report.quarantined,
        reassigned: report.reassigned,
        spawned: report.spawned,
        units: report.units,
        workers: workers as u64,
    })
}
