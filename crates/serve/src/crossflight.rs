//! Cross-process single-flight over a shared cache directory.
//!
//! [`crate::singleflight`] collapses concurrent cold requests *within*
//! one daemon; in shared-nothing multi-process mode (several daemons,
//! one cache directory) each process would still compute the same cold
//! key once. This module extends the leader/waiter discipline across
//! process boundaries with nothing but the filesystem the processes
//! already share:
//!
//! - A leader claims a key by atomically creating
//!   `<cache>/.flights/<fingerprint>.flight` (`O_CREAT|O_EXCL`); the
//!   [`Lease`] removes the file on drop, panic- and error-path safe.
//! - A process that fails the claim knows a sibling is computing and
//!   polls the cache for the entry to land instead of computing.
//! - The coordination is **advisory and degrades gracefully**: if the
//!   lease looks stale (older than [`FlightTable::stale_after`] — a
//!   crashed or SIGKILLed leader never removed it) it is broken and
//!   re-claimed, and a follower whose wait ends without an entry
//!   computes the key itself. Duplicated work is the worst case; wrong
//!   bytes are impossible, because the cache's temp+rename store
//!   discipline means an entry is either absent or complete.
//! - A *live* leader is never mistaken for a dead one: the [`Lease`]
//!   runs a heartbeat thread that refreshes the file's mtime every
//!   quarter of the staleness horizon, so a cold compute that takes
//!   longer than `stale_after` keeps its claim instead of having a
//!   sibling break the lease mid-compute and duplicate the work.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime};

/// How long a follower sleeps between cache polls while a sibling
/// process computes.
pub const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// The claim table: a directory of lease files next to the cache.
#[derive(Debug)]
pub struct FlightTable {
    dir: PathBuf,
    stale_after: Duration,
}

/// Outcome of a claim attempt.
#[derive(Debug)]
pub enum Claim {
    /// This process leads the flight; compute, store, then drop the
    /// lease.
    Lead(Lease),
    /// Another process holds a fresh lease; poll the cache.
    Follow,
}

/// A held lease; dropping it releases the claim file.
///
/// While held, a background heartbeat refreshes the lease file's mtime
/// every `stale_after / 4`, so a leader whose cold compute outlasts the
/// staleness horizon is not declared dead and robbed of its claim — the
/// same lease/heartbeat discipline distributed collection uses for its
/// work units.
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
    stop: Option<Arc<(Mutex<bool>, Condvar)>>,
    beat: Option<std::thread::JoinHandle<()>>,
}

impl Lease {
    /// A lease over a real claim file, heartbeating until dropped.
    fn held(path: PathBuf, stale_after: Duration) -> Self {
        let period = (stale_after / 4).max(Duration::from_millis(5));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_path = path.clone();
        let beat = std::thread::Builder::new()
            .name("crossflight-heartbeat".to_string())
            .spawn(move || {
                let (flag, wake) = &*thread_stop;
                let mut stopped = flag.lock().unwrap_or_else(|e| e.into_inner());
                while !*stopped {
                    let (guard, timeout) = wake
                        .wait_timeout(stopped, period)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if !*stopped && timeout.timed_out() {
                        // Best effort: a vanished file (the lease was
                        // broken externally) is not resurrected.
                        let _ = std::fs::OpenOptions::new()
                            .append(true)
                            .open(&thread_path)
                            .and_then(|f| f.set_modified(SystemTime::now()));
                    }
                }
            })
            .ok();
        Lease {
            path,
            stop: Some(stop),
            beat,
        }
    }

    /// The leaseless degraded form: no file, no heartbeat (an unwritable
    /// flights directory must never stop the daemon from serving).
    fn unguarded() -> Self {
        Lease {
            path: PathBuf::new(),
            stop: None,
            beat: None,
        }
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if let Some(stop) = &self.stop {
            let (flag, wake) = &**stop;
            *flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
            wake.notify_all();
        }
        if let Some(beat) = self.beat.take() {
            let _ = beat.join();
        }
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl FlightTable {
    /// A table under `cache_dir/.flights` whose leases go stale after
    /// `stale_after`.
    pub fn new(cache_dir: &Path, stale_after: Duration) -> Self {
        FlightTable {
            dir: cache_dir.join(".flights"),
            stale_after,
        }
    }

    /// The staleness horizon leases are broken past.
    pub fn stale_after(&self) -> Duration {
        self.stale_after
    }

    fn lease_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.flight"))
    }

    /// Attempts to claim the flight for `fingerprint`. Errors are
    /// treated as a lead with no lease file — coordination is advisory,
    /// and an unwritable flights directory must never stop the daemon
    /// from serving.
    pub fn claim(&self, fingerprint: u64) -> Claim {
        let path = self.lease_path(fingerprint);
        let _ = std::fs::create_dir_all(&self.dir);
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(_) => Claim::Lead(Lease::held(path, self.stale_after)),
            Err(err) if err.kind() == std::io::ErrorKind::AlreadyExists => {
                if self.is_stale(&path) {
                    // The previous leader died without releasing; break
                    // the lease and race to re-claim it. Losing the race
                    // means someone else broke it first — follow them.
                    let _ = std::fs::remove_file(&path);
                    match std::fs::OpenOptions::new()
                        .write(true)
                        .create_new(true)
                        .open(&path)
                    {
                        Ok(_) => Claim::Lead(Lease::held(path, self.stale_after)),
                        Err(_) => Claim::Follow,
                    }
                } else {
                    Claim::Follow
                }
            }
            // Flights dir unwritable (permissions, disk): degrade to
            // uncoordinated computation rather than failing the request.
            Err(_) => Claim::Lead(Lease::unguarded()),
        }
    }

    /// Whether a sibling's lease for `fingerprint` is still held (and
    /// fresh). Followers poll this alongside the cache: the lease
    /// vanishing without an entry means the leader failed.
    pub fn held(&self, fingerprint: u64) -> bool {
        let path = self.lease_path(fingerprint);
        path.exists() && !self.is_stale(&path)
    }

    fn is_stale(&self, path: &Path) -> bool {
        match std::fs::metadata(path).and_then(|m| m.modified()) {
            Ok(modified) => SystemTime::now()
                .duration_since(modified)
                .is_ok_and(|age| age > self.stale_after),
            // Racing removal (the leader just released): not stale,
            // the next `held` check resolves it.
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(tag: &str, stale_after: Duration) -> (FlightTable, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "crossflight-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (FlightTable::new(&dir, stale_after), dir)
    }

    #[test]
    fn second_claim_follows_and_release_reopens() {
        let (table, dir) = table("claim", Duration::from_secs(60));
        let lease = match table.claim(0xF00D) {
            Claim::Lead(lease) => lease,
            Claim::Follow => panic!("first claim must lead"),
        };
        assert!(matches!(table.claim(0xF00D), Claim::Follow));
        assert!(table.held(0xF00D));
        // A different key flies independently.
        assert!(matches!(table.claim(0xBEEF), Claim::Lead(_)));
        drop(lease);
        assert!(!table.held(0xF00D), "release removes the lease file");
        assert!(matches!(table.claim(0xF00D), Claim::Lead(_)));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stale_leases_are_broken_and_reclaimed() {
        let (table, dir) = table("stale", Duration::from_millis(50));
        // Simulate a SIGKILLed leader: the lease file outlives the
        // process, and — crucially — nothing heartbeats it. (A live
        // Lease would keep refreshing the mtime, so plant the orphan
        // file directly, exactly as a dead process leaves it.)
        std::fs::create_dir_all(dir.join(".flights")).unwrap();
        std::fs::write(
            dir.join(".flights")
                .join(format!("{:016x}.flight", 0xDEADu64)),
            b"",
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert!(!table.held(0xDEAD), "an expired lease is not held");
        assert!(
            matches!(table.claim(0xDEAD), Claim::Lead(_)),
            "a stale lease is broken, not followed forever"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn live_leaders_heartbeat_past_the_staleness_horizon() {
        // Regression: a leader mid-cold-compute used to never refresh
        // its lease mtime, so after `stale_after` a sibling would break
        // the lease and duplicate the work. The heartbeat must keep a
        // held lease fresh indefinitely.
        let (table, dir) = table("heartbeat", Duration::from_millis(100));
        let lease = match table.claim(0xFEED) {
            Claim::Lead(lease) => lease,
            Claim::Follow => panic!("first claim must lead"),
        };
        // Wait several staleness horizons — a long cold compute.
        std::thread::sleep(Duration::from_millis(350));
        assert!(table.held(0xFEED), "a live leader must not look stale");
        assert!(
            matches!(table.claim(0xFEED), Claim::Follow),
            "a live lease must not be stolen mid-compute"
        );
        drop(lease);
        assert!(!table.held(0xFEED), "release removes the lease file");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn unwritable_table_degrades_to_leading() {
        // A path that cannot be a directory: a file stands where the
        // flights dir should go.
        let root = std::env::temp_dir().join(format!(
            "crossflight-degrade-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join(".flights"), b"in the way").unwrap();
        let table = FlightTable::new(&root, Duration::from_secs(60));
        assert!(
            matches!(table.claim(0xCAFE), Claim::Lead(_)),
            "an unusable flights dir must never block serving"
        );
        let _ = std::fs::remove_dir_all(root);
    }
}
