//! The TCP front end: an accept thread feeding a fixed worker pool,
//! keep-alive connections, and cooperative shutdown.
//!
//! Workers are plain threads over a shared [`ArtifactService`]; there is
//! no async runtime (the container builds offline, and a daemon serving
//! a reproducibility cache does not need one). Shutdown flips a flag and
//! nudges the accept loop with a self-connection so tests can stop a
//! server deterministically; the daemon simply never calls it.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{ParseError, Request, Response};
use crate::service::ArtifactService;

/// How long a keep-alive connection may sit idle between requests
/// before the worker drops it.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Connection-handling worker threads.
const WORKERS: usize = 8;

/// A running server: listener address, worker pool, shutdown switch.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `service` in background threads.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<ArtifactService>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..WORKERS)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let service = Arc::clone(&service);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || loop {
                        let stream = {
                            let receiver = receiver.lock().expect("connection queue lock");
                            receiver.recv()
                        };
                        match stream {
                            Ok(stream) => handle_connection(stream, &service),
                            Err(_) => return, // accept loop gone: shutdown
                        }
                    })
                    .expect("spawn serve worker")
            })
            .collect();

        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        if sender.send(stream).is_err() {
                            break;
                        }
                    }
                    // Dropping `sender` here disconnects the channel and
                    // retires the worker pool.
                })
                .expect("spawn serve accept loop")
        };

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server shuts down. The daemon's main thread
    /// parks here; only [`Server::shutdown`] (or process death) returns.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Stops accepting, drains the workers, and joins every thread.
    /// In-flight requests complete; idle keep-alive connections are cut
    /// at their next read timeout.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `incoming()`; a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Dropped without `wait`/`shutdown` (e.g. a panicking test):
        // stop accepting so the threads can retire, but don't block.
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Serves one connection until the client closes, errors, stops asking
/// for keep-alive, or idles past [`READ_TIMEOUT`].
fn handle_connection(stream: TcpStream, service: &ArtifactService) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match Request::read_from(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::Io(_)) => return,
            Err(ParseError::Malformed(why)) => {
                let resp = Response::text(400, format!("malformed request: {why}\n"));
                let _ = resp.write_to(&mut writer, false);
                return;
            }
        };
        let keep_alive = request.keep_alive();
        let response = service.handle(&request);
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeOptions;
    use std::io::{Read, Write};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "serve-server-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        ))
    }

    fn start(tag: &str) -> (Server, std::path::PathBuf) {
        let dir = temp_dir(tag);
        let service = Arc::new(ArtifactService::new(ServeOptions {
            jobs: Some(2),
            ..ServeOptions::new(&dir)
        }));
        let server = Server::bind("127.0.0.1:0", service).expect("bind ephemeral port");
        (server, dir)
    }

    fn fetch(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("receive");
        response
    }

    #[test]
    fn serves_healthz_and_shuts_down() {
        let (server, dir) = start("health");
        let addr = server.addr();
        let response = fetch(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.ends_with("ok\n"), "{response}");
        server.shutdown();
        assert!(
            TcpStream::connect(addr).map_or(true, |mut s| {
                // Accept queue may take the connection, but nothing serves it.
                let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                let mut buf = String::new();
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                s.read_to_string(&mut buf).map_or(true, |_| buf.is_empty())
            }),
            "a shut-down server answers nothing"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Reads one full response (head + `Content-Length` body) so short
    /// TCP reads cannot truncate what the assertions see.
    fn read_response(stream: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 512];
        loop {
            let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n");
            if let Some(end) = head_end {
                let head = String::from_utf8_lossy(&buf[..end]).to_string();
                let length: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .and_then(|v| v.parse().ok())
                    .expect("responses declare Content-Length");
                if buf.len() >= end + 4 + length {
                    return String::from_utf8_lossy(&buf[..end + 4 + length]).to_string();
                }
            }
            let n = stream.read(&mut chunk).expect("receive");
            assert!(n > 0, "connection closed mid-response");
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let (server, dir) = start("keepalive");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        for _ in 0..3 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
                .expect("send");
            let response = read_response(&mut stream);
            assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
            assert!(response.contains("Connection: keep-alive\r\n"));
            assert!(response.ends_with("ok\n"));
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_requests_get_a_400_not_a_hang() {
        let (server, dir) = start("malformed");
        let response = fetch(server.addr(), "NONSENSE\r\n\r\n");
        assert!(
            response.starts_with("HTTP/1.1 400 Bad Request\r\n"),
            "{response}"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }
}
