//! The TCP front end: an accept thread feeding a configurable worker
//! pool over a bounded connection queue, keep-alive connections, load
//! shedding, and cooperative shutdown.
//!
//! Workers are plain threads over a shared [`ArtifactService`]; there is
//! no async runtime (the container builds offline, and a daemon serving
//! a reproducibility cache does not need one). Backpressure is explicit:
//! accepted connections wait in a queue bounded by
//! [`ServerConfig::queue_cap`], and when it is full the accept loop
//! sheds the connection with a fast `503 Retry-After` instead of letting
//! latency grow without bound — the daemon degrades loudly
//! (`serve.shed`), never by hanging. Shutdown flips a flag and nudges
//! the accept loop with a self-connection so tests can stop a server
//! deterministically; the daemon simply never calls it.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{ParseError, Request, Response};
use crate::service::{ArtifactService, Reply};

/// Tuning knobs for [`Server::bind_with`]. `Default` matches the
/// daemon's defaults: one worker per core, a 128-connection queue, and
/// a 30-second read timeout.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handling worker threads; `None` = available cores.
    pub workers: Option<usize>,
    /// Accepted connections allowed to wait for a worker before the
    /// accept loop starts shedding with `503`.
    pub queue_cap: usize,
    /// How long a connection may sit idle (or stall mid-request) before
    /// the worker answers `408`/drops it.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: None,
            queue_cap: 128,
            read_timeout: Duration::from_secs(30),
        }
    }
}

impl ServerConfig {
    /// The effective worker count (resolves `None` to the machine's
    /// available parallelism, and never goes below one thread).
    pub fn worker_count(&self) -> usize {
        self.workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .max(1)
    }
}

/// The bounded hand-off between the accept loop and the workers.
struct ConnQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    cap: usize,
}

struct QueueState {
    pending: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues a connection, or gives it back when the queue is full —
    /// the caller sheds it. Telemetry: `serve.queue.depth` tracks the
    /// live depth, `serve.queue.peak` its high-water mark.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("connection queue lock");
        if state.closed || state.pending.len() >= self.cap {
            return Err(stream);
        }
        state.pending.push_back(stream);
        let depth = state.pending.len() as f64;
        telemetry::metrics::gauge("serve.queue.depth").set(depth);
        telemetry::metrics::gauge("serve.queue.peak").set_max(depth);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` means the queue closed
    /// and drained, so the worker retires.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("connection queue lock");
        loop {
            if let Some(stream) = state.pending.pop_front() {
                telemetry::metrics::gauge("serve.queue.depth").set(state.pending.len() as f64);
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("connection queue lock");
        }
    }

    /// Closes the queue and wakes every waiting worker.
    fn close(&self) {
        let mut state = self.state.lock().expect("connection queue lock");
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }
}

/// A running server: listener address, worker pool, shutdown switch.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` with the default [`ServerConfig`].
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<ArtifactService>) -> std::io::Result<Self> {
        Self::bind_with(addr, service, ServerConfig::default())
    }

    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `service` in background threads under `config`.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<ArtifactService>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let worker_count = config.worker_count();
        telemetry::metrics::gauge("serve.workers").set(worker_count as f64);
        telemetry::metrics::gauge("serve.queue.cap").set(config.queue_cap.max(1) as f64);

        let queue = Arc::new(ConnQueue::new(config.queue_cap));
        let read_timeout = config.read_timeout;
        let workers = (0..worker_count)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let service = Arc::clone(&service);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            handle_connection(stream, &service, read_timeout);
                        }
                    })
                    .expect("spawn serve worker")
            })
            .collect();

        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        if let Err(stream) = queue.push(stream) {
                            shed(stream);
                        }
                    }
                    // Closing the queue retires the worker pool once the
                    // backlog drains.
                    queue.close();
                })
                .expect("spawn serve accept loop")
        };

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server shuts down. The daemon's main thread
    /// parks here; only [`Server::shutdown`] (or process death) returns.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Stops accepting, drains the workers, and joins every thread.
    /// In-flight requests complete; idle keep-alive connections are cut
    /// at their next read timeout.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `incoming()`; a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Dropped without `wait`/`shutdown` (e.g. a panicking test):
        // stop accepting so the threads can retire, but don't block.
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Sheds a connection the queue has no room for: a fast `503` with
/// `Retry-After`, written from the accept thread with a short write
/// timeout so a slow receiver cannot stall accepting. The tiny response
/// fits any socket send buffer, so in practice the write never blocks.
fn shed(stream: TcpStream) {
    telemetry::metrics::counter("serve.shed").inc();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_nodelay(true);
    let mut writer = stream;
    let _ = Response::text(503, "server is at capacity, retry shortly\n")
        .with_header("Retry-After", "1")
        .write_to(&mut writer, false);
}

/// Serves one connection until the client closes, errors, stops asking
/// for keep-alive, or idles past the read timeout.
fn handle_connection(stream: TcpStream, service: &ArtifactService, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match Request::read_from(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::TimedOut) => {
                // A stalled (slow-loris) or idle client: best-effort 408,
                // then free the worker for clients that actually talk.
                telemetry::metrics::counter("serve.timeout").inc();
                let resp = Response::text(408, "request timed out\n");
                let _ = resp.write_to(&mut writer, false);
                return;
            }
            Err(ParseError::Io(_)) => return,
            Err(ParseError::Malformed(why)) => {
                let resp = Response::text(400, format!("malformed request: {why}\n"));
                let _ = resp.write_to(&mut writer, false);
                return;
            }
        };
        let keep_alive = request.keep_alive();
        let written = match service.handle(&request) {
            Reply::Whole(response) => response.write_to(&mut writer, keep_alive),
            Reply::Streamed(streamed) => {
                streamed
                    .head
                    .write_chunked_to(&mut writer, keep_alive, streamed.body)
            }
        };
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeOptions;
    use std::io::{Read, Write};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "serve-server-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        ))
    }

    fn start_with(tag: &str, config: ServerConfig) -> (Server, std::path::PathBuf) {
        let dir = temp_dir(tag);
        let service = Arc::new(ArtifactService::new(ServeOptions {
            jobs: Some(2),
            ..ServeOptions::new(&dir)
        }));
        let server = Server::bind_with("127.0.0.1:0", service, config).expect("bind ephemeral");
        (server, dir)
    }

    fn start(tag: &str) -> (Server, std::path::PathBuf) {
        start_with(
            tag,
            ServerConfig {
                workers: Some(4),
                ..ServerConfig::default()
            },
        )
    }

    fn fetch(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("receive");
        response
    }

    #[test]
    fn serves_healthz_and_shuts_down() {
        let (server, dir) = start("health");
        let addr = server.addr();
        let response = fetch(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.ends_with("ok\n"), "{response}");
        server.shutdown();
        assert!(
            TcpStream::connect(addr).map_or(true, |mut s| {
                // Accept queue may take the connection, but nothing serves it.
                let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                let mut buf = String::new();
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                s.read_to_string(&mut buf).map_or(true, |_| buf.is_empty())
            }),
            "a shut-down server answers nothing"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Reads one full response (head + `Content-Length` body) so short
    /// TCP reads cannot truncate what the assertions see.
    fn read_response(stream: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 512];
        loop {
            let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n");
            if let Some(end) = head_end {
                let head = String::from_utf8_lossy(&buf[..end]).to_string();
                let length: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .and_then(|v| v.parse().ok())
                    .expect("responses declare Content-Length");
                if buf.len() >= end + 4 + length {
                    return String::from_utf8_lossy(&buf[..end + 4 + length]).to_string();
                }
            }
            let n = stream.read(&mut chunk).expect("receive");
            assert!(n > 0, "connection closed mid-response");
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let (server, dir) = start("keepalive");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        for _ in 0..3 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
                .expect("send");
            let response = read_response(&mut stream);
            assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
            assert!(response.contains("Connection: keep-alive\r\n"));
            assert!(response.ends_with("ok\n"));
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_requests_get_a_400_not_a_hang() {
        let (server, dir) = start("malformed");
        let response = fetch(server.addr(), "NONSENSE\r\n\r\n");
        assert!(
            response.starts_with("HTTP/1.1 400 Bad Request\r\n"),
            "{response}"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stalled_clients_time_out_with_408_and_free_the_worker() {
        let (server, dir) = start_with(
            "loris",
            ServerConfig {
                workers: Some(1),
                queue_cap: 8,
                read_timeout: Duration::from_millis(200),
            },
        );
        let addr = server.addr();
        // A slow-loris client: request line, partial headers, then silence.
        let mut loris = TcpStream::connect(addr).expect("connect");
        loris
            .write_all(b"GET /healthz HTTP/1.1\r\nX-Slow:")
            .expect("send partial");
        let mut response = String::new();
        loris.read_to_string(&mut response).expect("receive");
        assert!(
            response.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
            "{response}"
        );
        // With the single worker freed, an honest client is served.
        let healthy = fetch(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(healthy.starts_with("HTTP/1.1 200 OK\r\n"), "{healthy}");
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn full_queue_sheds_with_fast_503_retry_after() {
        // One worker, pinned by a deliberately silent connection; a
        // one-slot queue holds a second connection; everything beyond
        // that must shed immediately instead of waiting.
        let (server, dir) = start_with(
            "shed",
            ServerConfig {
                workers: Some(1),
                queue_cap: 1,
                read_timeout: Duration::from_secs(5),
            },
        );
        let addr = server.addr();
        let pin = TcpStream::connect(addr).expect("pin worker");
        // Give the accept loop time to hand `pin` to the worker, then
        // fill the single queue slot.
        std::thread::sleep(Duration::from_millis(100));
        let queued = TcpStream::connect(addr).expect("fill queue");
        std::thread::sleep(Duration::from_millis(100));
        let mut shed_seen = false;
        for _ in 0..3 {
            let mut extra = TcpStream::connect(addr).expect("overflow connect");
            extra
                .set_read_timeout(Some(Duration::from_secs(2)))
                .expect("timeout");
            let mut response = String::new();
            if extra.read_to_string(&mut response).is_ok()
                && response.starts_with("HTTP/1.1 503 Service Unavailable\r\n")
            {
                assert!(response.contains("Retry-After: 1\r\n"), "{response}");
                assert!(response.contains("Connection: close\r\n"), "{response}");
                shed_seen = true;
                break;
            }
        }
        assert!(shed_seen, "overflow connections must be shed with 503");
        drop(pin);
        drop(queued);
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }
}
