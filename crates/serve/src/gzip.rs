//! Dependency-free gzip (RFC 1952) over DEFLATE (RFC 1951).
//!
//! The serving daemon negotiates `Content-Encoding: gzip` without
//! importing a compression crate: this module hand-rolls a
//! fixed-Huffman DEFLATE encoder with a greedy hash-chain LZ77
//! matcher, wrapped in gzip framing (CRC-32 + ISIZE). The encoder is
//! fully deterministic — no timestamps (gzip MTIME is pinned to 0), no
//! randomized data structures — so compressed response bytes fall
//! under the same byte-identity contract as everything else the daemon
//! serves.
//!
//! [`StreamEncoder`] compresses incrementally: each [`StreamEncoder::push`]
//! emits the complete bytes produced so far (a chunked response body
//! feeds one render per push), and [`StreamEncoder::finish`] seals the
//! stream with an empty final block and the gzip trailer. Chunks are
//! compressed as independent DEFLATE blocks (back-references never
//! cross a push boundary), so memory stays O(chunk).
//!
//! [`decode`] inflates exactly what this encoder can emit — stored and
//! fixed-Huffman blocks — and is what the round-trip proptests and the
//! load harness use to prove that gzipped bodies decode to the
//! identity bytes. It is not a general-purpose inflater (dynamic
//! Huffman blocks are rejected, not mis-parsed).

/// Matches longer than this are not sought (the DEFLATE maximum).
const MAX_MATCH: usize = 258;
/// Matches shorter than this cost more to encode than literals.
const MIN_MATCH: usize = 3;
/// How many hash-chain candidates the matcher will try per position.
const MAX_CHAIN: usize = 64;
/// Hash table size for the 3-byte prefix hash.
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Length code bases for symbols 257..=285 (RFC 1951 §3.2.5).
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits carried by each length code.
const LEN_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Distance code bases for codes 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits carried by each distance code.
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// CRC-32 (IEEE, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let mut c = crc ^ 0xFFFF_FFFF;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// DEFLATE's bit order: value fields little-endian bit-first, Huffman
/// codes most-significant-bit-first (handled by [`BitWriter::huff`]).
struct BitWriter {
    out: Vec<u8>,
    bit_buf: u64,
    bit_count: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            bit_buf: 0,
            bit_count: 0,
        }
    }

    /// Writes `n` bits of `value`, least-significant first.
    fn bits(&mut self, value: u32, n: u32) {
        self.bit_buf |= (value as u64) << self.bit_count;
        self.bit_count += n;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Writes an `n`-bit Huffman code: DEFLATE packs codes starting
    /// with the most significant bit, i.e. bit-reversed relative to
    /// [`BitWriter::bits`].
    fn huff(&mut self, code: u32, n: u32) {
        let mut reversed = 0u32;
        for i in 0..n {
            reversed |= ((code >> i) & 1) << (n - 1 - i);
        }
        self.bits(reversed, n);
    }

    /// Pads the current byte with zero bits.
    fn align(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    /// Takes every completed byte written so far.
    fn drain(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }
}

/// The fixed-Huffman literal/length code for `sym` (RFC 1951 §3.2.6).
fn fixed_litlen_code(sym: u32) -> (u32, u32) {
    match sym {
        0..=143 => (0x30 + sym, 8),
        144..=255 => (0x190 + (sym - 144), 9),
        256..=279 => (sym - 256, 7),
        _ => (0xC0 + (sym - 280), 8),
    }
}

/// Maps a match length (3..=258) to its (symbol, extra-bit count,
/// extra-bit value).
fn length_symbol(len: usize) -> (u32, u32, u32) {
    let mut code = LEN_BASE.len() - 1;
    while LEN_BASE[code] as usize > len {
        code -= 1;
    }
    (
        257 + code as u32,
        LEN_EXTRA[code],
        (len - LEN_BASE[code] as usize) as u32,
    )
}

/// Maps a match distance (1..=32768) to its (code, extra-bit count,
/// extra-bit value).
fn distance_symbol(dist: usize) -> (u32, u32, u32) {
    let mut code = DIST_BASE.len() - 1;
    while DIST_BASE[code] as usize > dist {
        code -= 1;
    }
    (
        code as u32,
        DIST_EXTRA[code],
        (dist - DIST_BASE[code] as usize) as u32,
    )
}

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32) << 10 ^ (data[i + 1] as u32) << 5 ^ data[i + 2] as u32;
    (h as usize) & (HASH_SIZE - 1)
}

/// Emits one non-final fixed-Huffman block compressing `data` with a
/// greedy hash-chain LZ77 pass. Back-references stay inside `data`.
#[allow(clippy::needless_range_loop)] // `j` indexes data, prev, and head alike
fn compress_block(bits: &mut BitWriter, data: &[u8]) {
    bits.bits(0, 1); // BFINAL = 0: the stream is sealed by `finish`
    bits.bits(1, 2); // BTYPE = 01: fixed Huffman
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; data.len()];
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            let mut candidate = head[h];
            let mut chain = 0;
            while candidate != usize::MAX && chain < MAX_CHAIN {
                let dist = i - candidate;
                if dist > 32768 {
                    break;
                }
                let limit = MAX_MATCH.min(data.len() - i);
                let mut len = 0;
                while len < limit && data[candidate + len] == data[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len == limit {
                        break;
                    }
                }
                candidate = prev[candidate];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            let (sym, lextra, lval) = length_symbol(best_len);
            let (code, len) = fixed_litlen_code(sym);
            bits.huff(code, len);
            bits.bits(lval, lextra);
            let (dsym, dextra, dval) = distance_symbol(best_dist);
            bits.huff(dsym, 5);
            bits.bits(dval, dextra);
            // Index every covered position so later matches can refer
            // back into this run.
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            for j in i..end {
                let h = hash3(data, j);
                prev[j] = head[h];
                head[h] = j;
            }
            i += best_len;
        } else {
            let (code, len) = fixed_litlen_code(data[i] as u32);
            bits.huff(code, len);
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    let (code, len) = fixed_litlen_code(256); // end of block
    bits.huff(code, len);
}

/// An incremental gzip encoder: feed chunks with [`StreamEncoder::push`],
/// seal with [`StreamEncoder::finish`]. The concatenation of everything
/// returned is a complete gzip member.
pub struct StreamEncoder {
    bits: BitWriter,
    crc: u32,
    total: u32,
}

impl Default for StreamEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamEncoder {
    /// A fresh encoder; the first drained bytes begin with the gzip
    /// header (MTIME pinned to 0 so output is time-independent).
    pub fn new() -> Self {
        let mut bits = BitWriter::new();
        // magic, CM=deflate, FLG=0, MTIME=0, XFL=0, OS=255 (unknown).
        bits.out
            .extend_from_slice(&[0x1F, 0x8B, 0x08, 0x00, 0, 0, 0, 0, 0x00, 0xFF]);
        StreamEncoder {
            bits,
            crc: 0,
            total: 0,
        }
    }

    /// Compresses `chunk` as an independent DEFLATE block and returns
    /// every output byte completed so far (possibly empty: DEFLATE is
    /// bit-packed, so a block boundary need not be a byte boundary).
    pub fn push(&mut self, chunk: &[u8]) -> Vec<u8> {
        if chunk.is_empty() {
            return Vec::new();
        }
        self.crc = crc32_update(self.crc, chunk);
        self.total = self.total.wrapping_add(chunk.len() as u32);
        compress_block(&mut self.bits, chunk);
        self.bits.drain()
    }

    /// Seals the stream: an empty final block, bit padding, and the
    /// gzip trailer (CRC-32 + ISIZE, little-endian).
    pub fn finish(mut self) -> Vec<u8> {
        self.bits.bits(1, 1); // BFINAL = 1
        self.bits.bits(1, 2); // fixed Huffman
        let (code, len) = fixed_litlen_code(256);
        self.bits.huff(code, len);
        self.bits.align();
        let mut out = self.bits.drain();
        out.extend_from_slice(&self.crc.to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        out
    }
}

/// One-shot convenience: the complete gzip member for `data`.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut encoder = StreamEncoder::new();
    let mut out = encoder.push(data);
    out.extend(encoder.finish());
    out
}

/// Whether an `Accept-Encoding` header value negotiates gzip: a `gzip`
/// (or `*`) entry whose quality is not zero. `None` (no header) is
/// identity.
pub fn negotiates_gzip(accept_encoding: Option<&str>) -> bool {
    let Some(value) = accept_encoding else {
        return false;
    };
    value.split(',').any(|entry| {
        let mut parts = entry.split(';');
        let coding = parts.next().unwrap_or("").trim();
        if !coding.eq_ignore_ascii_case("gzip") && coding != "*" {
            return false;
        }
        // q=0 is an explicit refusal; anything else (or no q) accepts.
        !parts.any(|p| {
            let p = p.trim();
            p.strip_prefix("q=")
                .is_some_and(|q| q.trim().parse::<f64>().is_ok_and(|q| q == 0.0))
        })
    })
}

/// LSB-first bit reader over a byte slice (the inflate side of
/// [`BitWriter`]).
struct BitReader<'a> {
    data: &'a [u8],
    byte: usize,
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            byte: 0,
            bit: 0,
        }
    }

    fn read_bit(&mut self) -> Result<u32, String> {
        let b = *self
            .data
            .get(self.byte)
            .ok_or_else(|| "truncated deflate stream".to_string())?;
        let bit = (b >> self.bit) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.byte += 1;
        }
        Ok(bit as u32)
    }

    /// Reads `n` bits as an LSB-first value (extra bits, stored LEN).
    fn read_bits(&mut self, n: u32) -> Result<u32, String> {
        let mut v = 0;
        for i in 0..n {
            v |= self.read_bit()? << i;
        }
        Ok(v)
    }

    /// Reads an `n`-bit Huffman code MSB-first.
    fn read_code(&mut self, n: u32) -> Result<u32, String> {
        let mut v = 0;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()?;
        }
        Ok(v)
    }

    fn align(&mut self) {
        if self.bit > 0 {
            self.bit = 0;
            self.byte += 1;
        }
    }
}

/// Decodes one fixed-Huffman literal/length symbol (the inverse of
/// [`fixed_litlen_code`]).
fn read_fixed_litlen(reader: &mut BitReader) -> Result<u32, String> {
    let mut code = reader.read_code(7)?;
    if code <= 0x17 {
        return Ok(256 + code);
    }
    code = (code << 1) | reader.read_bit()?;
    if (0x30..=0xBF).contains(&code) {
        return Ok(code - 0x30);
    }
    if (0xC0..=0xC7).contains(&code) {
        return Ok(280 + (code - 0xC0));
    }
    code = (code << 1) | reader.read_bit()?;
    if (0x190..=0x1FF).contains(&code) {
        return Ok(144 + (code - 0x190));
    }
    Err(format!("invalid fixed-Huffman code {code:#x}"))
}

/// Inflates a gzip member produced by this module's encoder: stored and
/// fixed-Huffman blocks, CRC-32 and ISIZE verified. Rejects (rather
/// than mis-parses) anything the encoder cannot emit, e.g. dynamic
/// Huffman blocks or gzip headers with optional fields.
pub fn decode(data: &[u8]) -> Result<Vec<u8>, String> {
    if data.len() < 18 {
        return Err("gzip member too short".to_string());
    }
    if data[0] != 0x1F || data[1] != 0x8B {
        return Err("not a gzip stream (bad magic)".to_string());
    }
    if data[2] != 0x08 {
        return Err(format!("unsupported compression method {}", data[2]));
    }
    if data[3] != 0 {
        return Err(format!("unsupported gzip flags {:#x}", data[3]));
    }
    let mut reader = BitReader::new(&data[10..data.len() - 8]);
    let mut out = Vec::new();
    loop {
        let bfinal = reader.read_bit()?;
        let btype = reader.read_bits(2)?;
        match btype {
            0 => {
                reader.align();
                let len = reader.read_bits(16)? as usize;
                let nlen = reader.read_bits(16)? as usize;
                if len ^ nlen != 0xFFFF {
                    return Err("stored block LEN/NLEN mismatch".to_string());
                }
                for _ in 0..len {
                    out.push(reader.read_bits(8)? as u8);
                }
            }
            1 => loop {
                let sym = read_fixed_litlen(&mut reader)?;
                match sym {
                    0..=255 => out.push(sym as u8),
                    256 => break,
                    _ => {
                        let code = (sym - 257) as usize;
                        if code >= LEN_BASE.len() {
                            return Err(format!("invalid length symbol {sym}"));
                        }
                        let len =
                            LEN_BASE[code] as usize + reader.read_bits(LEN_EXTRA[code])? as usize;
                        let dcode = reader.read_code(5)? as usize;
                        if dcode >= DIST_BASE.len() {
                            return Err(format!("invalid distance code {dcode}"));
                        }
                        let dist = DIST_BASE[dcode] as usize
                            + reader.read_bits(DIST_EXTRA[dcode])? as usize;
                        if dist > out.len() {
                            return Err("back-reference before stream start".to_string());
                        }
                        for _ in 0..len {
                            out.push(out[out.len() - dist]);
                        }
                    }
                }
            },
            2 => return Err("dynamic Huffman blocks are not supported".to_string()),
            _ => return Err("reserved block type".to_string()),
        }
        if bfinal == 1 {
            break;
        }
    }
    let trailer = &data[data.len() - 8..];
    let crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let isize_ = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    if crc != crc32_update(0, &out) {
        return Err("CRC-32 mismatch".to_string());
    }
    if isize_ != out.len() as u32 {
        return Err("ISIZE mismatch".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32_update(0, b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_update(0, b""), 0);
    }

    #[test]
    fn empty_input_round_trips() {
        let encoded = encode(b"");
        assert_eq!(decode(&encoded).unwrap(), b"");
    }

    #[test]
    fn repetitive_text_compresses_and_round_trips() {
        let text = "experiment,seed,scale,median,cov\n".repeat(400);
        let encoded = encode(text.as_bytes());
        assert!(
            encoded.len() < text.len() / 4,
            "repetitive CSV should compress well: {} -> {}",
            text.len(),
            encoded.len()
        );
        assert_eq!(decode(&encoded).unwrap(), text.as_bytes());
    }

    #[test]
    fn encoding_is_deterministic() {
        let data = b"the same bytes in, the same bytes out, every time";
        assert_eq!(encode(data), encode(data));
    }

    #[test]
    fn chunked_and_whole_encodings_decode_identically() {
        let text = "a body produced one artifact render at a time".repeat(50);
        let whole = encode(text.as_bytes());

        let mut encoder = StreamEncoder::new();
        let mut chunked = Vec::new();
        for chunk in text.as_bytes().chunks(97) {
            chunked.extend(encoder.push(chunk));
        }
        chunked.extend(encoder.finish());

        // Different block boundaries, identical decoded bytes.
        assert_eq!(decode(&whole).unwrap(), text.as_bytes());
        assert_eq!(decode(&chunked).unwrap(), text.as_bytes());
    }

    #[test]
    fn negotiation_covers_the_header_forms() {
        assert!(!negotiates_gzip(None));
        assert!(negotiates_gzip(Some("gzip")));
        assert!(negotiates_gzip(Some("GZIP")));
        assert!(negotiates_gzip(Some("deflate, gzip;q=0.5, br")));
        assert!(negotiates_gzip(Some("*")));
        assert!(!negotiates_gzip(Some("identity")));
        assert!(!negotiates_gzip(Some("gzip;q=0")));
        assert!(!negotiates_gzip(Some("gzip; q=0.0")));
        assert!(!negotiates_gzip(Some("")));
    }

    #[test]
    fn decode_rejects_damage() {
        assert!(decode(b"").is_err());
        assert!(decode(b"not gzip at all, definitely").is_err());
        let mut flipped = encode(b"some body bytes to protect");
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF; // ISIZE corrupt
        assert!(decode(&flipped).is_err());
        let mut crc_flipped = encode(b"some body bytes to protect");
        let crc_at = crc_flipped.len() - 8;
        crc_flipped[crc_at] ^= 0xFF;
        assert!(decode(&crc_flipped).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn arbitrary_bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(decode(&encode(&data)).unwrap(), data);
        }

        #[test]
        fn arbitrary_chunk_splits_round_trip(
            data in proptest::collection::vec(any::<u8>(), 1..2048),
            split in 1usize..512,
        ) {
            let mut encoder = StreamEncoder::new();
            let mut out = Vec::new();
            for chunk in data.chunks(split) {
                out.extend(encoder.push(chunk));
            }
            out.extend(encoder.finish());
            prop_assert_eq!(decode(&out).unwrap(), data);
        }
    }
}
