//! Keyed single-flight execution: concurrent callers asking for the
//! same key run the computation exactly once.
//!
//! The first caller to claim a key becomes its **leader** and runs the
//! closure; everyone else arriving while the flight is open becomes a
//! **waiter**, blocks on the flight's condvar, and receives a clone of
//! the leader's value. The flight is removed from the table the moment
//! the leader completes, so results are never cached here — a later
//! request for the same key starts a fresh flight (and, in the serving
//! layer, finds the artifact cache warm instead). Failures therefore
//! cannot stick: an error is handed to the callers of *this* flight and
//! forgotten.
//!
//! If a leader panics, its flight is marked abandoned on unwind and the
//! waiters retry the claim — one of them becomes the next leader rather
//! than blocking forever.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// What a flight's slot currently holds.
enum State<V> {
    /// The leader is still computing.
    Pending,
    /// The leader finished; waiters clone this.
    Done(V),
    /// The leader unwound without a value; waiters must retry.
    Abandoned,
}

struct Slot<V> {
    state: Mutex<State<V>>,
    ready: Condvar,
}

impl<V> Slot<V> {
    fn new() -> Self {
        Slot {
            state: Mutex::new(State::Pending),
            ready: Condvar::new(),
        }
    }
}

/// How a caller obtained its value: by computing it, or by waiting on
/// the caller that did. The serving layer's `serve.singleflight.lead` /
/// `serve.singleflight.wait` counters hang off this distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This caller ran the computation.
    Led,
    /// This caller received the leader's value.
    Waited,
}

/// A table of in-flight computations keyed by `K`.
pub struct Group<K, V> {
    slots: Mutex<HashMap<K, Arc<Slot<V>>>>,
}

impl<K, V> Default for Group<K, V> {
    fn default() -> Self {
        Group {
            slots: Mutex::new(HashMap::new()),
        }
    }
}

/// Marks the flight abandoned if the leader unwinds before publishing a
/// value, so waiters wake up and retry instead of blocking forever.
struct LeaderGuard<'a, K: Eq + Hash, V> {
    group: &'a Group<K, V>,
    key: &'a K,
    slot: &'a Arc<Slot<V>>,
    published: bool,
}

impl<K: Eq + Hash, V> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        self.group.remove(self.key);
        let mut state = match self.slot.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        *state = State::Abandoned;
        self.slot.ready.notify_all();
    }
}

impl<K: Eq + Hash, V> Group<K, V> {
    fn remove(&self, key: &K) {
        if let Ok(mut slots) = self.slots.lock() {
            slots.remove(key);
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Group<K, V> {
    /// An empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `compute` for `key` unless a flight for it is already open,
    /// in which case the call blocks and returns the open flight's
    /// value. Returns the value and this caller's [`Role`].
    pub fn run(&self, key: &K, compute: impl FnOnce() -> V) -> (V, Role) {
        let mut compute = Some(compute);
        loop {
            let (slot, leader) = {
                let mut slots = self.slots.lock().expect("flight table lock not poisoned");
                match slots.get(key) {
                    Some(slot) => (Arc::clone(slot), false),
                    None => {
                        let slot = Arc::new(Slot::new());
                        slots.insert(key.clone(), Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };
            if leader {
                let mut guard = LeaderGuard {
                    group: self,
                    key,
                    slot: &slot,
                    published: false,
                };
                let value = (compute.take().expect("a leader claims at most once"))();
                // Unlink before publishing: a request arriving after this
                // point starts a fresh flight instead of reading a stale
                // result, which is what keeps failures from sticking.
                self.remove(key);
                let mut state = slot.state.lock().expect("flight slot lock not poisoned");
                *state = State::Done(value.clone());
                guard.published = true;
                drop(state);
                slot.ready.notify_all();
                return (value, Role::Led);
            }
            let mut state = slot.state.lock().expect("flight slot lock not poisoned");
            loop {
                match &*state {
                    State::Pending => {
                        state = slot
                            .ready
                            .wait(state)
                            .expect("flight slot lock not poisoned");
                    }
                    State::Done(value) => return (value.clone(), Role::Waited),
                    State::Abandoned => break,
                }
            }
            // Abandoned flight: loop around and re-claim the key.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn concurrent_callers_compute_once_and_share_the_value() {
        let group = Arc::new(Group::<&'static str, usize>::new());
        let executions = Arc::new(AtomicUsize::new(0));
        let arrived = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (group, executions, arrived) = (
                    Arc::clone(&group),
                    Arc::clone(&executions),
                    Arc::clone(&arrived),
                );
                std::thread::spawn(move || {
                    arrived.wait();
                    group.run(&"key", || {
                        // Hold the flight open long enough for every
                        // thread that passed the barrier to join it.
                        std::thread::sleep(std::time::Duration::from_millis(200));
                        executions.fetch_add(1, Ordering::SeqCst) + 1
                    })
                })
            })
            .collect();
        let outcomes: Vec<(usize, Role)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(executions.load(Ordering::SeqCst), 1, "one execution");
        assert!(outcomes.iter().all(|(v, _)| *v == 1), "one shared value");
        let leaders = outcomes.iter().filter(|(_, r)| *r == Role::Led).count();
        assert_eq!(leaders, 1, "exactly one leader");
    }

    #[test]
    fn sequential_callers_each_run_a_fresh_flight() {
        let group = Group::<u32, u32>::new();
        let (a, role_a) = group.run(&1, || 10);
        let (b, role_b) = group.run(&1, || 20);
        assert_eq!((a, role_a), (10, Role::Led));
        assert_eq!((b, role_b), (20, Role::Led), "results are not cached");
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let group = Arc::new(Group::<u32, u32>::new());
        let gate = Arc::new(Barrier::new(2));
        let g2 = Arc::clone(&group);
        let gate2 = Arc::clone(&gate);
        let other = std::thread::spawn(move || {
            g2.run(&2, || {
                gate2.wait();
                200
            })
        });
        gate.wait();
        // Key 1 is claimable while key 2's flight is open.
        let (v, role) = group.run(&1, || 100);
        assert_eq!((v, role), (100, Role::Led));
        assert_eq!(other.join().unwrap(), (200, Role::Led));
    }

    #[test]
    fn a_panicking_leader_hands_the_flight_to_a_waiter() {
        let group = Arc::new(Group::<&'static str, u32>::new());
        let opened = Arc::new(Barrier::new(2));
        let g2 = Arc::clone(&group);
        let opened2 = Arc::clone(&opened);
        let waiter = std::thread::spawn(move || {
            opened2.wait();
            // By now the doomed leader holds the flight (it waits on the
            // same barrier inside the closure before panicking).
            std::thread::sleep(std::time::Duration::from_millis(100));
            g2.run(&"key", || 7)
        });
        let doomed = std::thread::spawn({
            let group = Arc::clone(&group);
            let opened = Arc::clone(&opened);
            move || {
                group.run(&"key", || {
                    opened.wait();
                    std::thread::sleep(std::time::Duration::from_millis(300));
                    panic!("leader dies");
                })
            }
        });
        assert!(doomed.join().is_err(), "the leader panicked");
        let (v, _role) = waiter.join().unwrap();
        assert_eq!(v, 7, "a waiter re-claimed the abandoned flight");
    }
}
