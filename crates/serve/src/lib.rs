//! # serve — the artifact-serving daemon
//!
//! A long-running HTTP/1.1 daemon over the content-addressed artifact
//! cache: `repro serve --addr HOST:PORT --cache-dir DIR` answers
//! requests for regenerated tables, figures, and manifests, computing
//! cache misses on demand through the same engine path `repro all`
//! uses. The serving contract (DESIGN.md §10) extends the repo's
//! byte-identity guarantee over the network:
//!
//! - **Byte-identical responses.** For a given `(experiment, scale,
//!   seed)` the response body is identical across requests, restarts,
//!   worker counts, and chaos seeds — the bytes are the artifact's
//!   `render()`/`to_csv()`, the same bytes the CLI writes.
//! - **Single-flight misses.** N concurrent requests for the same cold
//!   key execute the pipeline exactly once: one `cache.miss`, one
//!   `cache.stored`, N−1 waiters sharing the leader's result
//!   ([`singleflight`]).
//! - **Strong validators.** `ETag` is the cache fingerprint of the
//!   request's [`analysis::CacheKey`]; `If-None-Match` round-trips to
//!   `304` without touching the cache or the engine.
//! - **Backpressure, not hangs.** A configurable worker pool
//!   (`--workers`, default cores) drains a bounded accept queue; when
//!   the queue is full the daemon sheds load with a fast `503
//!   Retry-After` ([`server::ServerConfig`]).
//! - **Streamed bodies.** HTTP/1.1 artifact responses use chunked
//!   framing, one artifact per chunk, so paper-scale bodies are served
//!   in O(chunk) memory — byte-identical to the whole-body
//!   (`Content-Length`) framing HTTP/1.0 clients get.
//! - **Content-negotiated gzip.** `Accept-Encoding: gzip` switches the
//!   payload to a hand-rolled, dependency-free gzip encoding
//!   ([`gzip`]), with identity fallback and per-variant `ETag`s.
//! - **Multi-process serving.** Several daemons can share one cache
//!   directory; cold keys coordinate through advisory lease files
//!   ([`crossflight`]) and degrade to duplicated — never wrong — work.
//! - **Live telemetry.** `GET /metrics` renders the process's metric
//!   registry as deterministic text (`serve.request`,
//!   `serve.singleflight.lead`/`.wait`, `serve.queue.depth`/`.peak`,
//!   `serve.shed`, `cache.hit`/`cache.miss`, per-endpoint latency
//!   histograms).
//!
//! Endpoints: `GET /v1/experiments` (the registry listing,
//! byte-identical to `repro list`), `GET
//! /v1/artifacts/{id}?seed=&scale=&format=&artifact=`, `GET
//! /v1/manifest/{id}?seed=&scale=`, `GET /metrics`, `GET /healthz`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The daemon reports I/O failures per-connection and keeps serving;
// `unwrap()` outside tests regresses that (DESIGN.md §8).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod crossflight;
pub mod gzip;
pub mod http;
pub mod server;
pub mod service;
pub mod singleflight;

pub use http::{Request, Response};
pub use server::{Server, ServerConfig};
pub use service::{
    render_experiments, render_metrics, ArtifactService, BodyStream, Reply, ServeOptions, Streamed,
};
pub use singleflight::{Group, Role};
