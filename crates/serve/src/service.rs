//! Request handling: routes, response rendering, and the single-flight
//! miss path over the content-addressed artifact cache.
//!
//! The serving contract (DESIGN.md §10) is byte-identity: for a given
//! `(experiment, scale, seed)` the response body is identical across
//! requests, restarts, worker counts, and chaos seeds — the same
//! contract `repro all` honors, extended over HTTP. Hot requests are
//! served straight from the [`ArtifactCache`]; cold ones compute through
//! the engine exactly once no matter how many clients ask concurrently
//! (see [`crate::singleflight`]), then store back with the engine's own
//! bounded-backoff retry discipline.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use analysis::{
    find, run_experiments_opts, Artifact, ArtifactCache, CacheKey, Context, EngineOptions,
    Experiment, Scale,
};
use testbed::{FaultPlan, FaultPolicy};

use crate::http::{Request, Response};

/// Contexts kept warm, keyed by `(scale, seed)`. A quick-scale context
/// is a few hundred milliseconds of campaign collection; keeping a small
/// pool bounds memory while making repeat seeds cheap.
const CONTEXT_POOL_CAP: usize = 8;

/// Configuration for [`ArtifactService`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Directory of the content-addressed artifact cache.
    pub cache_dir: PathBuf,
    /// Engine worker threads per pipeline run (`None` = one per core).
    pub jobs: Option<usize>,
    /// Chaos plan applied to pipeline runs and cache stores; `None`
    /// injects nothing. Context collection runs fault-free: the daemon
    /// keeps no journal, and the byte-identity contract already pins the
    /// dataset.
    pub faults: Option<FaultPlan>,
    /// Retry budget and backoff for transient faults.
    pub policy: FaultPolicy,
}

impl ServeOptions {
    /// Options serving from `cache_dir` with library defaults.
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        ServeOptions {
            cache_dir: cache_dir.into(),
            jobs: None,
            faults: None,
            policy: FaultPolicy::default(),
        }
    }
}

/// Running totals of chaos activity observed while serving, kept in
/// plain atomics so they are observable even when telemetry is off.
#[derive(Debug, Default)]
struct FaultTotals {
    injected: AtomicU64,
    retried: AtomicU64,
}

/// Single-flight key: `(experiment id, scale label, seed)`.
type FlightKey = (String, String, u64);
/// What a flight resolves to: the artifact set, or the leader's error.
type FlightResult = Result<Arc<Vec<Artifact>>, String>;
/// Warm contexts keyed by `(scale label, seed)`; the [`OnceLock`] lets
/// waiters block on the builder without holding the pool lock.
type ContextPool = std::collections::HashMap<(String, u64), Arc<OnceLock<Arc<Context>>>>;

/// The stateful request handler shared by every connection.
pub struct ArtifactService {
    cache: ArtifactCache,
    jobs: Option<usize>,
    faults: Option<FaultPlan>,
    policy: FaultPolicy,
    flights: crate::singleflight::Group<FlightKey, FlightResult>,
    contexts: Mutex<ContextPool>,
    fault_totals: FaultTotals,
}

impl ArtifactService {
    /// A service over the cache in `options.cache_dir`.
    pub fn new(options: ServeOptions) -> Self {
        ArtifactService {
            cache: ArtifactCache::new(options.cache_dir),
            jobs: options.jobs,
            faults: options.faults,
            policy: options.policy,
            flights: crate::singleflight::Group::new(),
            contexts: Mutex::new(std::collections::HashMap::new()),
            fault_totals: FaultTotals::default(),
        }
    }

    /// Chaos faults `(injected, retried)` observed since startup.
    pub fn fault_stats(&self) -> (u64, u64) {
        (
            self.fault_totals.injected.load(Ordering::Relaxed),
            self.fault_totals.retried.load(Ordering::Relaxed),
        )
    }

    /// The cache this service serves from.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Dispatches one request and returns the response. Telemetry:
    /// `serve.request` (+ per-endpoint), `serve.status.<code>`, and a
    /// `serve.latency.<endpoint>` histogram recorded after the response
    /// is built, so `/metrics` never includes its own in-flight request.
    pub fn handle(&self, req: &Request) -> Response {
        let started = Instant::now();
        let endpoint = endpoint_label(&req.path);
        telemetry::metrics::counter("serve.request").inc();
        telemetry::metrics::counter(&format!("serve.request.{endpoint}")).inc();
        let response = self.route(req);
        telemetry::metrics::counter(&format!("serve.status.{}", response.status)).inc();
        telemetry::metrics::histogram(&format!("serve.latency.{endpoint}"))
            .record(started.elapsed().as_secs_f64());
        response
    }

    fn route(&self, req: &Request) -> Response {
        if req.method != "GET" {
            return Response::text(405, "only GET is supported\n");
        }
        match req.path.as_str() {
            "/healthz" => Response::text(200, "ok\n"),
            "/metrics" => Response::text(200, render_metrics()),
            "/v1/experiments" => Response::text(200, render_experiments()),
            path => {
                if let Some(id) = path.strip_prefix("/v1/artifacts/") {
                    self.artifacts_endpoint(id, req)
                } else if let Some(id) = path.strip_prefix("/v1/manifest/") {
                    self.manifest_endpoint(id, req)
                } else {
                    Response::text(404, format!("no such route: {path}\n"))
                }
            }
        }
    }

    /// `GET /v1/artifacts/{id}?seed=&scale=&format=&artifact=`
    fn artifacts_endpoint(&self, id: &str, req: &Request) -> Response {
        let (experiment, scale, seed) = match self.resolve(id, req) {
            Ok(triple) => triple,
            Err(resp) => return resp,
        };
        let etag = self.etag(experiment, scale, seed);
        if req.header("if-none-match") == Some(etag.as_str()) {
            return Response::empty(304).with_header("ETag", etag);
        }
        let artifacts = match self.artifacts_for(experiment, scale, seed) {
            Ok(artifacts) => artifacts,
            Err(why) => return Response::text(500, format!("{id}: {why}\n")),
        };
        let selected: Vec<&Artifact> = match req.query_param("artifact") {
            Some(aid) => match artifacts.iter().find(|a| a.id() == aid) {
                Some(a) => vec![a],
                None => return Response::text(404, format!("{id} has no artifact `{aid}`\n")),
            },
            None => artifacts.iter().collect(),
        };
        let body = match req.query_param("format").unwrap_or("text") {
            "text" => {
                // Matches the CLI: one `render()` per artifact, each
                // followed by the `println!` newline.
                let mut out = String::new();
                for artifact in &selected {
                    out.push_str(&artifact.render());
                    out.push('\n');
                }
                out
            }
            "csv" => {
                if selected.len() != 1 {
                    return Response::text(400, "format=csv requires an artifact= selector\n");
                }
                selected[0].to_csv()
            }
            other => return Response::text(400, format!("unknown format `{other}`\n")),
        };
        Response::text(200, body).with_header("ETag", etag)
    }

    /// `GET /v1/manifest/{id}?seed=&scale=`: experiment metadata plus
    /// the artifact inventory, as JSON with a fixed key order.
    fn manifest_endpoint(&self, id: &str, req: &Request) -> Response {
        let (experiment, scale, seed) = match self.resolve(id, req) {
            Ok(triple) => triple,
            Err(resp) => return resp,
        };
        let artifacts = match self.artifacts_for(experiment, scale, seed) {
            Ok(artifacts) => artifacts,
            Err(why) => return Response::text(500, format!("{id}: {why}\n")),
        };
        let key = CacheKey::for_params(experiment, scale, seed);
        let mut entries = String::new();
        for (i, artifact) in artifacts.iter().enumerate() {
            if i > 0 {
                entries.push(',');
            }
            let kind = match artifact {
                Artifact::Table(_) => "table",
                Artifact::Figure(_) => "figure",
            };
            entries.push_str(&format!(
                "{{\"id\":{},\"kind\":\"{kind}\",\"bytes\":{}}}",
                json_string(artifact.id()),
                artifact.render().len(),
            ));
        }
        let body = format!(
            concat!(
                "{{\"experiment\":{},\"kind\":\"{}\",\"cost\":\"{}\",\"title\":{},",
                "\"code_version\":{},\"scale\":\"{}\",\"seed\":{},\"cacheable\":{},",
                "\"fingerprint\":\"{:016x}\",\"artifacts\":[{}]}}\n"
            ),
            json_string(experiment.id()),
            experiment.kind().label(),
            experiment.cost().label(),
            json_string(experiment.title()),
            experiment.code_version(),
            scale.label(),
            seed,
            experiment.cacheable(),
            key.fingerprint(),
            entries,
        );
        Response::text(200, body).with_content_type("application/json")
    }

    /// Validates id / scale / seed, or produces the error response.
    fn resolve(
        &self,
        id: &str,
        req: &Request,
    ) -> Result<(&'static dyn Experiment, Scale, u64), Response> {
        let Some(experiment) = find(id) else {
            return Err(Response::text(
                404,
                format!("unknown experiment id `{id}` (see /v1/experiments)\n"),
            ));
        };
        let scale_param = req.query_param("scale").unwrap_or("quick");
        let Some(scale) = Scale::parse(scale_param) else {
            return Err(Response::text(
                400,
                format!("unknown scale `{scale_param}` (quick|paper)\n"),
            ));
        };
        let seed = match req.query_param("seed").unwrap_or("42").parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => return Err(Response::text(400, "seed must be an unsigned integer\n")),
        };
        Ok((experiment, scale, seed))
    }

    /// The strong validator for an artifact response: the cache
    /// fingerprint of `(experiment, scale, seed)`, derivable without
    /// collecting a campaign.
    fn etag(&self, experiment: &dyn Experiment, scale: Scale, seed: u64) -> String {
        format!(
            "\"{:016x}\"",
            CacheKey::for_params(experiment, scale, seed).fingerprint()
        )
    }

    /// Returns the experiment's artifacts, from the cache when hot,
    /// computing through the engine when cold. Concurrent callers for
    /// the same `(id, scale, seed)` share one computation.
    pub fn artifacts_for(
        &self,
        experiment: &'static dyn Experiment,
        scale: Scale,
        seed: u64,
    ) -> Result<Arc<Vec<Artifact>>, String> {
        let flight_key = (experiment.id().to_string(), scale.label().to_string(), seed);
        let (outcome, role) = self
            .flights
            .run(&flight_key, || self.compute(experiment, scale, seed));
        let counter = match role {
            crate::singleflight::Role::Led => "serve.singleflight.lead",
            crate::singleflight::Role::Waited => "serve.singleflight.wait",
        };
        telemetry::metrics::counter(counter).inc();
        outcome
    }

    /// The leader's path: cache lookup, then a full pipeline run on a
    /// pooled context, then a retried store-back. The engine is invoked
    /// with `cache: None` — the service already did the lookup, and one
    /// cold request must count exactly one `cache.miss`.
    fn compute(
        &self,
        experiment: &'static dyn Experiment,
        scale: Scale,
        seed: u64,
    ) -> Result<Arc<Vec<Artifact>>, String> {
        let key = CacheKey::for_params(experiment, scale, seed);
        if experiment.cacheable() {
            if let Some(artifacts) = self.cache.lookup(&key) {
                return Ok(Arc::new(artifacts));
            }
        }
        let ctx = self.context(scale, seed);
        let options = EngineOptions {
            jobs: self.jobs,
            cache: None,
            faults: self.faults,
            policy: self.policy,
        };
        let (runs, fault_stats) = run_experiments_opts(&ctx, &[experiment], &options, &|_| {});
        self.fault_totals
            .injected
            .fetch_add(fault_stats.injected, Ordering::Relaxed);
        self.fault_totals
            .retried
            .fetch_add(fault_stats.retried, Ordering::Relaxed);
        telemetry::metrics::counter("serve.faults.injected").add(fault_stats.injected);
        telemetry::metrics::counter("serve.faults.retried").add(fault_stats.retried);
        let run = runs
            .into_iter()
            .next()
            .ok_or_else(|| "engine returned no report".to_string())?;
        let artifacts = run.outcome.map_err(|e| e.message().to_string())?;
        if experiment.cacheable() {
            self.store_retrying(experiment, &key, &artifacts);
        }
        Ok(Arc::new(artifacts))
    }

    /// Best-effort store-back, mirroring the engine's discipline: chaos
    /// can inject I/O faults at `cache.store.<id>`, transient failures
    /// retry under the policy's bounded backoff, and a failure past the
    /// budget is logged, never served as an error — the artifacts were
    /// computed fine.
    fn store_retrying(&self, experiment: &dyn Experiment, key: &CacheKey, artifacts: &[Artifact]) {
        let site = format!("cache.store.{}", experiment.id());
        let mut attempt = 0;
        loop {
            let result = if self.faults.is_some_and(|f| f.io_error(&site, attempt)) {
                self.fault_totals.injected.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::counter("serve.faults.injected").inc();
                Err(std::io::Error::other("injected I/O fault (chaos)"))
            } else {
                self.cache.store(key, artifacts)
            };
            match result {
                Ok(()) => return,
                Err(_) if attempt < self.policy.max_retries => {
                    self.fault_totals.retried.fetch_add(1, Ordering::Relaxed);
                    telemetry::metrics::counter("serve.faults.retried").inc();
                    std::thread::sleep(self.policy.backoff_for(attempt));
                    attempt += 1;
                }
                Err(err) => {
                    eprintln!("serve: cannot store {}: {err}", experiment.id());
                    return;
                }
            }
        }
    }

    /// A context from the pool, collecting the campaign on first use.
    /// `OnceLock::get_or_init` gives context builds their own
    /// single-flight: concurrent cold requests for different experiments
    /// at the same `(scale, seed)` collect one campaign, not two.
    fn context(&self, scale: Scale, seed: u64) -> Arc<Context> {
        let cell = {
            let mut pool = self
                .contexts
                .lock()
                .expect("context pool lock not poisoned");
            let pool_key = (scale.label().to_string(), seed);
            if pool.len() >= CONTEXT_POOL_CAP && !pool.contains_key(&pool_key) {
                // Evict an arbitrary entry; in-flight users hold Arcs and
                // are unaffected, and contexts are pure functions of their
                // key, so eviction only costs a rebuild.
                if let Some(evict) = pool.keys().next().cloned() {
                    pool.remove(&evict);
                }
            }
            Arc::clone(pool.entry(pool_key).or_default())
        };
        Arc::clone(cell.get_or_init(|| Arc::new(Context::with_jobs(scale, seed, self.jobs))))
    }
}

/// Which latency/request bucket a path belongs to.
fn endpoint_label(path: &str) -> &'static str {
    if path == "/healthz" {
        "healthz"
    } else if path == "/metrics" {
        "metrics"
    } else if path == "/v1/experiments" {
        "experiments"
    } else if path.starts_with("/v1/artifacts/") {
        "artifacts"
    } else if path.starts_with("/v1/manifest/") {
        "manifest"
    } else {
        "other"
    }
}

/// The registry listing, byte-identical to `repro list`.
pub fn render_experiments() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4}  {:<6}  {:<6}  title\n",
        "id", "kind", "cost"
    ));
    for e in analysis::all() {
        out.push_str(&format!(
            "{:<4}  {:<6}  {:<6}  {}\n",
            e.id(),
            e.kind().label(),
            e.cost().label(),
            e.title(),
        ));
    }
    out
}

/// The live metrics snapshot as a deterministic text format: one line
/// per metric, sections in snapshot order (alphabetical by name — the
/// [`telemetry::metrics::MetricsSnapshot`] ordering contract).
pub fn render_metrics() -> String {
    fn opt(v: Option<f64>) -> String {
        v.map_or_else(|| "-".to_string(), |v| format!("{v}"))
    }
    let snapshot = telemetry::metrics::snapshot();
    let mut out = String::from("# serve metrics v1\n");
    for c in &snapshot.counters {
        out.push_str(&format!("counter {} {}\n", c.name, c.value));
    }
    for g in &snapshot.gauges {
        out.push_str(&format!("gauge {} {}\n", g.name, g.value));
    }
    for h in &snapshot.histograms {
        out.push_str(&format!(
            "histogram {} count {} rejected {} total {} min {} max {} p50 {} p90 {} p95 {} p99 {}\n",
            h.name,
            h.count,
            h.rejected,
            h.total,
            opt(h.min),
            opt(h.max),
            opt(h.p50),
            opt(h.p90),
            opt(h.p95),
            opt(h.p99),
        ));
    }
    out
}

/// Serializes `s` as a JSON string literal (the manifest endpoint's
/// values are ASCII, but escaping is still done properly).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn get(path: &str) -> Request {
        Request::read_from(&mut BufReader::new(
            format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes(),
        ))
        .unwrap()
        .unwrap()
    }

    fn temp_service() -> (ArtifactService, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "serve-unit-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        ));
        let service = ArtifactService::new(ServeOptions {
            jobs: Some(2),
            ..ServeOptions::new(&dir)
        });
        (service, dir)
    }

    #[test]
    fn experiments_listing_matches_the_registry() {
        let listing = render_experiments();
        let mut lines = listing.lines();
        assert_eq!(lines.next(), Some("id    kind    cost    title"));
        assert_eq!(listing.lines().count(), analysis::all().len() + 1);
        assert!(listing.lines().any(|l| l.starts_with("T1")));
        assert!(listing.lines().any(|l| l.starts_with("F6")));
    }

    #[test]
    fn routing_rejects_what_it_should() {
        let (service, dir) = temp_service();
        assert_eq!(service.handle(&get("/nope")).status, 404);
        assert_eq!(
            service.handle(&get("/v1/artifacts/ZZ?seed=1")).status,
            404,
            "unknown experiment id"
        );
        assert_eq!(
            service
                .handle(&get("/v1/artifacts/T1?scale=galactic"))
                .status,
            400
        );
        assert_eq!(
            service
                .handle(&get("/v1/artifacts/T1?seed=minus-one"))
                .status,
            400
        );
        assert_eq!(
            service.handle(&get("/v1/artifacts/T1?format=yaml")).status,
            400
        );
        let mut post = get("/healthz");
        post.method = "POST".to_string();
        assert_eq!(service.handle(&post).status, 405);
        assert_eq!(service.handle(&get("/healthz")).status, 200);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn etag_round_trip_yields_304_without_recomputing() {
        let (service, dir) = temp_service();
        let first = service.handle(&get("/v1/artifacts/T1?seed=7&scale=quick"));
        assert_eq!(first.status, 200);
        let etag = first
            .headers
            .iter()
            .find(|(n, _)| n == "ETag")
            .map(|(_, v)| v.clone())
            .expect("artifact responses carry an ETag");
        let mut conditional = get("/v1/artifacts/T1?seed=7&scale=quick");
        conditional
            .headers
            .push(("if-none-match".to_string(), etag.clone()));
        let second = service.handle(&conditional);
        assert_eq!(second.status, 304);
        assert!(second.body.is_empty());
        // The validator is the cache fingerprint, so it must differ
        // across seeds and scales.
        let other = service.handle(&get("/v1/artifacts/T1?seed=8&scale=quick"));
        let other_etag = other
            .headers
            .iter()
            .find(|(n, _)| n == "ETag")
            .map(|(_, v)| v.clone());
        assert_ne!(Some(etag), other_etag);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn manifest_lists_artifacts_with_fixed_key_order() {
        let (service, dir) = temp_service();
        let resp = service.handle(&get("/v1/manifest/T1?seed=7&scale=quick"));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.starts_with("{\"experiment\":\"T1\",\"kind\":\"table\","));
        assert!(body.contains("\"scale\":\"quick\",\"seed\":7,"));
        assert!(body.contains("\"fingerprint\":\""));
        assert!(body.contains("\"artifacts\":[{\"id\":"));
        assert!(body.ends_with("]}\n"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_format_selects_one_artifact() {
        let (service, dir) = temp_service();
        let manifest = service.handle(&get("/v1/manifest/T1?seed=7"));
        let body = String::from_utf8(manifest.body).unwrap();
        let aid = body
            .split("\"artifacts\":[{\"id\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("manifest names at least one artifact")
            .to_string();
        let csv = service.handle(&get(&format!(
            "/v1/artifacts/T1?seed=7&format=csv&artifact={aid}"
        )));
        assert_eq!(csv.status, 200);
        assert!(!csv.body.is_empty());
        let missing = service.handle(&get("/v1/artifacts/T1?seed=7&artifact=nope"));
        assert_eq!(missing.status, 404);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }
}
